//! Criterion bench for the Fig. 4 ablation sweep: all six strategies on
//! one NAS and one compression workload.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::{ExperimentBuilder, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_ablation");
    for (name, workload) in [
        ("nas_cifar10", Workload::nas_cifar10()),
        ("compression_cifar10", Workload::compression_cifar10()),
    ] {
        let e = ExperimentBuilder::new(workload)
            .hardware(HardwareConfig::a6000_server(4))
            .sim_rounds(8)
            .build()
            .expect("valid experiment");
        group.bench_function(name, |b| {
            b.iter(|| {
                for s in Strategy::ALL {
                    black_box(e.run(s).expect("all strategies lower here"));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
