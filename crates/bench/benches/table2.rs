//! Criterion bench for the Table II pipeline: full DP/LS/Pipe-BD epoch
//! extrapolation on one workload, plus the functional parity check that
//! stands in for the accuracy columns.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::exec::{reference, threaded, FuncConfig};
use pipebd_core::{ExperimentBuilder, Strategy};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sim::HardwareConfig;
use pipebd_tensor::Rng64;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_results");
    let e = ExperimentBuilder::new(Workload::compression_cifar10())
        .hardware(HardwareConfig::a6000_server(4))
        .sim_rounds(8)
        .build()
        .expect("valid experiment");
    group.bench_function("epoch_times_dp_ls_pipebd", |b| {
        b.iter(|| {
            black_box(e.run(Strategy::DataParallel).expect("DP"));
            black_box(e.run(Strategy::LayerwiseScheduling).expect("LS"));
            black_box(e.run(Strategy::PipeBd).expect("Pipe-BD"));
        })
    });

    let cfg = MiniConfig {
        blocks: 3,
        channels: 4,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(0);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 1);
    let func = FuncConfig {
        devices: 3,
        steps: 3,
        batch: 6,
        ..FuncConfig::default()
    };
    group.bench_function("functional_parity_check", |b| {
        b.iter(|| {
            let golden = reference::run(&teacher, &student, &data, &func).expect("reference");
            let pipebd = threaded::run(&teacher, &student, &data, &func).expect("threaded");
            black_box(pipebd.max_param_diff(&golden))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
