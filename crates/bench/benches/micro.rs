//! Microbenches of the substrates: tensor kernels, the event engine, plan
//! enumeration, and the profiler.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_models::Workload;
use pipebd_sched::{enumerate_hybrid_plans, CostModel, Profiler};
use pipebd_sim::{simulate, GpuModel, Resource, SimTime, TaskGraph, TaskKind};
use pipebd_tensor::{conv2d, Conv2dSpec, Rng64, Tensor};
use std::hint::black_box;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("tensor/matmul_64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).expect("shapes match")))
    });

    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    let spec = Conv2dSpec::dense(8, 8, 3, 1, 1);
    c.bench_function("tensor/conv2d_8x16x16", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, spec).expect("shapes match")))
    });
}

fn bench_engine(c: &mut Criterion) {
    // A 4-device pipeline of 1000 rounds (≈12k tasks).
    let mut g = TaskGraph::new(4);
    for round in 0..1000u32 {
        let mut prev = None;
        for d in 0..4 {
            let deps = prev.into_iter().collect();
            let t = g.add_tagged(
                Resource::Gpu(d),
                TaskKind::Teacher,
                SimTime::from_us(10.0),
                deps,
                Some(d as u16),
                round,
            );
            let send = g.add_tagged(
                Resource::Copy(d),
                TaskKind::Comm,
                SimTime::from_us(1.0),
                vec![t],
                Some(d as u16),
                round,
            );
            g.add_tagged(
                Resource::Gpu(d),
                TaskKind::Student,
                SimTime::from_us(30.0),
                vec![t],
                Some(d as u16),
                round,
            );
            prev = Some(send);
        }
    }
    c.bench_function("engine/simulate_12k_tasks", |bench| {
        bench.iter(|| black_box(simulate(&g)))
    });
}

fn bench_sched(c: &mut Criterion) {
    c.bench_function("sched/enumerate_13x4", |bench| {
        bench.iter(|| black_box(enumerate_hybrid_plans(13, 4)))
    });
    let w = Workload::nas_imagenet();
    let profiler = Profiler::new(CostModel::new(GpuModel::a6000()));
    c.bench_function("sched/profile_nas_imagenet", |bench| {
        bench.iter(|| black_box(profiler.profile(&w.model, 256, 4)))
    });
}

criterion_group!(benches, bench_tensor, bench_engine, bench_sched);
criterion_main!(benches);
