//! Microbenches of the substrates: tensor kernels, the event engine, plan
//! enumeration, the profiler, and the executor relay data plane.
//!
//! Instead of `criterion_main!`, this bench drives the shim's `Criterion`
//! explicitly so it can persist every measurement as the `BENCH_e2e.json`
//! baseline through the artifact store (a shim extension; swap back to
//! `criterion_group!`/`criterion_main!` when the real criterion lands).

use criterion::Criterion;
use pipebd_core::exec::{threaded, FuncConfig};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_nn::{Block, BlockNet, Layer, Relu, Sequential};
use pipebd_sched::{enumerate_hybrid_plans, CostModel, Profiler, StagePlan};
use pipebd_sim::{simulate, GpuModel, Resource, SimTime, TaskGraph, TaskKind};
use pipebd_tensor::{
    conv2d, conv2d_grad_input_with, conv2d_grad_weight_with, conv2d_with, Conv2dSpec, KernelPolicy,
    Rng64, SharedTensor, Tensor,
};
use std::hint::black_box;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(0);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    c.bench_function("tensor/matmul_64", |bench| {
        bench.iter(|| black_box(a.matmul(&b).expect("shapes match")))
    });

    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    let spec = Conv2dSpec::dense(8, 8, 3, 1, 1);
    c.bench_function("tensor/conv2d_8x16x16", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, spec).expect("shapes match")))
    });
}

/// Naive-vs-blocked A/B pairs for every hot kernel: the compute-plane
/// speedups recorded in `EXPERIMENTS.md`. Explicit `*_with` variants keep
/// the comparison independent of the process-global policy.
fn bench_kernel_policies(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(1);

    let a = Tensor::randn(&[256, 256], &mut rng);
    let b = Tensor::randn(&[256, 256], &mut rng);
    for policy in [KernelPolicy::Naive, KernelPolicy::Blocked] {
        c.bench_function(format!("tensor/matmul_256_{policy}"), |bench| {
            bench.iter(|| black_box(a.matmul_with(&b, policy).expect("shapes match")))
        });
    }

    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    let spec = Conv2dSpec::dense(8, 8, 3, 1, 1);
    let dy = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    for policy in [KernelPolicy::Naive, KernelPolicy::Blocked] {
        c.bench_function(format!("tensor/conv2d_8x16x16_{policy}"), |bench| {
            bench.iter(|| black_box(conv2d_with(&x, &w, spec, policy).expect("shapes match")))
        });
        c.bench_function(
            format!("tensor/conv2d_grad_input_8x16x16_{policy}"),
            |bench| {
                bench.iter(|| {
                    black_box(
                        conv2d_grad_input_with(&dy, &w, spec, (16, 16), policy)
                            .expect("shapes match"),
                    )
                })
            },
        );
        c.bench_function(
            format!("tensor/conv2d_grad_weight_8x16x16_{policy}"),
            |bench| {
                bench.iter(|| {
                    black_box(conv2d_grad_weight_with(&x, &dy, spec, policy).expect("shapes match"))
                })
            },
        );
    }
}

fn bench_engine(c: &mut Criterion) {
    // A 4-device pipeline of 1000 rounds (≈12k tasks).
    let mut g = TaskGraph::new(4);
    for round in 0..1000u32 {
        let mut prev = None;
        for d in 0..4 {
            let deps = prev.into_iter().collect();
            let t = g.add_tagged(
                Resource::Gpu(d),
                TaskKind::Teacher,
                SimTime::from_us(10.0),
                deps,
                Some(d as u16),
                round,
            );
            let send = g.add_tagged(
                Resource::Copy(d),
                TaskKind::Comm,
                SimTime::from_us(1.0),
                vec![t],
                Some(d as u16),
                round,
            );
            g.add_tagged(
                Resource::Gpu(d),
                TaskKind::Student,
                SimTime::from_us(30.0),
                vec![t],
                Some(d as u16),
                round,
            );
            prev = Some(send);
        }
    }
    c.bench_function("engine/simulate_12k_tasks", |bench| {
        bench.iter(|| black_box(simulate(&g)))
    });
}

fn bench_sched(c: &mut Criterion) {
    c.bench_function("sched/enumerate_13x4", |bench| {
        bench.iter(|| black_box(enumerate_hybrid_plans(13, 4)))
    });
    let w = Workload::nas_imagenet();
    let profiler = Profiler::new(CostModel::new(GpuModel::a6000()));
    c.bench_function("sched/profile_nas_imagenet", |bench| {
        bench.iter(|| black_box(profiler.profile(&w.model, 256, 4)))
    });
}

/// A BlockNet whose blocks are single ReLUs: activation shapes stay large
/// while per-block compute is one elementwise pass, so the relay data plane
/// (channel sends, boundary caching, batch reassembly) dominates the run.
fn relu_relay_net(blocks: usize) -> BlockNet {
    (0..blocks)
        .map(|i| {
            let layers: Vec<Box<dyn Layer>> = vec![Box::new(Relu::new())];
            Block::new(format!("r{i}"), Sequential::new(layers))
        })
        .collect()
}

fn bench_relay(c: &mut Criterion) {
    // Isolated relay hop for a ~1 MiB activation: the pre-refactor
    // mechanism (deep-clone the tensor into the channel) against the
    // zero-copy data plane (send a `SharedTensor` handle).
    let mut rng = Rng64::seed_from_u64(1);
    let act = Tensor::randn(&[16, 16, 32, 32], &mut rng);
    c.bench_function("relay/hop_deepcopy_1mb", |bench| {
        let (tx, rx) = std::sync::mpsc::channel();
        bench.iter(|| {
            tx.send(act.clone()).expect("send");
            black_box(rx.recv().expect("recv"))
        })
    });
    c.bench_function("relay/hop_shared_1mb", |bench| {
        let shared = SharedTensor::new(act.clone());
        let (tx, rx) = std::sync::mpsc::channel();
        bench.iter(|| {
            tx.send(shared.clone()).expect("send");
            black_box(rx.recv().expect("recv"))
        })
    });

    // The micro relay bench: a 4-stage threaded pipeline of ReLU-only
    // blocks over 32x32 inputs. Compute is negligible, so this measures
    // the executor's per-hop relay cost (the tentpole's regression anchor).
    let net = relu_relay_net(4);
    let data = SyntheticImageDataset::mini(512, 32, 4, 5);
    let func = FuncConfig {
        devices: 4,
        steps: 8,
        batch: 32,
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    c.bench_function("relay/pipeline_relu_4dev_8steps", |bench| {
        bench.iter(|| black_box(threaded::run(&net, &net, &data, &func).expect("relay pipeline")))
    });
}

fn bench_exec(c: &mut Criterion) {
    // End-to-end threaded executor on the real mini models: convolution
    // compute plus relay, the workload the figure benches scale up.
    let cfg = MiniConfig {
        blocks: 4,
        channels: 8,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(7);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(256, 16, 4, 5);
    let func = FuncConfig {
        devices: 4,
        steps: 6,
        batch: 16,
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    c.bench_function("exec/threaded_mini_4dev_6steps", |bench| {
        bench.iter(|| {
            black_box(threaded::run(&teacher, &student, &data, &func).expect("threaded runs"))
        })
    });

    // Hybrid plan with widened stages: additionally exercises the
    // gradient gather/broadcast path (AHD batch splitting).
    let plan = StagePlan::from_widths(&[(1, 2), (3, 2)], 4, 4).expect("valid plan");
    let func_wide = FuncConfig {
        devices: 4,
        steps: 6,
        batch: 16,
        plan: Some(plan),
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    c.bench_function("exec/threaded_hybrid_2x2_6steps", |bench| {
        bench.iter(|| {
            black_box(threaded::run(&teacher, &student, &data, &func_wide).expect("hybrid runs"))
        })
    });

    // The thread-scaling sweep: the same mini pipeline under explicit
    // kernel-parallelism budgets. On a 1-vCPU runner the three ids tie
    // (the pool handshake divides a budget of 1); on multi-core hosts the
    // curve slopes down, and the regression gate holds it against the
    // committed baseline when the pool-aware fingerprint matches.
    for pool in [1usize, 2, 4] {
        let func_pooled = FuncConfig {
            devices: 4,
            steps: 6,
            batch: 16,
            decoupled_updates: true,
            pool_size: Some(pool),
            ..FuncConfig::default()
        };
        c.bench_function(format!("exec/threaded_mini_4dev_6steps_p{pool}"), |bench| {
            bench.iter(|| {
                black_box(
                    threaded::run(&teacher, &student, &data, &func_pooled).expect("pooled runs"),
                )
            })
        });
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_tensor(&mut criterion);
    bench_kernel_policies(&mut criterion);
    bench_engine(&mut criterion);
    bench_sched(&mut criterion);
    bench_relay(&mut criterion);
    bench_exec(&mut criterion);

    // Persist the run as the end-to-end bench baseline.
    let records: Vec<pipebd_artifact::BenchRecord> = criterion
        .results()
        .iter()
        .map(|r| pipebd_artifact::BenchRecord {
            id: r.id.clone(),
            mean_ns: r.mean_ns,
            iters: r.iters,
        })
        .collect();
    pipebd_bench::persist(
        "BENCH_e2e",
        &pipebd_artifact::BenchSuite {
            suite: "micro".into(),
            kernel_policy: pipebd_tensor::kernel_policy().to_string(),
            fingerprint: pipebd_artifact::pooled_fingerprint(
                pipebd_tensor::parallel::default_pool_size(),
            ),
            records,
        },
    );
}
