//! Criterion bench for the Fig. 7 memory accounting across strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::{memory_per_rank, Strategy};
use pipebd_models::Workload;
use pipebd_sched::StagePlan;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let w = Workload::nas_imagenet();
    let plan = StagePlan::contiguous(6, 4).expect("6 blocks on 4 devices");
    let mut group = c.benchmark_group("fig7_memory");
    group.bench_function("memory_accounting_all_strategies", |b| {
        b.iter(|| {
            black_box(memory_per_rank(
                Strategy::DataParallel,
                &w,
                4,
                256,
                None,
                None,
            ));
            black_box(memory_per_rank(
                Strategy::TrDpu,
                &w,
                4,
                256,
                Some(&plan),
                None,
            ));
            black_box(memory_per_rank(Strategy::TrIr, &w, 4, 256, None, None));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
