//! Criterion bench for the Fig. 5 machinery: the AHD profile + search on
//! both GPU types, and the Gantt rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::{ExperimentBuilder, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_gpu_sensitivity");
    for (name, hw) in [
        ("a6000", HardwareConfig::a6000_server(4)),
        ("rtx2080ti", HardwareConfig::rtx2080ti_server(4)),
    ] {
        let e = ExperimentBuilder::new(Workload::nas_imagenet())
            .hardware(hw)
            .sim_rounds(4)
            .build()
            .expect("valid experiment");
        group.bench_function(format!("ahd_search_{name}"), |b| {
            b.iter(|| black_box(e.ahd_decision()))
        });
        group.bench_function(format!("gantt_{name}"), |b| {
            b.iter(|| black_box(e.gantt(Strategy::PipeBd, 100).expect("renders")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
