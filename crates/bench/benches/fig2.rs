//! Criterion bench for the Fig. 2 pipeline: lowering + simulating the DP
//! baseline and Pipe-BD on NAS/CIFAR-10 and computing the breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::{ExperimentBuilder, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let e = ExperimentBuilder::new(Workload::nas_cifar10())
        .hardware(HardwareConfig::a6000_server(4))
        .sim_rounds(8)
        .build()
        .expect("valid experiment");
    let mut group = c.benchmark_group("fig2_motivation");
    group.bench_function("dp_breakdown", |b| {
        b.iter(|| black_box(e.run(Strategy::DataParallel).expect("DP lowers")))
    });
    group.bench_function("pipebd_breakdown", |b| {
        b.iter(|| black_box(e.run(Strategy::PipeBd).expect("Pipe-BD lowers")))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
