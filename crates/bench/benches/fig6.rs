//! Criterion bench for the Fig. 6 batch-size sweep: DP vs Pipe-BD at four
//! global batch sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use pipebd_core::{ExperimentBuilder, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_batch_sensitivity");
    group.bench_function("nas_cifar10_sweep", |b| {
        b.iter(|| {
            for batch in [128usize, 256, 384, 512] {
                let e = ExperimentBuilder::new(Workload::nas_cifar10())
                    .hardware(HardwareConfig::a6000_server(4))
                    .batch_size(batch)
                    .sim_rounds(4)
                    .build()
                    .expect("valid experiment");
                let dp = e.run(Strategy::DataParallel).expect("DP lowers");
                let pb = e.run(Strategy::PipeBd).expect("Pipe-BD lowers");
                black_box(pb.speedup_over(&dp));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
