//! Table II — parallel blockwise distillation training results.
//!
//! For each task × dataset: teacher and student model sizes (params,
//! MACs/"FLOPs"), one-epoch elapsed time under DP, LS, and Pipe-BD, and —
//! in place of the paper's accuracy columns (which require the real
//! datasets) — the measured *training-quality parity*: the maximum
//! parameter difference between the DP-semantics reference and the real
//! threaded Pipe-BD executor on the miniature functional models, which the
//! paper's Section VII-D argues must be zero.

use pipebd_bench::{experiment, fmt_paper_time, header, persist_run_set};
use pipebd_core::exec::{reference, threaded, FuncConfig};
use pipebd_core::Strategy;
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sim::HardwareConfig;
use pipebd_tensor::Rng64;

fn millions(x: u64) -> f64 {
    x as f64 / 1e6
}

fn main() {
    let hw = HardwareConfig::a6000_server(4);
    header(
        "Table II — Parallel blockwise distillation training results",
        &format!(
            "{}, batch 256; times are one extrapolated epoch",
            hw.label()
        ),
    );

    println!(
        "\n{:22} {:>10} {:>10} {:>10} {:>10} | {:>12} {:>12} {:>12}",
        "task/dataset", "T params", "T MACs", "S params", "S MACs", "DP", "LS", "Pipe-BD"
    );
    let mut all_reports = Vec::new();
    for w in [
        Workload::nas_cifar10(),
        Workload::nas_imagenet(),
        Workload::compression_cifar10(),
        Workload::compression_imagenet(),
    ] {
        let label = w.label();
        let t_params = millions(w.model.teacher_params());
        let t_macs = millions(w.model.teacher_macs());
        let s_params = millions(w.model.student_params());
        let s_macs = millions(w.model.student_macs());
        let e = experiment(w, hw.clone(), 256);
        let dp = e.run(Strategy::DataParallel).expect("DP lowers");
        let ls = e.run(Strategy::LayerwiseScheduling).expect("LS lowers");
        let pb = e.run(Strategy::PipeBd).expect("Pipe-BD lowers");
        println!(
            "{label:22} {t_params:>9.2}M {t_macs:>9.1}M {s_params:>9.2}M {s_macs:>9.1}M | {:>12} {:>12} {:>12}",
            fmt_paper_time(dp.epoch_time_s()),
            fmt_paper_time(ls.epoch_time_s()),
            fmt_paper_time(pb.epoch_time_s()),
        );
        all_reports.extend([dp, ls, pb]);
    }

    println!("\nPaper elapsed times (Table II):");
    println!("  NAS/cifar10            DP 31.52s.   LS 16.33s.   Pipe-BD 10.23s.");
    println!("  NAS/imagenet           DP 62m 21s.  LS 125m 26s. Pipe-BD 14m 15s.");
    println!("  Compression/cifar10    DP 13m 18s.  LS 6m 37s.   Pipe-BD 1m 49s.");
    println!("  Compression/imagenet   DP 229m 23s. LS 566m 49s. Pipe-BD 60m 39s.");

    // Training-quality parity (Section VII-D): the threaded Pipe-BD
    // executor must reach the same student as the scheduling-free
    // reference.
    println!("\nTraining quality (Section VII-D, miniature functional models):");
    let cfg = MiniConfig {
        blocks: 4,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(2023);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(256, 8, 4, 7);
    let func = FuncConfig {
        devices: 4,
        steps: 20,
        batch: 8,
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    let golden = reference::run(&teacher, &student, &data, &func).expect("reference trains");
    let pipebd = threaded::run(&teacher, &student, &data, &func).expect("threaded trains");
    let diff = pipebd.max_param_diff(&golden);
    println!("  max |param(Pipe-BD) - param(reference)| after 20 steps: {diff:e}");
    println!(
        "  final per-block distillation losses: {:?}",
        pipebd
            .final_losses()
            .iter()
            .map(|l| format!("{l:.4}"))
            .collect::<Vec<_>>()
    );
    assert_eq!(diff, 0.0, "Pipe-BD must not change training results");
    println!("  => identical training results, as the paper claims (accuracy unchanged).");

    persist_run_set(
        "table2_results",
        "DP/LS/Pipe-BD epoch times on all four workloads, 4x A6000, batch 256",
        all_reports,
    );
}
