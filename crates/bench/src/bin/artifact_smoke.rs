//! CI gate for the artifact plane: re-parses every JSON artifact under
//! the store and **fails** (exit 1) on schema drift.
//!
//! The lane runs a figure bin first (CI uses `fig2_motivation`), then this
//! binary, which asserts that
//!
//! 1. the store is non-empty and the expected figure artifact exists,
//! 2. every file is a well-formed envelope (`schema`/`version`/`name`/
//!    `created_unix_s`/`payload`),
//! 3. every *known* schema re-deserializes into its typed payload — so a
//!    payload-struct change that forgets the schema version bump, or a
//!    serializer change that alters the JSON layout, fails here rather
//!    than silently producing unreadable artifacts,
//! 4. no file carries an *unknown* schema (a new payload type must be
//!    registered in this gate to ship).
//!
//! Run with: `cargo run --release -p pipebd_bench --bin artifact_smoke`

use pipebd_artifact::ArtifactStore;
use pipebd_artifact::{
    ArtifactError, ArtifactMeta, ArtifactPayload, BenchKernels, BenchSuite, CostProfile,
    GateReport, RunSet, TraceArtifact,
};
use pipebd_core::RunReport;
use pipebd_json::Value;
use pipebd_sched::StagePlan;
use pipebd_testkit::{ConformanceReport, ScenarioSet};

/// Deserializes an already-parsed payload tree as `T`, enforcing the
/// schema/version tags (same checks as `ArtifactStore::load`, without
/// re-reading and re-parsing the file).
fn typed<T: ArtifactPayload>(meta: &ArtifactMeta, payload: &Value) -> Result<T, ArtifactError> {
    if meta.schema != T::SCHEMA {
        return Err(ArtifactError::Schema {
            found: meta.schema.clone(),
            expected: T::SCHEMA,
        });
    }
    if meta.version != u64::from(T::VERSION) {
        return Err(ArtifactError::Version {
            found: meta.version,
            expected: T::VERSION,
        });
    }
    Ok(pipebd_json::from_value(payload)?)
}

/// Revalidates one artifact under its registered payload type, returning
/// a short payload summary for the report line.
fn revalidate(meta: &ArtifactMeta, payload: &Value) -> Result<String, ArtifactError> {
    match meta.schema.as_str() {
        RunSet::SCHEMA => {
            let set: RunSet = typed(meta, payload)?;
            Ok(format!("{} reports ({})", set.reports.len(), set.figure))
        }
        RunReport::SCHEMA => {
            let report: RunReport = typed(meta, payload)?;
            Ok(format!("{} on {}", report.strategy, report.hardware))
        }
        StagePlan::SCHEMA => {
            let plan: StagePlan = typed(meta, payload)?;
            plan.validate()
                .map_err(|e| ArtifactError::Malformed(e.to_string()))?;
            Ok(format!("plan {plan}"))
        }
        CostProfile::SCHEMA => {
            let profile: CostProfile = typed(meta, payload)?;
            let table = profile.to_table().map_err(ArtifactError::Malformed)?;
            Ok(format!(
                "{} blocks x {} batch sizes ({})",
                table.num_blocks(),
                table.batch_sizes().len(),
                profile.workload
            ))
        }
        BenchKernels::SCHEMA => {
            let kernels: BenchKernels = typed(meta, payload)?;
            Ok(format!("{} kernel comparisons", kernels.cases.len()))
        }
        BenchSuite::SCHEMA => {
            let suite: BenchSuite = typed(meta, payload)?;
            Ok(format!(
                "{} measurements ({})",
                suite.records.len(),
                suite.suite
            ))
        }
        ScenarioSet::SCHEMA => {
            let set: ScenarioSet = typed(meta, payload)?;
            // Persisted scenarios must still be runnable (plans lay out).
            for s in &set.scenarios {
                s.exec_plan()
                    .map_err(|e| ArtifactError::Malformed(format!("{}: {e}", s.id)))?;
            }
            Ok(format!("{} scenarios", set.scenarios.len()))
        }
        ConformanceReport::SCHEMA => {
            let report: ConformanceReport = typed(meta, payload)?;
            Ok(format!(
                "{} scenarios, {} failures",
                report.scenarios, report.failures
            ))
        }
        TraceArtifact::SCHEMA => {
            let trace: TraceArtifact = typed(meta, payload)?;
            Ok(format!(
                "{} ({}): {} spans, bubble {:.3}",
                trace.scenario, trace.mode, trace.summary.spans, trace.summary.bubble_ratio
            ))
        }
        GateReport::SCHEMA => {
            let gate: GateReport = typed(meta, payload)?;
            Ok(format!("{} checks, pass={}", gate.checks.len(), gate.pass))
        }
        other => Err(ArtifactError::Malformed(format!(
            "unknown schema `{other}` — register the payload type in artifact_smoke"
        ))),
    }
}

fn main() {
    let store = ArtifactStore::from_env();
    pipebd_bench::header(
        "Artifact smoke — re-parse every persisted artifact",
        &format!("store: {}", store.root().display()),
    );

    let names = store.list().expect("artifact store listable");
    if names.is_empty() {
        eprintln!(
            "artifact smoke FAILED: no artifacts under {} (run a figure bin first)",
            store.root().display()
        );
        std::process::exit(1);
    }
    if !names.iter().any(|n| n == "fig2_motivation") {
        eprintln!("artifact smoke FAILED: expected `fig2_motivation` artifact is missing");
        std::process::exit(1);
    }

    let mut failures = 0usize;
    for name in &names {
        let outcome = store
            .load_raw(name)
            .and_then(|(meta, payload)| revalidate(&meta, &payload).map(|s| (meta, s)));
        match outcome {
            Ok((meta, summary)) => {
                println!(
                    "  ok    {name:<28} {:<24} v{} {summary}",
                    meta.schema, meta.version
                );
            }
            Err(e) => {
                println!("  FAIL  {name:<28} {e}");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "artifact smoke FAILED: {failures} of {} artifacts drifted",
            names.len()
        );
        std::process::exit(1);
    }
    println!(
        "artifact smoke passed: {} artifacts re-parsed cleanly",
        names.len()
    );
}
