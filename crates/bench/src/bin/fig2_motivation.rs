//! Fig. 2 — motivational breakdown.
//!
//! Reproduces the paper's motivational experiment: per-epoch time of the
//! DP baseline on NAS/CIFAR-10 (4× A6000), broken into data loading,
//! teacher execution, student execution, and idle; an "ideal" bar (each
//! part measured in isolation on one device at full batch, divided by 4);
//! and Pipe-BD's per-rank bars, which should sit close to the ideal.

use pipebd_bench::{bar, experiment, fmt_paper_time, header, persist_run_set, HARNESS_ROUNDS};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sched::CostModel;
use pipebd_sim::HardwareConfig;

fn main() {
    let hw = HardwareConfig::a6000_server(4);
    let e = experiment(Workload::nas_cifar10(), hw.clone(), 256);
    header(
        "Fig. 2 — Motivational experiment (time/epoch breakdown)",
        &format!(
            "NAS on CIFAR-10, {}, batch 256, {} simulated rounds/epoch extrapolation",
            hw.label(),
            HARNESS_ROUNDS
        ),
    );

    let dp = e.run(Strategy::DataParallel).expect("DP lowers");
    let pb = e.run(Strategy::PipeBd).expect("Pipe-BD lowers");

    // Ideal: each part measured separately at full batch on one device,
    // divided by the device count (the paper's imaginary perfectly
    // parallel system with infinite memory).
    let w = Workload::nas_cifar10();
    let cm = CostModel::new(hw.gpu.clone());
    let rounds = e.epoch_rounds() as f64;
    let n = hw.num_gpus as f64;
    let ideal_teacher: f64 = w
        .model
        .blocks
        .iter()
        .map(|b| cm.teacher_time(b, 256).as_secs_f64())
        .sum::<f64>()
        * rounds
        / n;
    let ideal_student: f64 = w
        .model
        .blocks
        .iter()
        .map(|b| (cm.student_time(b, 256) + cm.update_time(b)).as_secs_f64())
        .sum::<f64>()
        * rounds
        / n;
    let batch_bytes = 256 * w.dataset.sample_bytes() as usize;
    let ideal_load = hw
        .host
        .consume_time(256, batch_bytes as u64, &hw.pcie)
        .as_secs_f64()
        * rounds
        / n;

    let mut rows: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    // Baseline: rank 0 is representative (DP ranks are symmetric).
    let (l, t, s, i) = dp.epoch_breakdown_row(0);
    rows.push(("Baseline (DP)".into(), l, t, s, i));
    rows.push((
        "Ideal".into(),
        ideal_load,
        ideal_teacher,
        ideal_student,
        0.0,
    ));
    for rank in 0..hw.num_gpus {
        let (l, t, s, i) = pb.epoch_breakdown_row(rank);
        rows.push((format!("Pipe-BD rank{rank}"), l, t, s, i));
    }

    let max_total = rows
        .iter()
        .map(|(_, l, t, s, i)| l + t + s + i)
        .fold(0.0f64, f64::max);

    println!(
        "{:16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "", "load", "T exec", "S exec", "idle", "total"
    );
    for (name, l, t, s, i) in &rows {
        println!(
            "{name:16} {l:>9.2} {t:>9.2} {s:>9.2} {i:>9.2} {:>9.2}  |{}",
            l + t + s + i,
            bar(l + t + s + i, max_total, 34)
        );
    }
    println!();
    println!(
        "DP epoch      : {}   (paper, 4x A6000: 31.52s.)",
        fmt_paper_time(dp.epoch_time_s())
    );
    println!(
        "Pipe-BD epoch : {}   (paper: 10.23s.)  speedup {:.2}x (paper 3.08x)",
        fmt_paper_time(pb.epoch_time_s()),
        pb.speedup_over(&dp)
    );
    println!(
        "Ideal epoch   : {}   (sum of isolated parts / {})",
        fmt_paper_time(ideal_load + ideal_teacher + ideal_student),
        hw.num_gpus
    );

    persist_run_set(
        "fig2_motivation",
        "DP baseline vs Pipe-BD epoch breakdown, NAS/CIFAR-10, 4x A6000, batch 256",
        vec![dp, pb],
    );
}
