//! CI guard for the compute plane: quick naive-vs-blocked kernel
//! comparison that **fails** (exit 1) if the blocked path regresses below
//! the naive oracle.
//!
//! This is deliberately a pass/fail binary rather than a criterion bench:
//! the bench shim only prints numbers, and CI needs a hard signal when a
//! codegen or blocking change silently destroys the compute-plane win.
//! Thresholds are conservative (blocked must merely *beat* naive, not hit
//! the EXPERIMENTS.md speedups) so noisy shared runners do not flake.
//!
//! Run with: `cargo run --release -p pipebd_bench --bin kernel_smoke`

use std::time::Instant;

use pipebd_artifact::{BenchKernels, KernelComparison, ScalingCurve, ScalingPoint};
use pipebd_tensor::parallel::{default_pool_size, install, ComputePool};
use pipebd_tensor::{
    conv2d_grad_input_with, conv2d_grad_weight_with, conv2d_with, Conv2dSpec, KernelPolicy, Rng64,
    Tensor,
};

/// Pool widths the thread-scaling curves sample (1 = pinned serial).
const SCALING_POOLS: [usize; 3] = [1, 2, 4];

/// Best-of-N mean time per call, in seconds.
fn time(mut f: impl FnMut(), calls: usize, rounds: usize) -> f64 {
    f(); // warm up (first blocked call grows the thread-local scratch)
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / calls as f64);
    }
    best
}

fn main() {
    pipebd_bench::header(
        "Kernel smoke — blocked compute plane vs naive oracle",
        "quick mode: best-of-3 x 5 calls per kernel; fails if blocked is slower",
    );

    let mut rng = Rng64::seed_from_u64(0);
    let x = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let w = Tensor::randn(&[8, 8, 3, 3], &mut rng);
    let dy = Tensor::randn(&[4, 8, 16, 16], &mut rng);
    let spec = Conv2dSpec::dense(8, 8, 3, 1, 1);
    let a = Tensor::randn(&[128, 128], &mut rng);
    let b = Tensor::randn(&[128, 128], &mut rng);

    let cases: Vec<(&str, Box<dyn Fn(KernelPolicy)>)> = vec![
        (
            "conv2d_8x16x16",
            Box::new(|p| {
                std::hint::black_box(conv2d_with(&x, &w, spec, p).expect("conv2d"));
            }),
        ),
        (
            "conv2d_grad_input_8x16x16",
            Box::new(|p| {
                std::hint::black_box(
                    conv2d_grad_input_with(&dy, &w, spec, (16, 16), p).expect("grad input"),
                );
            }),
        ),
        (
            "conv2d_grad_weight_8x16x16",
            Box::new(|p| {
                std::hint::black_box(conv2d_grad_weight_with(&x, &dy, spec, p).expect("grad w"));
            }),
        ),
        (
            "matmul_128",
            Box::new(|p| {
                std::hint::black_box(a.matmul_with(&b, p).expect("matmul"));
            }),
        ),
    ];

    let mut failed = false;
    let mut comparisons = Vec::new();
    for (name, run) in &cases {
        let naive = time(|| run(KernelPolicy::Naive), 5, 3);
        let blocked = time(|| run(KernelPolicy::Blocked), 5, 3);
        let speedup = naive / blocked;
        let verdict = if speedup >= 1.0 { "ok" } else { "REGRESSION" };
        println!(
            "{name:<28} naive {:>9.1} us   blocked {:>9.1} us   {speedup:>5.2}x  {verdict}",
            naive * 1e6,
            blocked * 1e6,
        );
        comparisons.push(KernelComparison {
            kernel: (*name).to_string(),
            naive_ns: (naive * 1e9) as u64,
            blocked_ns: (blocked * 1e9) as u64,
            speedup,
        });
        if speedup < 1.0 {
            failed = true;
        }
    }

    // Thread-scaling curves: the blocked path timed under installed pools
    // of 1/2/4 lanes. No pass/fail here — on a 1-vCPU runner the curve is
    // legitimately flat (it records pool overhead, not speedup) — but the
    // regression gate holds the curve against the committed baseline when
    // the pool-aware fingerprint matches.
    let scaling_cases: &[(&str, &dyn Fn())] = &[
        ("matmul_128", &|| {
            std::hint::black_box(a.matmul_with(&b, KernelPolicy::Blocked).expect("matmul"));
        }),
        ("conv2d_8x16x16", &|| {
            std::hint::black_box(conv2d_with(&x, &w, spec, KernelPolicy::Blocked).expect("conv2d"));
        }),
    ];
    let mut scaling = Vec::new();
    for (name, run) in scaling_cases {
        let mut points = Vec::new();
        let mut line = format!("{name:<28} scaling ");
        for &width in &SCALING_POOLS {
            let pool = ComputePool::new(width);
            let secs = install(&pool, || time(run, 5, 3));
            line.push_str(&format!(" p{width} {:>8.1} us", secs * 1e6));
            points.push(ScalingPoint {
                pool: width,
                mean_ns: (secs * 1e9) as u64,
            });
        }
        println!("{line}");
        scaling.push(ScalingCurve {
            kernel: (*name).to_string(),
            points,
        });
    }

    // The baseline is written even on regression, so a failing run still
    // leaves the measured numbers behind for diagnosis.
    pipebd_bench::persist(
        "BENCH_kernels",
        &BenchKernels {
            kernel_policy: pipebd_tensor::kernel_policy().to_string(),
            fingerprint: pipebd_artifact::pooled_fingerprint(default_pool_size()),
            cases: comparisons,
            scaling,
        },
    );

    if failed {
        eprintln!("kernel smoke FAILED: blocked kernel slower than the naive oracle");
        std::process::exit(1);
    }
    println!("kernel smoke passed: blocked >= naive on every kernel");
}
