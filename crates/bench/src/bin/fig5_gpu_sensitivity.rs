//! Fig. 5 — GPU-type sensitivity of Pipe-BD on NAS/ImageNet.
//!
//! (a) Speedups of every strategy over DP on the 2080 Ti and A6000
//! servers; (b)/(c) the schedules AHD chooses on each server, both as a
//! stage-plan summary and as an ASCII Gantt chart of a few steady-state
//! rounds (the paper's key observation: the same workload lands on
//! *different* schedules per GPU type, with a wider early split on the
//! A6000).

use pipebd_bench::{bar, experiment, header, persist, persist_run_set, run_all};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;

fn main() {
    header(
        "Fig. 5 — GPU type sensitivity of Pipe-BD on NAS/ImageNet",
        "4-GPU servers, batch 256",
    );

    let servers = [
        ("2080Ti", HardwareConfig::rtx2080ti_server(4)),
        ("A6000", HardwareConfig::a6000_server(4)),
    ];

    println!("\n(a) Speedup over DP");
    let mut all_reports = Vec::new();
    for (name, hw) in &servers {
        let e = experiment(Workload::nas_imagenet(), hw.clone(), 256);
        let results = run_all(&e);
        all_reports.extend(results.iter().map(|(_, r)| r.clone()));
        let dp = results
            .iter()
            .find(|(s, _)| *s == Strategy::DataParallel)
            .map(|(_, r)| r.clone())
            .expect("DP lowers");
        println!("  {name}");
        let speedups: Vec<(Strategy, f64)> = results
            .iter()
            .map(|(s, r)| (*s, r.speedup_over(&dp)))
            .collect();
        let max = speedups.iter().map(|(_, x)| *x).fold(0.0f64, f64::max);
        for (s, x) in &speedups {
            println!("    {:11} {x:5.2}x |{}", s.label(), bar(*x, max, 40));
        }
    }

    for (name, hw) in &servers {
        let e = experiment(Workload::nas_imagenet(), hw.clone(), 256);
        let decision = e.ahd_decision();
        // The per-server AHD schedule is an artifact of its own: the
        // paper's Fig. 5b/5c claim is exactly that these two differ.
        persist(
            &format!("fig5_plan_{}", name.to_ascii_lowercase()),
            &decision.plan,
        );
        println!(
            "\n({}) {name} schedule chosen by AHD:",
            if *name == "2080Ti" { 'b' } else { 'c' }
        );
        println!("  plan     : {}", decision.plan);
        println!("  est/step : {}", decision.estimate);
        let chart = e
            .gantt(Strategy::PipeBd, 100)
            .expect("Pipe-BD lowers on both servers");
        print!("{chart}");
        println!("  (digits = teacher block, letters = student block, L = load, U = update, g = grad-share)");
    }

    println!();
    println!("Paper reference: A6000 shares blocks 0-2 on devices 0-2; 2080Ti");
    println!("shares block 0 on devices 0-1 with blocks 1-2 on device 2 — the");
    println!("A6000's early split is wider, which the assertion below checks.");
    let a = experiment(Workload::nas_imagenet(), servers[1].1.clone(), 256).ahd_decision();
    let t = experiment(Workload::nas_imagenet(), servers[0].1.clone(), 256).ahd_decision();
    let aw = a.plan.stage_of_block(0).expect("block 0 placed").width();
    let tw = t.plan.stage_of_block(0).expect("block 0 placed").width();
    println!("Measured: A6000 block-0 width {aw}, 2080Ti block-0 width {tw}");
    assert!(aw >= tw, "A6000 must split block 0 at least as wide");

    persist_run_set(
        "fig5_gpu_sensitivity",
        "all strategies on NAS/ImageNet, 2080Ti and A6000 servers, batch 256",
        all_reports,
    );
}
