//! Fig. 7 — per-rank peak memory of Pipe-BD on NAS.
//!
//! Maximum memory allocation per rank for DP, LS, TR/TR+DPU, and
//! TR+DPU+AHD, on CIFAR-10 and ImageNet (4× A6000, batch 256), plus the
//! average memory overhead of full Pipe-BD over DP (the paper reports
//! +8.7% on CIFAR-10 and +21.3% on ImageNet).

use pipebd_bench::{bar, experiment, header, persist_run_set};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;

const GIB: f64 = (1u64 << 30) as f64;
const SHOWN: [Strategy; 4] = [
    Strategy::DataParallel,
    Strategy::LayerwiseScheduling,
    Strategy::TrDpu,
    Strategy::PipeBd,
];

fn main() {
    let hw = HardwareConfig::a6000_server(4);
    header(
        "Fig. 7 — Memory overhead of Pipe-BD on NAS (per-rank peak)",
        &format!("{}, batch 256; TR/TR+DPU shown as TR+DPU", hw.label()),
    );

    let mut all_reports = Vec::new();
    for (panel, workload) in [
        ("(a) CIFAR-10", Workload::nas_cifar10()),
        ("(b) ImageNet", Workload::nas_imagenet()),
    ] {
        println!("\n{panel}  (GiB per rank)");
        let e = experiment(workload, hw.clone(), 256);
        let mut rows = Vec::new();
        for &s in &SHOWN {
            if let Ok(r) = e.run(s) {
                rows.push((s, r));
            }
        }
        let max = rows
            .iter()
            .flat_map(|(_, r)| r.memory_per_rank.iter())
            .copied()
            .max()
            .unwrap_or(1) as f64
            / GIB;
        print!("  {:11}", "strategy");
        for rank in 0..hw.num_gpus {
            print!(" {:>7}", format!("rank{rank}"));
        }
        println!(" {:>7}", "max");
        for (s, r) in &rows {
            print!("  {:11}", s.label());
            for &m in &r.memory_per_rank {
                print!(" {:>7.2}", m as f64 / GIB);
            }
            println!(
                " {:>7.2}  |{}",
                r.peak_memory() as f64 / GIB,
                bar(r.peak_memory() as f64 / GIB, max, 24)
            );
        }
        let dp = rows
            .iter()
            .find(|(s, _)| *s == Strategy::DataParallel)
            .map(|(_, r)| r.clone())
            .expect("DP present");
        let pb = rows
            .iter()
            .find(|(s, _)| *s == Strategy::PipeBd)
            .map(|(_, r)| r.clone())
            .expect("Pipe-BD present");
        let tr = rows
            .iter()
            .find(|(s, _)| *s == Strategy::TrDpu)
            .map(|(_, r)| r.clone())
            .expect("TR+DPU present");
        println!(
            "  Pipe-BD avg overhead over DP: {:+.1}%  (paper: {} )",
            100.0 * pb.memory_overhead_over(&dp),
            if panel.contains("CIFAR") {
                "+8.7%"
            } else {
                "+21.3%"
            },
        );
        println!(
            "  AHD flattens rank 0: TR+DPU rank0 {:.2} GiB -> Pipe-BD rank0 {:.2} GiB",
            tr.memory_per_rank[0] as f64 / GIB,
            pb.memory_per_rank[0] as f64 / GIB
        );
        all_reports.extend(rows.into_iter().map(|(_, r)| r));
    }

    persist_run_set(
        "fig7_memory",
        "per-rank peak memory, NAS workloads, 4x A6000, batch 256",
        all_reports,
    );
}
