//! Fig. 4 — speedup and ablation of baselines and Pipe-BD.
//!
//! For (a) NAS and (b) model compression, on CIFAR-10 and ImageNet
//! (4× A6000, batch 256): speedup of LS, TR, TR+DPU, TR+IR, and
//! TR+DPU+AHD over the DP baseline.

use pipebd_bench::{bar, experiment, header, persist_run_set, run_all};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;

fn main() {
    let hw = HardwareConfig::a6000_server(4);
    header(
        "Fig. 4 — Speedup and ablation of baselines and Pipe-BD",
        &format!("{}, batch 256, speedups normalized to DP", hw.label()),
    );

    let panels = [
        (
            "(a) NAS",
            vec![Workload::nas_cifar10(), Workload::nas_imagenet()],
        ),
        (
            "(b) Model Compression",
            vec![
                Workload::compression_cifar10(),
                Workload::compression_imagenet(),
            ],
        ),
    ];

    let mut all_reports = Vec::new();
    for (panel, workloads) in panels {
        println!("\n{panel}");
        for w in workloads {
            let label = w.label();
            let e = experiment(w, hw.clone(), 256);
            let results = run_all(&e);
            all_reports.extend(results.iter().map(|(_, r)| r.clone()));
            let dp = results
                .iter()
                .find(|(s, _)| *s == Strategy::DataParallel)
                .map(|(_, r)| r.clone())
                .expect("DP always lowers");
            println!("  {label}");
            let speedups: Vec<(Strategy, f64)> = results
                .iter()
                .map(|(s, r)| (*s, r.speedup_over(&dp)))
                .collect();
            let max = speedups.iter().map(|(_, x)| *x).fold(0.0f64, f64::max);
            for (s, x) in &speedups {
                println!("    {:11} {x:5.2}x |{}", s.label(), bar(*x, max, 40));
            }
        }
    }

    println!();
    println!("Paper reference points (Table II, 4x A6000):");
    println!("  NAS/CIFAR-10          Pipe-BD 3.08x over DP, LS 1.93x");
    println!("  NAS/ImageNet          Pipe-BD 4.38x over DP, LS 0.50x (see EXPERIMENTS.md)");
    println!("  Compression/CIFAR-10  Pipe-BD 7.32x over DP, LS 2.01x");
    println!("  Compression/ImageNet  Pipe-BD 3.78x over DP, LS 0.40x (see EXPERIMENTS.md)");

    persist_run_set(
        "fig4_ablation",
        "all strategies on all four workloads, 4x A6000, batch 256",
        all_reports,
    );
}
