//! The trace plane's harness binary: run the instrumented acceptance
//! scenarios, export their Chrome `trace_event` timelines, and persist
//! the `pipebd.trace` artifacts.
//!
//! For each trace scenario (TR+DPU, hybrid, AHD — the strategies the
//! paper's steady-state figures rest on) this bin:
//!
//! 1. runs the threaded executor fully instrumented
//!    ([`pipebd_testkit::run_trace_scenario`]) and judges the measured
//!    period and bottleneck stage against the analytic estimator and the
//!    event simulator on the run's own measured profile;
//! 2. writes the combined executor + simulator Chrome trace
//!    (`<id>.chrome.json` under the artifact root — open at
//!    <https://ui.perfetto.dev>, see `EXPERIMENTS.md`) and re-parses it
//!    through `pipebd_json` so a malformed export fails loudly;
//! 3. persists the run as a schema-versioned [`TraceArtifact`]
//!    (`pipebd.trace`) and round-trips it through the typed store,
//!    failing on any envelope drift.
//!
//! `PIPEBD_TRACE` does not gate this bin — exporting a trace is the whole
//! point, so the harness always instruments in full mode (the env var is
//! still echoed in the header; the off-mode overhead contract is proved
//! by the testkit's bitwise differential instead).
//!
//! Exit 1 on any differential failure, dropped span, export parse
//! failure, or artifact drift. Run with:
//! `cargo run --release -p pipebd_bench --bin trace_report`

use pipebd_artifact::{ArtifactPayload, ArtifactStore, TraceArtifact};
use pipebd_json as json;
use pipebd_testkit::{run_trace_scenario, trace_scenarios, ToleranceBook, TraceRun};
use pipebd_trace::chrome;

/// Exports the combined Chrome trace and returns the number of
/// `traceEvents` it holds after a parse round-trip.
fn export_chrome(store: &ArtifactStore, run: &TraceRun) -> Result<usize, String> {
    let value = chrome::combined_trace(&run.report, &run.graph, &run.sim_run);
    let text = value.to_string();
    // `traces/` keeps the raw trace_event files out of the envelope
    // store's namespace — `artifact_smoke` re-parses every top-level
    // `*.json` as a schema-versioned envelope, which these are not.
    let root = store.root().join("traces");
    std::fs::create_dir_all(&root).map_err(|e| format!("creating {}: {e}", root.display()))?;
    let path = root.join(format!("{}.chrome.json", run.scenario_id));
    std::fs::write(&path, &text).map_err(|e| format!("writing {}: {e}", path.display()))?;

    // A trace nobody can open is worse than none: re-parse what landed on
    // disk and check the trace_event envelope shape.
    let reread =
        std::fs::read_to_string(&path).map_err(|e| format!("rereading {}: {e}", path.display()))?;
    let parsed = json::parse(&reread).map_err(|e| format!("export is not valid JSON: {e}"))?;
    let events = parsed
        .get("traceEvents")
        .and_then(json::Value::as_array)
        .ok_or("export lacks a `traceEvents` array")?;
    if events.is_empty() {
        return Err("export holds zero trace events".into());
    }
    println!(
        "  chrome trace: {} ({} events)",
        path.display(),
        events.len()
    );
    Ok(events.len())
}

/// Persists the run as a `pipebd.trace` artifact and round-trips it
/// through the typed store.
fn persist_artifact(store: &ArtifactStore, run: &TraceRun) -> Result<(), String> {
    let art = TraceArtifact {
        scenario: run.scenario_id.clone(),
        mode: run.report.mode.clone(),
        lanes: run.differential.lanes,
        summary: run.summary.clone(),
        metrics: run.report.metrics.clone(),
        differential: Some(run.differential.clone()),
    };
    let name = format!("TRACE_{}", run.scenario_id);
    let path = store
        .save(&name, &art)
        .map_err(|e| format!("saving {name}: {e}"))?;
    let (meta, loaded) = store
        .load_with_meta::<TraceArtifact>(&name)
        .map_err(|e| format!("round-tripping {name}: {e}"))?;
    if meta.schema != TraceArtifact::SCHEMA || meta.version != u64::from(TraceArtifact::VERSION) {
        return Err(format!(
            "{name}: envelope drift — schema `{}` v{} on disk, expected `{}` v{}",
            meta.schema,
            meta.version,
            TraceArtifact::SCHEMA,
            TraceArtifact::VERSION
        ));
    }
    if loaded != art {
        return Err(format!("{name}: payload did not round-trip bitwise"));
    }
    println!("  artifact: {}", path.display());
    Ok(())
}

fn report_scenario(store: &ArtifactStore, run: &TraceRun) -> Result<(), String> {
    let d = &run.differential;
    let s = &run.summary;
    println!(
        "  {} {}: measured {:.3}ms vs predicted {:.3}ms / simulated {:.3}ms \
         (ratios {:.3}/{:.3} in [{:.2},{:.2}], lanes {})",
        if d.pass { "ok  " } else { "FAIL" },
        run.scenario_id,
        d.measured_period_ns as f64 / 1e6,
        d.predicted_period_ns as f64 / 1e6,
        d.simulated_period_ns as f64 / 1e6,
        d.predicted_ratio,
        d.simulated_ratio,
        d.ratio_lo,
        d.ratio_hi,
        d.lanes,
    );
    println!(
        "       bottleneck stage {} (predicted {}, simulated {}){}; bubble ratio {:.3}; \
         {} spans, {} dropped",
        d.bottleneck_measured,
        d.bottleneck_predicted,
        d.bottleneck_simulated,
        if d.bottleneck_checked {
            ""
        } else {
            " [margin too thin to assert]"
        },
        s.bubble_ratio,
        s.spans,
        s.dropped,
    );
    for st in &s.stages {
        println!(
            "       stage {} (width {}): busy {:.1}%  bubble {:.1}%",
            st.stage,
            st.width,
            st.busy_ratio * 100.0,
            st.bubble_ratio * 100.0
        );
    }
    if !d.pass {
        return Err(format!("differential failed: {}", d.detail));
    }
    if s.dropped > 0 {
        return Err(format!(
            "{} spans dropped — ring too small for this run",
            s.dropped
        ));
    }
    export_chrome(store, run)?;
    persist_artifact(store, run)
}

fn main() {
    pipebd_bench::header(
        "Trace report — instrumented executor vs estimator vs simulator",
        "spans -> measured profile -> both predictors; Chrome traces + pipebd.trace artifacts",
    );
    let store = ArtifactStore::from_env();
    let book = ToleranceBook::gate_default();
    let mut failures = 0usize;
    for s in &trace_scenarios() {
        println!("== {} ==", s.id);
        let verdict = run_trace_scenario(s, &book).and_then(|run| report_scenario(&store, &run));
        if let Err(e) = verdict {
            eprintln!("  FAIL {}: {e}", s.id);
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("trace report FAILED: {failures} scenario(s)");
        std::process::exit(1);
    }
    println!("trace report passed: all scenarios within ToleranceBook::trace, exports valid");
}
