//! Fig. 6 — batch-size sensitivity of Pipe-BD on NAS.
//!
//! Speedups of LS, TR, TR+DPU, and TR+DPU+AHD over DP at global batch
//! sizes 128/256/384/512, on CIFAR-10 and ImageNet (4× A6000). Each batch
//! size is normalized against DP *at that batch size*, exactly as in the
//! paper.

use pipebd_bench::{experiment, header, persist_run_set};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;

const BATCHES: [usize; 4] = [128, 256, 384, 512];
const SHOWN: [Strategy; 4] = [
    Strategy::LayerwiseScheduling,
    Strategy::TeacherRelaying,
    Strategy::TrDpu,
    Strategy::PipeBd,
];

fn main() {
    let hw = HardwareConfig::a6000_server(4);
    header(
        "Fig. 6 — Batch size sensitivity of Pipe-BD on NAS",
        &format!("{}, normalized to DP at each batch size", hw.label()),
    );

    let mut all_reports = Vec::new();
    for (panel, workload) in [
        ("(a) CIFAR-10", Workload::nas_cifar10()),
        ("(b) ImageNet", Workload::nas_imagenet()),
    ] {
        println!("\n{panel}");
        print!("  {:11}", "strategy");
        for b in BATCHES {
            print!(" {b:>8}");
        }
        println!();
        let mut table: Vec<(Strategy, Vec<f64>)> = SHOWN.iter().map(|&s| (s, Vec::new())).collect();
        for &batch in &BATCHES {
            let e = experiment(workload.clone(), hw.clone(), batch);
            let dp = e
                .run(Strategy::DataParallel)
                .expect("DP lowers at all batch sizes");
            for (s, row) in &mut table {
                let report = e.run(*s).ok();
                let x = report
                    .as_ref()
                    .map(|r| r.speedup_over(&dp))
                    .unwrap_or(f64::NAN);
                row.push(x);
                all_reports.extend(report);
            }
            all_reports.push(dp);
        }
        for (s, row) in &table {
            print!("  {:11}", s.label());
            for x in row {
                print!(" {x:>7.2}x");
            }
            println!();
        }
        // The paper's two trends, verified here:
        let pipe_row = &table
            .iter()
            .find(|(s, _)| *s == Strategy::PipeBd)
            .unwrap()
            .1;
        match panel {
            "(a) CIFAR-10" => {
                // Speedups are better at smaller batch (utilization gap).
                println!(
                    "  trend: speedup at 128 ({:.2}x) vs 512 ({:.2}x) — paper: higher at small batch",
                    pipe_row[0], pipe_row[3]
                );
            }
            _ => {
                // Exception: AHD on ImageNet improves at larger batch.
                println!(
                    "  trend: AHD speedup at 128 ({:.2}x) vs 512 ({:.2}x) — paper: higher at large batch",
                    pipe_row[0], pipe_row[3]
                );
            }
        }
    }

    persist_run_set(
        "fig6_batch_sensitivity",
        "NAS workloads at batch 128/256/384/512, 4x A6000",
        all_reports,
    );
}
