//! CI gate for the conformance plane and the perf baselines: runs the full
//! differential scenario sweep and compares current bench artifacts
//! against the baselines committed at the repository root.
//!
//! Modes:
//!
//! * **default** — enumerate every conformance scenario, run the executor
//!   and simulator/estimator differentials, persist the sweep
//!   (`CONFORMANCE_scenarios`, `CONFORMANCE_report`), then compare the
//!   current `BENCH_e2e`/`BENCH_kernels` artifacts (written by the micro
//!   bench and `kernel_smoke`) against the committed `BENCH_e2e.json` /
//!   `BENCH_kernels.json`. Exit 1 on any conformance drift, and on perf
//!   regressions beyond tolerance **when the machine fingerprint matches
//!   the baseline's** — on foreign machines the nanosecond comparison is
//!   reported but informational (the escape hatch; speedup *ratios* are
//!   still enforced).
//! * **`--self-test`** — prove every gate half actually fires. Perf: an
//!   injected fixture baseline makes the current run look 2× slower (same
//!   fingerprint) and must fail the comparison, while the run compared
//!   against itself must pass. Thread-scaling: an injected kernel
//!   baseline makes every scaling point look 8× slower and the curve
//!   gate must flag it (and stay silent comparing curves to themselves).
//!   Fault budgets: a replanned slowdown scenario must pass the declared
//!   `ToleranceBook` and must *fail* once its fault-class budget is
//!   sabotaged to an unsatisfiable window. Recovery: a host-loss script
//!   must kill and restore the threaded run bitwise under the declared
//!   policy, fire a structured `RecoveryExhausted` under a sabotaged
//!   zero-restore budget, and a torn checkpoint file must error loudly.
//!   Rejoin: an elastic host-join script must complete end to end
//!   bitwise through the device-thread registry (no restore budget
//!   spent), and a planted stale-plan checkpoint must fail the rejoin
//!   loudly with the structured plan-fingerprint mismatch.
//!   Exit 0 iff every probe behaved correctly both ways.
//!
//! Flags / environment:
//!
//! * `--require-bench` — missing current bench artifacts become fatal
//!   (CI sets this so a lane misconfiguration cannot silently skip the
//!   perf half).
//! * `--json` — persist the sweep verdict as a machine-readable
//!   `pipebd.gate_report` artifact (`GATE_report`) and run the trace
//!   hook: one instrumented scenario whose whole-run bubble ratio is
//!   recorded and diffed against the previously persisted report's —
//!   non-fatally, so the bubble trend is tracked across commits without
//!   letting shared-runner noise fail the gate.
//! * `PIPEBD_CONFORMANCE_STRIDE=N` — run every Nth scenario (quick local
//!   iteration; printed loudly, never set in CI).
//!
//! Run with: `cargo run --release -p pipebd_bench --bin regression_gate`

use std::path::{Path, PathBuf};

use pipebd_artifact::{
    pooled_fingerprint, ArtifactError, ArtifactStore, BenchKernels, BenchSuite, BenchTolerance,
    GateCheck, GateReport,
};
use pipebd_tensor::{kernel_policy, set_kernel_policy};
use pipebd_testkit::{
    enumerate, run_scenario, run_trace_scenario, trace_scenarios, ConformanceReport, FaultClass,
    RatioBudget, ScenarioSet, SimWorkload, ToleranceBook,
};

/// Minimum fraction of the baseline's kernel speedup the current run must
/// retain (ratios transfer across machines, so this is enforced even when
/// fingerprints differ).
const MIN_SPEEDUP_RETAINED: f64 = 0.4;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels under the workspace root")
        .to_path_buf()
}

/// Runs the conformance sweep; returns the number of failing scenarios.
fn conformance_sweep(store: &ArtifactStore) -> usize {
    let stride: usize = std::env::var("PIPEBD_CONFORMANCE_STRIDE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    let all = enumerate();
    let scenarios: Vec<_> = all.iter().step_by(stride).cloned().collect();
    if stride > 1 {
        println!(
            "!! PIPEBD_CONFORMANCE_STRIDE={stride}: running {} of {} scenarios (never do this in CI)",
            scenarios.len(),
            all.len()
        );
    }
    let book = ToleranceBook::gate_default();
    let ambient = kernel_policy();
    let mut outcomes = Vec::with_capacity(scenarios.len());
    let mut failures = 0usize;
    for s in &scenarios {
        set_kernel_policy(s.kernel_policy());
        let outcome = run_scenario(s, &book);
        let verdict = if outcome.pass { "ok  " } else { "FAIL" };
        println!(
            "  {verdict} {id:<28} param {param:>9.2e}  loss {loss:>9.2e}  sim/est {ratio:>6.3} in [{lo:.2},{hi:.2}]{bn}{fault}{detail}",
            id = outcome.id,
            fault = if outcome.fault_class.is_empty() {
                String::new()
            } else {
                format!(
                    "  fault:{}:{}",
                    outcome.fault_class,
                    if outcome.replan { "replan" } else { "static" }
                )
            },
            param = outcome.max_param_diff,
            loss = outcome.max_loss_diff,
            ratio = outcome.sim_ratio,
            lo = outcome.ratio_lo,
            hi = outcome.ratio_hi,
            bn = if outcome.bottleneck_checked {
                if outcome.bottleneck_ok { "  bn:ok" } else { "  bn:FAIL" }
            } else {
                ""
            },
            detail = if outcome.detail.is_empty() {
                String::new()
            } else {
                format!("  [{}]", outcome.detail)
            },
        );
        if !outcome.pass {
            failures += 1;
        }
        outcomes.push(outcome);
    }
    set_kernel_policy(ambient);

    let persist = |name: &str, res: Result<PathBuf, ArtifactError>| match res {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => panic!("failed to persist `{name}`: {e}"),
    };
    persist(
        "CONFORMANCE_scenarios",
        store.save(
            "CONFORMANCE_scenarios",
            &ScenarioSet {
                description: format!(
                    "conformance sweep, stride {stride}: {} scenarios",
                    scenarios.len()
                ),
                scenarios,
            },
        ),
    );
    persist(
        "CONFORMANCE_report",
        store.save(
            "CONFORMANCE_report",
            &ConformanceReport {
                scenarios: outcomes.len(),
                failures,
                outcomes,
            },
        ),
    );
    failures
}

/// Compares current bench artifacts against the committed baselines.
/// Returns the number of *fatal* regressions.
fn perf_gate(
    current_store: &ArtifactStore,
    baseline_store: &ArtifactStore,
    require: bool,
) -> usize {
    let mut fatal = 0usize;
    let fingerprint = pooled_fingerprint(pipebd_tensor::parallel::default_pool_size());
    println!("machine fingerprint: {fingerprint}");

    match (
        current_store.load::<BenchSuite>("BENCH_e2e"),
        baseline_store.load::<BenchSuite>("BENCH_e2e"),
    ) {
        (Ok(current), Ok(baseline)) => {
            let enforced = current.fingerprint == baseline.fingerprint;
            println!(
                "BENCH_e2e: baseline fingerprint `{}` — nanosecond tolerances {}",
                baseline.fingerprint,
                if enforced {
                    "ENFORCED (same machine)"
                } else {
                    "informational (different machine)"
                }
            );
            let deltas = current.compare_with(&baseline, &BenchTolerance::gate_default());
            for d in &deltas {
                println!(
                    "  {} {:<44} base {:>12} ns  now {:>12} ns  ratio {:>6.2} (limit {:.2})",
                    if d.regressed { "SLOW" } else { "ok  " },
                    d.id,
                    d.baseline_ns,
                    d.current_ns,
                    d.ratio,
                    d.max_ratio,
                );
                if d.regressed && enforced {
                    fatal += 1;
                }
            }
            if deltas.is_empty() {
                println!("  (no overlapping benchmark ids)");
            }
        }
        (Err(e), _) => {
            println!("BENCH_e2e: no current artifact ({e})");
            if require {
                fatal += 1;
            }
        }
        (_, Err(e)) => {
            println!("BENCH_e2e: no committed baseline ({e})");
            if require {
                fatal += 1;
            }
        }
    }

    match (
        current_store.load::<BenchKernels>("BENCH_kernels"),
        baseline_store.load::<BenchKernels>("BENCH_kernels"),
    ) {
        (Ok(current), Ok(baseline)) => {
            // Speedups are ratios: enforced regardless of fingerprint.
            println!(
                "BENCH_kernels: current speedup must retain >= {MIN_SPEEDUP_RETAINED}x of baseline (ENFORCED on every machine)"
            );
            let deltas = current.compare_speedups(&baseline, MIN_SPEEDUP_RETAINED);
            if deltas.is_empty() {
                println!("  (no overlapping kernel names)");
            }
            for d in deltas {
                println!(
                    "  {} {:<44} base {:>6.2}x  now {:>6.2}x",
                    if d.regressed { "SLOW" } else { "ok  " },
                    d.kernel,
                    d.baseline,
                    d.current,
                );
                if d.regressed {
                    fatal += 1;
                }
            }

            // Thread-scaling curves: raw nanoseconds at specific pool
            // widths, so only a matching pool-aware fingerprint makes
            // regressions fatal (a different host or budget legitimately
            // reshapes the curve).
            let enforced = current.fingerprint == baseline.fingerprint;
            println!(
                "BENCH_kernels scaling: baseline fingerprint `{}` — curves {}",
                baseline.fingerprint,
                if enforced {
                    "ENFORCED (same machine + pool budget)"
                } else {
                    "informational (different machine or pool budget)"
                }
            );
            let scaling = current.compare_scaling(&baseline, &BenchTolerance::scaling_default());
            if scaling.is_empty() {
                println!("  (no overlapping scaling points)");
            }
            for d in scaling {
                println!(
                    "  {} {:<38} p{} base {:>10} ns  now {:>10} ns  ratio {:>6.2} (limit {:.2})",
                    if d.regressed { "SLOW" } else { "ok  " },
                    d.kernel,
                    d.pool,
                    d.baseline_ns,
                    d.current_ns,
                    d.ratio,
                    d.max_ratio,
                );
                if d.regressed && enforced {
                    fatal += 1;
                }
            }
        }
        (Err(e), _) => {
            println!("BENCH_kernels: no current artifact ({e})");
            if require {
                fatal += 1;
            }
        }
        (_, Err(e)) => {
            println!("BENCH_kernels: no committed baseline ({e})");
            if require {
                fatal += 1;
            }
        }
    }
    fatal
}

/// Proves the conformance gate's fault budgets fire: one replanned
/// slowdown scenario must pass under the declared tolerance book and fail
/// — with the fault class named in the detail — under a sabotaged book
/// whose slowdown budget no real run can satisfy.
fn fault_self_test() -> bool {
    let all = enumerate();
    let Some(s) = all.iter().find(|s| {
        s.sim_workload == SimWorkload::Synthetic
            && s.ranks == 4
            && s.fault
                .as_ref()
                .is_some_and(|f| f.class == FaultClass::Slowdown && f.replan)
    }) else {
        eprintln!("fault self-test FAILED: no replanned slowdown scenario in the matrix");
        return false;
    };
    let book = ToleranceBook::gate_default();
    let honest = run_scenario(s, &book);
    if !honest.pass {
        eprintln!(
            "fault self-test FAILED: `{}` does not pass the declared book ({})",
            honest.id, honest.detail
        );
        return false;
    }
    let mut sabotaged = book.clone();
    sabotaged.fault_slowdown = RatioBudget { lo: 0.0, hi: 1e-3 };
    let fired = run_scenario(s, &sabotaged);
    if fired.pass {
        eprintln!(
            "fault self-test FAILED: `{}` passed a budget no real period can meet — the fault gate never fires",
            fired.id
        );
        return false;
    }
    if !fired.detail.contains("slowdown") {
        eprintln!(
            "fault self-test FAILED: `{}` failure detail does not name the fault class: {}",
            fired.id, fired.detail
        );
        return false;
    }
    println!(
        "fault self-test: `{}` ratio {:.3} passes [{:.2},{:.2}], fails the sabotaged budget with: {}",
        honest.id, honest.sim_ratio, honest.ratio_lo, honest.ratio_hi, fired.detail
    );
    true
}

/// Proves the recovery gate fires, both ways:
///
/// * a host-loss script under the *declared* recovery policy must kill
///   and restore the threaded run and finish with a bitwise-identical
///   model (the honest half);
/// * the same script under a **sabotaged budget** (`max_restores = 0`,
///   no fallback) must surface a structured
///   [`ExecError::RecoveryExhausted`](pipebd_core::exec::ExecError) —
///   never a hang or a silent pass;
/// * a **torn checkpoint file** must make the durable sink's `latest()`
///   return a hard error, never a silent "no checkpoint".
fn recovery_self_test() -> bool {
    use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
    use pipebd_core::exec::{ExecError, FuncConfig};
    use pipebd_core::{CheckpointSink, MemorySink};
    use pipebd_data::SyntheticImageDataset;
    use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
    use pipebd_sim::{FaultEvent, FaultScript};
    use pipebd_tensor::Rng64;
    use std::sync::Arc;

    let cfg = MiniConfig {
        blocks: 4,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(23);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 29);
    let workload = Workload::synthetic(4, false);
    let script = FaultScript {
        events: vec![FaultEvent::HostLoss {
            rank: 1,
            at_step: 4,
        }],
    };
    let func = FuncConfig {
        devices: 2,
        steps: 8,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: Some(1),
    };

    // Honest half: declared policy → kill, restore, bitwise replay.
    let honest = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let report = match honest.run(&teacher, &student, &data, &func) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery self-test FAILED: honest recovery run errored: {e}");
            return false;
        }
    };
    if report.restores == 0 && !report.fell_back {
        eprintln!("recovery self-test FAILED: the host loss never exercised the protocol");
        return false;
    }
    let golden = match pipebd_core::exec::reference::run(&teacher, &student, &data, &func) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("recovery self-test FAILED: reference run errored: {e}");
            return false;
        }
    };
    let diff = report.outcome.max_param_diff(&golden);
    if diff != 0.0 {
        eprintln!(
            "recovery self-test FAILED: recovered width-1 run drifted {diff:e} from the uninterrupted reference"
        );
        return false;
    }

    // Sabotaged half: a zero restore budget with no fallback must fire
    // the structured exhaustion error.
    let sabotaged = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy {
            max_restores: 0,
            reference_fallback: false,
            ..RecoveryPolicy::default()
        },
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    match sabotaged.run(&teacher, &student, &data, &func) {
        Err(ExecError::RecoveryExhausted { attempts: 0 }) => {}
        Err(e) => {
            eprintln!("recovery self-test FAILED: sabotaged budget produced the wrong error: {e}");
            return false;
        }
        Ok(_) => {
            eprintln!(
                "recovery self-test FAILED: a zero restore budget passed — the recovery gate never fires"
            );
            return false;
        }
    }

    // Torn-checkpoint half: truncate a persisted envelope mid-file; the
    // durable sink must error loudly instead of reporting "no checkpoint".
    let root = std::env::temp_dir().join(format!("pipebd_gate_torn_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let ckpt_sink = pipebd_artifact::CheckpointStore::at(&root, "SELFTEST_ckpt");
    let hooks = pipebd_core::exec::threaded::RunHooks {
        driver: None,
        resume: None,
        checkpoint: Some((
            pipebd_core::CheckpointPolicy::every(2),
            Arc::new(ckpt_sink.clone()) as Arc<dyn CheckpointSink>,
        )),
        trace: None,
    };
    if let Err(e) =
        pipebd_core::exec::threaded::run_hooked(&teacher, &student, &data, &func, &hooks)
    {
        eprintln!("recovery self-test FAILED: checkpointed healthy run errored: {e}");
        return false;
    }
    let path = ckpt_sink.path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "recovery self-test FAILED: no checkpoint landed at {}: {e}",
                path.display()
            );
            return false;
        }
    };
    std::fs::write(&path, &text[..text.len() / 2]).expect("torn fixture persists");
    let torn_fired = ckpt_sink.latest().is_err();
    let _ = std::fs::remove_dir_all(&root);
    if !torn_fired {
        eprintln!(
            "recovery self-test FAILED: a torn checkpoint loaded silently — restores could lose paid-for training"
        );
        return false;
    }

    println!(
        "recovery self-test: host loss killed and restored ({} restore(s), resumed rounds {:?}), replay bitwise; zero budget fired RecoveryExhausted; torn checkpoint errored loudly",
        report.restores, report.resumed_rounds
    );
    true
}

/// Proves the elastic-rejoin gate fires, both ways:
///
/// * a host-join script — the exact shape the executor used to reject
///   with a structured `Config` error ("fixed thread set") — must now
///   complete end to end under the declared policy: the device-thread
///   registry grows the worker set at the join's round boundary, the
///   growth spends no restore budget, and the recovered width-1 run
///   replays the uninterrupted reference *bitwise*;
/// * a **stale-plan checkpoint** planted in the sink (a foreign
///   fingerprint at a winning round) must make the rejoin fail loudly
///   with the structured plan-fingerprint mismatch — never a silent
///   resume of another run's trajectory.
fn rejoin_self_test() -> bool {
    use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
    use pipebd_core::exec::{ExecError, FuncConfig};
    use pipebd_core::{Checkpoint, CheckpointSink, MemorySink};
    use pipebd_data::SyntheticImageDataset;
    use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
    use pipebd_sim::{FaultEvent, FaultScript};
    use pipebd_tensor::Rng64;
    use std::sync::Arc;

    let cfg = MiniConfig {
        blocks: 4,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(31);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 37);
    let workload = Workload::synthetic(4, false);
    // Rank 1 of the 2-rank set is absent at step 0 and joins at step 3:
    // the first epoch runs short-handed, the registry admits the host at
    // the round-3 boundary.
    let script = FaultScript {
        events: vec![FaultEvent::HostJoin {
            rank: 1,
            at_step: 3,
        }],
    };
    let func = FuncConfig {
        devices: 2,
        steps: 6,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: Some(1),
    };

    // Honest half: the join grows the member set and replays bitwise.
    let honest = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let report = match honest.run(&teacher, &student, &data, &func) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rejoin self-test FAILED: honest join run errored: {e}");
            return false;
        }
    };
    if report.grows == 0 {
        eprintln!("rejoin self-test FAILED: the join never grew the member set");
        return false;
    }
    if report.restores != 0 || report.fell_back {
        eprintln!(
            "rejoin self-test FAILED: growth spent restore budget ({} restore(s), fell_back {})",
            report.restores, report.fell_back
        );
        return false;
    }
    let golden = match pipebd_core::exec::reference::run(&teacher, &student, &data, &func) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("rejoin self-test FAILED: reference run errored: {e}");
            return false;
        }
    };
    let diff = report.outcome.max_param_diff(&golden);
    if diff != 0.0 {
        eprintln!(
            "rejoin self-test FAILED: grown width-1 run drifted {diff:e} from the uninterrupted reference"
        );
        return false;
    }

    // Sabotaged half: plant a checkpoint from a foreign plan at a round
    // that wins the sink's round-max race. The rejoin's restore must
    // refuse it with the structured mismatch, not resume it.
    let sink = Arc::new(MemorySink::default());
    let stale = Checkpoint {
        round: 99,
        data_cursor: 99 * 8,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan_fingerprint: "9x9:0000000000000bad".to_string(),
        blocks: vec![],
    };
    if let Err(e) = sink.store(&stale) {
        eprintln!("rejoin self-test FAILED: could not plant the stale checkpoint: {e}");
        return false;
    }
    let sabotaged = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::clone(&sink) as Arc<dyn CheckpointSink>,
        trace: None,
    };
    match sabotaged.run(&teacher, &student, &data, &func) {
        Err(ExecError::Checkpoint(msg)) if msg.contains("plan fingerprint mismatch") => {}
        Err(e) => {
            eprintln!("rejoin self-test FAILED: stale checkpoint produced the wrong error: {e}");
            return false;
        }
        Ok(_) => {
            eprintln!(
                "rejoin self-test FAILED: a stale-plan checkpoint resumed silently — the lineage gate never fires"
            );
            return false;
        }
    }

    println!(
        "rejoin self-test: join grew the member set ({} grow(s), resumed rounds {:?}), replay bitwise; stale-plan checkpoint refused with the structured mismatch",
        report.grows, report.resumed_rounds
    );
    true
}

/// Proves the perf gate fires: an injected baseline that makes the current
/// run look 2× slower must produce regressions; the current run against
/// itself must not.
fn self_test(current_store: &ArtifactStore, baseline_store: &ArtifactStore) -> bool {
    // Use the current suite if a bench ran, else fall back to the
    // committed baseline as the "current" run (pure fixture arithmetic —
    // no timing happens here).
    let current: BenchSuite = match current_store.load("BENCH_e2e") {
        Ok(s) => s,
        Err(_) => match baseline_store.load("BENCH_e2e") {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "self-test FAILED: no BENCH_e2e anywhere to build the fixture from ({e})"
                );
                return false;
            }
        },
    };
    // The fixture keeps the current run's fingerprint (it is a clone), so
    // a same-machine comparison is what the self-test exercises.
    let mut injected = current.clone();
    for r in &mut injected.records {
        // Halving the baseline makes the current run a 2× slowdown.
        r.mean_ns = (r.mean_ns / 2).max(1);
    }
    // Round-trip the fixture through the store: the gate must fail on what
    // is actually on disk, not only on in-memory values.
    current_store
        .save("SELFTEST_injected_baseline", &injected)
        .expect("fixture persists");
    let injected: BenchSuite = current_store
        .load("SELFTEST_injected_baseline")
        .expect("fixture reloads");

    let tol = BenchTolerance::gate_default();
    let against_injected = current.compare_with(&injected, &tol);
    // A 2x slowdown must flag exactly the benches the policy promises to
    // catch: ratio limit below 2.0 and a delta above the noise floor.
    let mut fired = 0usize;
    let mut expected = 0usize;
    let mut mismatch = false;
    for d in &against_injected {
        let should_fire = d.max_ratio < 2.0 && d.current_ns > d.baseline_ns + tol.floor_ns;
        expected += usize::from(should_fire);
        fired += usize::from(d.regressed);
        if d.regressed != should_fire {
            eprintln!(
                "self-test mismatch on `{}`: regressed={} but policy says {} (ratio {:.2}, limit {:.2})",
                d.id, d.regressed, should_fire, d.ratio, d.max_ratio
            );
            mismatch = true;
        }
    }
    let against_self = current.compare_with(&current, &tol);
    let false_alarms = against_self.iter().filter(|d| d.regressed).count();

    println!(
        "self-test: {fired} of {} benches flagged vs the injected 2x-slowdown fixture ({expected} expected); {false_alarms} false alarms vs self",
        against_injected.len(),
    );
    if mismatch {
        eprintln!("self-test FAILED: flagged set diverges from the declared policy");
        return false;
    }
    if expected == 0 || fired == 0 {
        eprintln!("self-test FAILED: the fixture must make the gate fire at least once");
        return false;
    }
    if false_alarms > 0 {
        eprintln!(
            "self-test FAILED: comparing a run against itself flagged {false_alarms} benches"
        );
        return false;
    }
    true
}

/// Proves the thread-scaling gate fires: an injected kernel baseline whose
/// scaling points are 8× faster than the current run's must flag every
/// point the policy promises to catch; the current curves against
/// themselves must not flag at all.
fn scaling_self_test(current_store: &ArtifactStore, baseline_store: &ArtifactStore) -> bool {
    let current: BenchKernels = match current_store.load("BENCH_kernels") {
        Ok(k) => k,
        Err(_) => match baseline_store.load("BENCH_kernels") {
            Ok(k) => k,
            Err(e) => {
                eprintln!(
                    "scaling self-test FAILED: no BENCH_kernels anywhere to build the fixture from ({e})"
                );
                return false;
            }
        },
    };
    if current.scaling.iter().all(|c| c.points.is_empty()) {
        eprintln!(
            "scaling self-test FAILED: the kernel baseline carries no scaling curves (rerun kernel_smoke)"
        );
        return false;
    }
    // An 8×-faster injected baseline makes every current point look like
    // an 8× slowdown; the clone keeps the pool-aware fingerprint, so this
    // is the enforced same-machine comparison.
    let mut injected = current.clone();
    for curve in &mut injected.scaling {
        for p in &mut curve.points {
            p.mean_ns = (p.mean_ns / 8).max(1);
        }
    }
    current_store
        .save("SELFTEST_injected_scaling", &injected)
        .expect("fixture persists");
    let injected: BenchKernels = current_store
        .load("SELFTEST_injected_scaling")
        .expect("fixture reloads");

    let tol = BenchTolerance::scaling_default();
    let against_injected = current.compare_scaling(&injected, &tol);
    let mut fired = 0usize;
    let mut expected = 0usize;
    let mut mismatch = false;
    for d in &against_injected {
        let should_fire = d.max_ratio < 8.0 && d.current_ns > d.baseline_ns + tol.floor_ns;
        expected += usize::from(should_fire);
        fired += usize::from(d.regressed);
        if d.regressed != should_fire {
            eprintln!(
                "scaling self-test mismatch on `{}` p{}: regressed={} but policy says {} (ratio {:.2}, limit {:.2})",
                d.kernel, d.pool, d.regressed, should_fire, d.ratio, d.max_ratio
            );
            mismatch = true;
        }
    }
    let false_alarms = current
        .compare_scaling(&current, &tol)
        .iter()
        .filter(|d| d.regressed)
        .count();

    println!(
        "scaling self-test: {fired} of {} points flagged vs the injected 8x-slowdown fixture ({expected} expected); {false_alarms} false alarms vs self",
        against_injected.len(),
    );
    if mismatch {
        eprintln!("scaling self-test FAILED: flagged set diverges from the declared policy");
        return false;
    }
    if expected == 0 || fired == 0 {
        eprintln!(
            "scaling self-test FAILED: the fixture must make the scaling gate fire at least once"
        );
        return false;
    }
    if false_alarms > 0 {
        eprintln!(
            "scaling self-test FAILED: comparing curves against themselves flagged {false_alarms} points"
        );
        return false;
    }
    true
}

/// The gate's trace hook, run under `--json`: one instrumented scenario,
/// recorded for its bubble-ratio trend against the previously persisted
/// `GateReport`. Non-fatal by design — wall-clock bubble ratios on shared
/// runners drift for reasons no commit caused, so the trend lives in the
/// artifact for CI archaeology while hard enforcement stays with the
/// testkit's trace differential.
fn trace_bubble_hook(store: &ArtifactStore) -> (GateCheck, Option<f64>) {
    let scenarios = trace_scenarios();
    let s = &scenarios[0];
    let previous = store
        .load::<GateReport>("GATE_report")
        .ok()
        .and_then(|r| r.bubble_ratio);
    match run_trace_scenario(s, &ToleranceBook::gate_default()) {
        Ok(run) => {
            let now = run.summary.bubble_ratio;
            let trend = match previous {
                Some(prev) => format!("; previous {prev:.3}, delta {:+.3}", now - prev),
                None => "; no previous gate report".to_string(),
            };
            println!(
                "  `{}` bubble ratio {now:.3}{trend}; differential {}",
                run.scenario_id,
                if run.differential.pass {
                    "pass"
                } else {
                    "FAIL (informational in this hook)"
                },
            );
            let check = GateCheck {
                name: "trace_bubble".into(),
                pass: run.differential.pass,
                detail: format!("bubble ratio {now:.3}{trend}"),
            };
            (check, Some(now))
        }
        Err(e) => {
            println!("  trace scenario failed to run: {e}");
            let check = GateCheck {
                name: "trace_bubble".into(),
                pass: false,
                detail: format!("trace scenario failed: {e}"),
            };
            (check, None)
        }
    }
}

/// Persists the machine-readable sweep verdict as a `pipebd.gate_report`
/// artifact.
fn persist_gate_report(store: &ArtifactStore, report: &GateReport) {
    match store.save("GATE_report", report) {
        Ok(path) => println!("artifact: {}", path.display()),
        Err(e) => panic!("failed to persist `GATE_report`: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_test_mode = args.iter().any(|a| a == "--self-test");
    let require_bench = args.iter().any(|a| a == "--require-bench");
    let json_mode = args.iter().any(|a| a == "--json");
    for a in &args {
        if a != "--self-test" && a != "--require-bench" && a != "--json" {
            eprintln!("unknown flag `{a}` (expected --self-test, --require-bench, and/or --json)");
            std::process::exit(2);
        }
    }

    let current_store = ArtifactStore::from_env();
    let baseline_store = ArtifactStore::at(workspace_root());
    let fingerprint = pooled_fingerprint(pipebd_tensor::parallel::default_pool_size());

    if self_test_mode {
        pipebd_bench::header(
            "Regression gate — self-test",
            "inject failing fixtures and prove every gate half fires",
        );
        let halves = [
            ("selftest_perf", self_test(&current_store, &baseline_store)),
            (
                "selftest_scaling",
                scaling_self_test(&current_store, &baseline_store),
            ),
            ("selftest_fault", fault_self_test()),
            ("selftest_recovery", recovery_self_test()),
            ("selftest_rejoin", rejoin_self_test()),
        ];
        let pass = halves.iter().all(|(_, ok)| *ok);
        if json_mode {
            let report = GateReport {
                pass,
                fingerprint,
                checks: halves
                    .iter()
                    .map(|(name, ok)| GateCheck {
                        name: (*name).to_string(),
                        pass: *ok,
                        detail: String::new(),
                    })
                    .collect(),
                bubble_ratio: None,
            };
            persist_gate_report(&current_store, &report);
        }
        if !pass {
            std::process::exit(1);
        }
        println!(
            "regression gate self-test passed (perf + thread-scaling + fault budgets + recovery + rejoin)"
        );
        return;
    }

    pipebd_bench::header(
        "Regression gate — conformance sweep + perf baselines",
        &format!(
            "current: {}  baselines: {}",
            current_store.root().display(),
            baseline_store.root().display()
        ),
    );

    println!("== conformance sweep ==");
    let conformance_failures = conformance_sweep(&current_store);

    println!("== perf baselines ==");
    let perf_failures = perf_gate(&current_store, &baseline_store, require_bench);

    if json_mode {
        println!("== trace hook (bubble-ratio trend, non-fatal) ==");
        let (trace_check, bubble_ratio) = trace_bubble_hook(&current_store);
        let report = GateReport {
            pass: conformance_failures == 0 && perf_failures == 0,
            fingerprint,
            checks: vec![
                GateCheck {
                    name: "conformance".into(),
                    pass: conformance_failures == 0,
                    detail: format!("{conformance_failures} scenario failure(s)"),
                },
                GateCheck {
                    name: "perf_baselines".into(),
                    pass: perf_failures == 0,
                    detail: format!("{perf_failures} fatal regression(s)"),
                },
                trace_check,
            ],
            bubble_ratio,
        };
        persist_gate_report(&current_store, &report);
    }

    if conformance_failures > 0 || perf_failures > 0 {
        eprintln!(
            "regression gate FAILED: {conformance_failures} conformance failures, {perf_failures} perf regressions"
        );
        std::process::exit(1);
    }
    println!("regression gate passed: conformance clean, perf within tolerance");
}
