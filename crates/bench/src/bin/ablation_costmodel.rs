//! Ablation: how sensitive are the paper's conclusions to the simulator's
//! calibration knobs?
//!
//! DESIGN.md calls out three modeling choices: the occupancy
//! half-saturation point (`occ_half`), the loader decode cost, and the
//! prefetch depth (fixed at 4). This harness sweeps the first two across
//! an order of magnitude and reports the Pipe-BD-over-DP speedup for each
//! setting — demonstrating that *who wins* is calibration-independent even
//! though *by how much* moves.

use pipebd_bench::{header, persist_run_set};
use pipebd_core::{ExperimentBuilder, RunReport, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;

fn speedup(workload: Workload, hw: HardwareConfig, reports: &mut Vec<RunReport>) -> f64 {
    let e = ExperimentBuilder::new(workload)
        .hardware(hw)
        .batch_size(256)
        .sim_rounds(8)
        .build()
        .expect("valid");
    let dp = e.run(Strategy::DataParallel).expect("DP");
    let pb = e.run(Strategy::PipeBd).expect("Pipe-BD");
    let x = pb.speedup_over(&dp);
    reports.extend([dp, pb]);
    x
}

fn main() {
    header(
        "Ablation — cost-model sensitivity of the headline result",
        "Pipe-BD speedup over DP under calibration sweeps (NAS + compression, CIFAR-10)",
    );

    let mut reports = Vec::new();
    println!("\n(1) occupancy half-saturation (baseline 3.5e6 for the A6000):");
    println!("{:>12} {:>12} {:>14}", "occ_half", "NAS", "compression");
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut hw = HardwareConfig::a6000_server(4);
        hw.gpu.occ_half *= scale;
        let nas = speedup(Workload::nas_cifar10(), hw.clone(), &mut reports);
        let comp = speedup(Workload::compression_cifar10(), hw, &mut reports);
        println!("{:>12.2e} {nas:>11.2}x {comp:>13.2}x", 3.5e6 * scale);
        assert!(nas > 1.0 && comp > 1.0, "Pipe-BD must win at every setting");
    }

    println!("\n(2) loader decode cost (baseline 25us/sample for CIFAR-10):");
    println!("{:>12} {:>12} {:>14}", "decode", "NAS", "compression");
    for scale in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let hw = HardwareConfig::a6000_server(4);
        let mut nas_w = Workload::nas_cifar10();
        nas_w.dataset.decode_us_per_sample *= scale;
        let mut comp_w = Workload::compression_cifar10();
        comp_w.dataset.decode_us_per_sample *= scale;
        let nas = speedup(nas_w, hw.clone(), &mut reports);
        let comp = speedup(comp_w, hw, &mut reports);
        println!("{:>10.1}us {nas:>11.2}x {comp:>13.2}x", 25.0 * scale);
        assert!(nas > 1.0 && comp > 1.0, "Pipe-BD must win at every setting");
    }

    println!("\n(3) device count (4 is the paper's default):");
    println!("{:>12} {:>12} {:>14}", "devices", "NAS", "compression");
    for n in [2usize, 4, 8] {
        let hw = HardwareConfig::a6000_server(n);
        let nas = speedup(Workload::nas_cifar10(), hw.clone(), &mut reports);
        let comp = speedup(Workload::compression_cifar10(), hw, &mut reports);
        println!("{n:>12} {nas:>11.2}x {comp:>13.2}x");
        assert!(nas > 1.0 && comp > 1.0, "Pipe-BD must win at every scale");
    }

    println!("\nConclusion: Pipe-BD > DP at every sweep point; magnitudes move");
    println!("with calibration but the orderings the paper claims do not.");

    persist_run_set(
        "ablation_costmodel",
        "DP vs Pipe-BD under occ_half/decode/device-count calibration sweeps",
        reports,
    );
}
