//! Shared helpers for the experiment harness binaries.
//!
//! Each binary in `src/bin` regenerates one table or figure of the Pipe-BD
//! paper (see `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured results). This library holds the formatting and
//! sweep plumbing they share.

#![warn(missing_docs)]

use pipebd_artifact::{ArtifactPayload, ArtifactStore, RunSet};
use pipebd_core::{Experiment, ExperimentBuilder, RunReport, Strategy};
use pipebd_models::Workload;
use pipebd_sim::HardwareConfig;
use std::path::PathBuf;

/// Number of rounds the harness simulates before extrapolating to a full
/// epoch (large enough that pipeline fill is <2% of the span).
pub const HARNESS_ROUNDS: u32 = 32;

/// Builds the default experiment for a workload on the given server.
///
/// # Panics
///
/// Panics if the configuration is invalid (cannot happen for the paper's
/// workloads; the harness is not a library API).
pub fn experiment(workload: Workload, hw: HardwareConfig, batch: usize) -> Experiment {
    ExperimentBuilder::new(workload)
        .hardware(hw)
        .batch_size(batch)
        .sim_rounds(HARNESS_ROUNDS)
        .build()
        .expect("paper workloads are valid")
}

/// Runs every strategy, returning `(strategy, report)` pairs; strategies
/// that cannot be laid out (plain TR with too few blocks) are skipped.
pub fn run_all(e: &Experiment) -> Vec<(Strategy, RunReport)> {
    Strategy::ALL
        .iter()
        .filter_map(|&s| e.run(s).ok().map(|r| (s, r)))
        .collect()
}

/// Formats seconds the way the paper's Table II does (`31.52s.`,
/// `62m 21s.`).
pub fn fmt_paper_time(secs: f64) -> String {
    if secs >= 60.0 {
        format!("{}m {:02.0}s.", (secs / 60.0) as u64, secs % 60.0)
    } else {
        format!("{secs:.2}s.")
    }
}

/// Renders a horizontal bar of `value` against `max` using `width` cells.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let cells = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "█".repeat(cells.min(width))
}

/// Prints a standard harness header, including the active tensor
/// [`KernelPolicy`](pipebd_tensor::KernelPolicy), the probed SIMD tier,
/// the trace mode (`PIPEBD_TRACE`), and the worker-pool size, so recorded
/// experiment output is attributable to a compute path *and* an
/// observability configuration.
pub fn header(title: &str, detail: &str) {
    println!("================================================================");
    println!("{title}");
    println!("{detail}");
    println!(
        "kernel policy: {}  simd tier: {}",
        pipebd_tensor::kernel_policy(),
        pipebd_tensor::simd_tier()
    );
    println!(
        "trace mode: {}  pool size: {}",
        pipebd_trace::TraceMode::from_env().label(),
        pipebd_tensor::parallel::default_pool_size()
    );
    println!("================================================================");
}

/// Persists a payload through the default [`ArtifactStore`]
/// (`target/artifacts/`, overridable via `PIPEBD_ARTIFACT_DIR`) and prints
/// the path. Artifacts are part of every figure bin's contract — the
/// `artifact_smoke` CI lane re-parses them — so a write failure aborts the
/// bin.
///
/// # Panics
///
/// Panics if the artifact cannot be written.
pub fn persist<T: ArtifactPayload>(name: &str, payload: &T) -> PathBuf {
    let path = ArtifactStore::from_env()
        .save(name, payload)
        .unwrap_or_else(|e| panic!("failed to write artifact `{name}`: {e}"));
    println!("artifact: {}", path.display());
    path
}

/// Bundles a figure bin's reports into its [`RunSet`] artifact and
/// persists it under the figure's name.
pub fn persist_run_set(figure: &str, description: &str, reports: Vec<RunReport>) -> PathBuf {
    persist(
        figure,
        &RunSet {
            figure: figure.to_string(),
            description: description.to_string(),
            reports,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_time_format() {
        assert_eq!(fmt_paper_time(31.52), "31.52s.");
        assert_eq!(fmt_paper_time(3741.0), "62m 21s.");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn run_all_covers_all_strategies_on_synthetic() {
        let e = experiment(
            Workload::synthetic(6, false),
            HardwareConfig::a6000_server(4),
            256,
        );
        assert_eq!(run_all(&e).len(), Strategy::ALL.len());
    }
}
