//! Span recorder concurrency properties.
//!
//! The recorder's contract: N threads each recording M spans into their
//! own ring, flushed at thread end and drained after joins, lose nothing
//! (when the ring is large enough), tear nothing (every drained span is
//! exactly one that some thread recorded, fields intact), and keep
//! per-thread timestamps monotone. With small rings, only the *oldest*
//! spans drop and the accounting is exact.

use std::sync::Arc;

use pipebd_trace::{Span, SpanKind, TraceCollector, TraceMode};
use proptest::prelude::*;

/// Encodes (thread, sequence) into a span so a drained span can be
/// checked against exactly what its writer recorded.
fn stamped(thread: usize, seq: u32, t0: u64) -> Span {
    Span {
        kind: SpanKind::Student,
        block: Some(thread as u16),
        step: seq,
        t0_ns: t0,
        t1_ns: t0 + 1,
        bytes: (thread as u64) << 32 | u64::from(seq),
    }
}

fn record_from_threads(collector: &Arc<TraceCollector>, threads: usize, spans: u32) {
    let handles: Vec<_> = (0..threads)
        .map(|thread| {
            let mut rec = collector.recorder(thread, thread, 0);
            std::thread::spawn(move || {
                for seq in 0..spans {
                    let t0 = rec.now_ns();
                    rec.record(stamped(thread, seq, t0));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("recorder thread");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_drain_loses_and_tears_nothing(
        threads in 1usize..6,
        spans in 1u32..200,
    ) {
        let collector = TraceCollector::new(TraceMode::Spans);
        record_from_threads(&collector, threads, spans);
        let report = collector.drain();

        prop_assert_eq!(report.tracks.len(), threads);
        prop_assert_eq!(report.dropped_count(), 0);
        for track in &report.tracks {
            prop_assert_eq!(track.spans.len(), spans as usize, "lost spans");
            let mut last_t0 = 0u64;
            for (seq, span) in track.spans.iter().enumerate() {
                // No tearing: every field matches what the writer stamped.
                let expect = stamped(track.device, seq as u32, span.t0_ns);
                prop_assert_eq!(*span, expect);
                // Monotone per-thread timestamps, recorded in order.
                prop_assert!(span.t0_ns >= last_t0, "timestamps went backward");
                prop_assert!(span.t1_ns >= span.t0_ns);
                last_t0 = span.t0_ns;
            }
        }
    }

    #[test]
    fn wrapped_rings_keep_the_newest_window(
        threads in 1usize..4,
        spans in 10u32..100,
        cap in 1usize..9,
    ) {
        let collector = TraceCollector::with_capacity(TraceMode::Spans, cap);
        record_from_threads(&collector, threads, spans);
        let report = collector.drain();

        for track in &report.tracks {
            let kept = (spans as usize).min(cap);
            prop_assert_eq!(track.spans.len(), kept);
            prop_assert_eq!(track.dropped, spans as u64 - kept as u64);
            // The survivors are exactly the newest `kept` spans, in order.
            for (i, span) in track.spans.iter().enumerate() {
                let seq = spans - kept as u32 + i as u32;
                prop_assert_eq!(span.step, seq);
                let expect = stamped(track.device, seq, span.t0_ns);
                prop_assert_eq!(*span, expect);
            }
        }
    }
}
