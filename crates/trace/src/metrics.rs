//! Hand-rolled metrics registry: counters, gauges, and fixed-bucket
//! log₂-scale histograms.
//!
//! Hot-path operations are single relaxed atomic RMWs on pre-registered
//! handles; only registration (get-or-create by name) takes a lock. The
//! registry snapshots into plain serializable structs for the
//! `pipebd.trace` artifact envelope — this is the substrate the ROADMAP's
//! serving plane will reuse for p50/p99/p999 latency artifacts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket 0 holds zeros; bucket `0 < i < 63`
/// holds values in the half-open `[2^(i-1), 2^i)` — so an exact power of
/// two `2^k` lands in bucket `k + 1`, the bucket whose *lower* bound it
/// is; the last bucket (63) absorbs everything at or above `2^62`, i.e.
/// the closed range `[2^62, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram over `u64` samples (durations in
/// nanoseconds, payload bytes, ...). Recording is one relaxed
/// `fetch_add`; bucket bounds are powers of two, so the bucket index is a
/// leading-zeros count — no floats, no search.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1) as usize
    }

    /// The value range of bucket `i`: half-open `[lo, hi)` for every
    /// bucket except the last, whose range is the **closed**
    /// `[2^62, u64::MAX]` — its returned `hi` of `u64::MAX` is itself a
    /// member of the bucket, not an exclusive bound (there is no `2^64`
    /// in `u64` to exclude up to).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            return (0, 1);
        }
        let lo = 1u64 << (i - 1);
        let hi = if i == HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        };
        (lo, hi)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                let (lo, hi) = Self::bucket_bounds(i);
                buckets.push(HistogramBucket { lo, hi, count });
            }
        }
        HistogramSnapshot {
            name: name.to_owned(),
            count: buckets.iter().map(|b| b.count).sum(),
            sum: self.sum(),
            buckets,
        }
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metrics, registered on demand and snapshotted at run end.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("metrics lock");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics lock");
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: c.get(),
                }),
                Metric::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: g.get(),
                }),
                Metric::Histogram(h) => snap.histograms.push(h.snapshot(name)),
            }
        }
        snap
    }
}

/// A counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value.
    pub value: u64,
}

/// A gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value.
    pub value: i64,
}

/// One occupied histogram bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: u64,
    /// Exclusive upper bound — except the last bucket, where `hi` is
    /// `u64::MAX` and *inclusive* (that bucket is the closed range
    /// `[2^62, u64::MAX]`).
    pub hi: u64,
    /// Samples in the bucket.
    pub count: u64,
}

/// A histogram's occupied buckets at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Occupied buckets, ascending.
    pub buckets: Vec<HistogramBucket>,
}

/// Everything a registry held, in serializable form.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_edges_are_pinned_at_powers_of_two() {
        // 1 is the sole member of bucket 1: [1, 2).
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_bounds(1), (1, 2));
        // An exact power of two 2^k opens bucket k+1 (it is that bucket's
        // inclusive lower bound), while 2^k - 1 closes bucket k — for
        // every k up to the saturation point.
        for k in 1..62u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(v - 1), k as usize, "2^{k}-1");
            let (lo, hi) = Histogram::bucket_bounds(k as usize + 1);
            assert_eq!(lo, v, "2^{k} is bucket {}'s inclusive lo", k + 1);
            assert!(v < hi);
        }
        // The saturation edge: 2^62 - 1 is the top of bucket 62; 2^62,
        // 2^63, and u64::MAX all land in the closed last bucket.
        assert_eq!(Histogram::bucket_index((1u64 << 62) - 1), 62);
        assert_eq!(Histogram::bucket_index(1u64 << 62), 63);
        assert_eq!(Histogram::bucket_index(1u64 << 63), 63);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        let (lo, hi) = Histogram::bucket_bounds(63);
        assert_eq!((lo, hi), (1u64 << 62, u64::MAX));
        // The last bucket's `hi` is inclusive: u64::MAX itself lands in
        // the bucket whose bounds report it.
        assert_eq!(Histogram::bucket_index(hi), 63);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        // Every value's bucket bounds contain it.
        for v in [0u64, 1, 2, 7, 1000, 1 << 40, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v, "{v} below bucket lo {lo}");
            assert!(v < hi || hi == u64::MAX, "{v} at or above bucket hi {hi}");
        }
        // Adjacent buckets tile without gaps.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket_bounds(i).1,
                Histogram::bucket_bounds(i + 1).0
            );
        }
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1004);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.counter("a").inc();
        r.gauge("g").set(-5);
        r.histogram("h").record(9);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(3));
        assert_eq!(snap.gauges[0].value, -5);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.gauge("x");
        r.counter("x");
    }
}
