//! The trace plane: what the threaded executor *actually* did.
//!
//! The repo already cross-checks three timelines — the analytic estimator
//! (`pipebd_sched::estimate`), the event-level simulator (`pipebd_sim`),
//! and the threaded executor's *results* (bitwise parity with the
//! sequential reference). What none of them record is the executor's own
//! schedule on real threads. This crate closes that gap with a fourth,
//! **measured** timeline:
//!
//! * [`span`] — a per-thread span recorder. Each device thread owns a
//!   bounded ring of [`Span`]s it alone writes (no locks, no atomics on
//!   the hot path); rings flush into the shared [`TraceCollector`] when
//!   the thread finishes. With tracing off the executor pays exactly one
//!   `Option` branch per instrumentation point.
//! * [`metrics`] — a hand-rolled registry of counters, gauges, and
//!   fixed-bucket log₂ histograms, snapshotted into serializable form for
//!   the `pipebd.trace` artifact envelope.
//! * [`chrome`] — Chrome `trace_event` JSON export (open in Perfetto or
//!   `chrome://tracing`) for executor traces *and* simulator task graphs,
//!   on shared track naming so the two render side by side.
//! * [`summary`] — the payoff: [`TraceSummary`] (per-stage busy/bubble
//!   ratios, the measured steady-state period, the critical-path stage)
//!   and [`measured_profile`], which turns real spans into a
//!   [`pipebd_sched::ProfileTable`] the estimator and simulator can
//!   replay. The testkit's trace differential closes the loop.
//!
//! # Overhead contract
//!
//! `PIPEBD_TRACE=off` (the default) constructs no collector: every
//! instrumentation point in the executor reduces to one branch on a
//! `None`, and trained parameters are bitwise identical to an
//! instrumented run (tracing observes the schedule, never the math).
//! `spans` records spans only; `full` additionally populates the metrics
//! registry and work-stealing pool counters.

#![warn(missing_docs)]

pub mod chrome;
pub mod metrics;
pub mod span;
pub mod summary;

pub use metrics::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramBucket, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};
pub use span::{Span, SpanKind, TraceCollector, TraceMode, TraceReport, TrackRecorder, TrackSpans};
pub use summary::{measured_profile, summarize, StageObservation, TraceDifferential, TraceSummary};
