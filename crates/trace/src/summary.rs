//! From raw spans to timeline claims: busy/bubble ratios, the measured
//! steady-state period, the critical-path stage, and a measured
//! [`ProfileTable`] the estimator and simulator can replay.
//!
//! The measured period mirrors the conformance plane's tail-window
//! formula (`pipebd_testkit::round_period_of`): per-step completion is
//! the latest `update` span end across all tracks, and the period is
//! averaged over the last `tail` steps, past the pipeline fill.
//!
//! Busy time counts *work* spans only: teacher, student, update, and
//! stage-0 input materialization. Synchronization intervals (gradient
//! sharing, barriers, relay sends, downstream receive waits) are waits on
//! peers — they overlap other devices' work and would double-count if
//! treated as load.
//! The same convention feeds [`measured_profile`], so the estimator's
//! view of a measured table is consistent with what the spans call busy.

use std::collections::BTreeMap;

use pipebd_sched::{ProfileTable, StagePlan};
use pipebd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::span::{SpanKind, TraceReport};

/// What one stage's member threads measured over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageObservation {
    /// Stage index in the plan.
    pub stage: usize,
    /// Member tracks observed for the stage.
    pub width: usize,
    /// Mean per-member busy time over the whole run, nanoseconds.
    pub busy_ns: u64,
    /// `busy_ns` over the run's wall time.
    pub busy_ratio: f64,
    /// `1 - busy_ratio`: the fraction of the run the stage's devices sat
    /// in pipeline bubbles or synchronization waits.
    pub bubble_ratio: f64,
}

/// A run's measured timeline, reduced to the claims the paper makes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Training steps the run executed.
    pub steps: u32,
    /// Tail window the steady-state period was averaged over.
    pub tail: u32,
    /// Wall time spanned by the recorded spans, nanoseconds.
    pub wall_ns: u64,
    /// Measured steady-state step period (tail-window average), ns.
    pub measured_period_ns: u64,
    /// Total busy nanoseconds summed over every track.
    pub total_busy_ns: u64,
    /// Per-stage observations, in stage order.
    pub stages: Vec<StageObservation>,
    /// The stage with the highest per-member busy time — the measured
    /// critical path.
    pub bottleneck_stage: usize,
    /// Busy-time ratio of the bottleneck stage to the runner-up (1.0 for
    /// single-stage plans).
    pub bottleneck_margin: f64,
    /// Overall bubble ratio: idle fraction across all device tracks.
    pub bubble_ratio: f64,
    /// Spans recorded (tracks plus control events).
    pub spans: u64,
    /// Spans lost to ring wrap-around.
    pub dropped: u64,
}

/// The trace differential's verdict, in pure-data form (the testkit fills
/// it; the `pipebd.trace` artifact persists it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDifferential {
    /// Strategy label the scenario ran.
    pub strategy: String,
    /// Compute lanes the host offered the run's device threads
    /// (`min(available cores, ranks)` — device threads timeshare).
    pub lanes: usize,
    /// Measured steady-state period, nanoseconds.
    pub measured_period_ns: u64,
    /// Analytic prediction from the measured profile, ns.
    pub predicted_period_ns: u64,
    /// Simulated period replaying the measured profile, ns.
    pub simulated_period_ns: u64,
    /// `measured / predicted`.
    pub predicted_ratio: f64,
    /// `measured / simulated`.
    pub simulated_ratio: f64,
    /// Tolerance bounds both ratios must satisfy.
    pub ratio_lo: f64,
    /// See `ratio_lo`.
    pub ratio_hi: f64,
    /// Stage the measured busy times name as bottleneck.
    pub bottleneck_measured: usize,
    /// Stage the analytic estimator names.
    pub bottleneck_predicted: usize,
    /// Stage the simulator's busiest device belongs to.
    pub bottleneck_simulated: usize,
    /// Whether the bottleneck comparison was decisive enough to assert.
    pub bottleneck_checked: bool,
    /// Agreement verdict (vacuously true when unchecked).
    pub bottleneck_ok: bool,
    /// Overall verdict.
    pub pass: bool,
    /// Human-readable failure detail (empty on pass).
    pub detail: String,
}

/// Reduces a drained report to a [`TraceSummary`].
///
/// # Errors
///
/// Returns an error when the report has no tracks, when `tail >= steps`,
/// or when some step recorded no `update` span (a wrapped ring dropped
/// the tail — raise the capacity).
pub fn summarize(report: &TraceReport, steps: u32, tail: u32) -> Result<TraceSummary, String> {
    if report.tracks.is_empty() {
        return Err("trace report has no tracks".into());
    }
    if tail == 0 || tail >= steps {
        return Err(format!("tail {tail} must be in 1..steps ({steps})"));
    }

    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut total_busy_ns = 0u64;
    // Latest update completion per step, across all tracks.
    let mut step_end = vec![0u64; steps as usize];
    let mut step_seen = vec![false; steps as usize];
    // stage -> (member count, summed busy).
    let mut stage_busy: BTreeMap<usize, (usize, u64)> = BTreeMap::new();

    for track in &report.tracks {
        let mut busy = 0u64;
        for span in &track.spans {
            t_min = t_min.min(span.t0_ns);
            t_max = t_max.max(span.t1_ns);
            // Load is batch materialization on stage 0 (work) but the
            // relay-receive wait on later stages (a bubble).
            if span.kind.is_work() || (span.kind == SpanKind::Load && track.stage == 0) {
                busy += span.dur_ns();
            }
            if span.kind == SpanKind::Update {
                let i = span.step as usize;
                if i < step_end.len() {
                    step_end[i] = step_end[i].max(span.t1_ns);
                    step_seen[i] = true;
                }
            }
        }
        total_busy_ns += busy;
        let entry = stage_busy.entry(track.stage).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += busy;
    }

    if let Some(missing) = step_seen.iter().position(|seen| !seen) {
        return Err(format!(
            "step {missing} recorded no update span (ring wrapped? dropped={})",
            report.dropped_count()
        ));
    }
    let wall_ns = t_max.saturating_sub(t_min);
    let last = step_end[steps as usize - 1];
    let base = step_end[(steps - 1 - tail) as usize];
    let measured_period_ns = last.saturating_sub(base) / u64::from(tail);

    let stages: Vec<StageObservation> = stage_busy
        .iter()
        .map(|(&stage, &(width, busy))| {
            let busy_ns = busy / width as u64;
            let busy_ratio = if wall_ns > 0 {
                busy_ns as f64 / wall_ns as f64
            } else {
                0.0
            };
            StageObservation {
                stage,
                width,
                busy_ns,
                busy_ratio,
                bubble_ratio: 1.0 - busy_ratio,
            }
        })
        .collect();

    let mut order: Vec<usize> = (0..stages.len()).collect();
    order.sort_by(|&a, &b| stages[b].busy_ns.cmp(&stages[a].busy_ns));
    let bottleneck = order[0];
    let bottleneck_margin = match order.get(1) {
        Some(&second) if stages[second].busy_ns > 0 => {
            stages[bottleneck].busy_ns as f64 / stages[second].busy_ns as f64
        }
        _ => 1.0,
    };
    let lanes = report.tracks.len() as u64;
    let bubble_ratio = if wall_ns > 0 && lanes > 0 {
        1.0 - total_busy_ns as f64 / (wall_ns * lanes) as f64
    } else {
        0.0
    };

    Ok(TraceSummary {
        steps,
        tail,
        wall_ns,
        measured_period_ns,
        total_busy_ns,
        bottleneck_stage: stages[bottleneck].stage,
        bottleneck_margin,
        stages,
        bubble_ratio,
        spans: report.span_count(),
        dropped: report.dropped_count(),
    })
}

/// Builds a [`ProfileTable`] from measured spans: per-block mean teacher,
/// student, and update times, at each stage's actual per-device batch.
///
/// The table's batch columns are the distinct per-device batches the plan
/// induces; a block's value at its own stage's batch is the measured
/// mean, and values at other columns are linear-in-batch rescalings (the
/// estimator only queries each block at its own stage's batch, so the
/// rescaled columns exist to satisfy the table's rectangular shape).
///
/// Step 0 is excluded as warm-up when the run has more than two steps —
/// first-touch allocation noise belongs to no steady-state model.
///
/// # Errors
///
/// Returns an error when some block has no measured spans, or when the
/// table construction itself rejects the rows.
pub fn measured_profile(
    report: &TraceReport,
    plan: &StagePlan,
    global_batch: usize,
) -> Result<ProfileTable, String> {
    let max_step = report
        .tracks
        .iter()
        .flat_map(|t| t.spans.iter())
        .map(|s| s.step)
        .max()
        .ok_or("trace report has no spans")?;
    let warmup = u32::from(max_step >= 2);

    // Per-block duration sums and counts, warm steps only.
    let blocks = plan.num_blocks;
    let mut sums = vec![[0u64; 3]; blocks];
    let mut counts = vec![[0u64; 3]; blocks];
    for track in &report.tracks {
        for span in &track.spans {
            if span.step < warmup {
                continue;
            }
            let slot = match span.kind {
                SpanKind::Teacher => 0,
                SpanKind::Student => 1,
                SpanKind::Update => 2,
                _ => continue,
            };
            let Some(b) = span.block.map(usize::from) else {
                continue;
            };
            if b >= blocks {
                return Err(format!("span names block {b}, plan has {blocks}"));
            }
            sums[b][slot] += span.dur_ns();
            counts[b][slot] += 1;
        }
    }

    let mut batch_sizes: Vec<usize> = plan
        .stages
        .iter()
        .map(|s| s.device_batch(global_batch))
        .collect();
    batch_sizes.sort_unstable();
    batch_sizes.dedup();

    let mut teacher = Vec::with_capacity(blocks);
    let mut student = Vec::with_capacity(blocks);
    let mut update = Vec::with_capacity(blocks);
    for b in 0..blocks {
        let stage = plan
            .stage_of_block(b)
            .ok_or_else(|| format!("block {b} not in plan"))?;
        let db = stage.device_batch(global_batch).max(1);
        let mean = |slot: usize| -> Result<u64, String> {
            if counts[b][slot] == 0 {
                return Err(format!("block {b} has no measured spans for slot {slot}"));
            }
            Ok(sums[b][slot] / counts[b][slot])
        };
        let (t, s, u) = (mean(0)?, mean(1)?, mean(2)?);
        teacher.push(
            batch_sizes
                .iter()
                .map(|&bs| SimTime::from_ns(t * bs as u64 / db as u64))
                .collect(),
        );
        student.push(
            batch_sizes
                .iter()
                .map(|&bs| SimTime::from_ns(s * bs as u64 / db as u64))
                .collect(),
        );
        update.push(SimTime::from_ns(u));
    }

    ProfileTable::from_parts(batch_sizes, teacher, student, update)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::span::{Span, TrackSpans};

    /// Two stages, one device each: stage 0 updates finish at
    /// 100, 200, 300, ...; stage 1 updates 50 ns later. Period = 100.
    fn report(steps: u32) -> TraceReport {
        let track = |device: usize, stage: usize, offset: u64| TrackSpans {
            device,
            stage,
            member: 0,
            spans: (0..steps)
                .flat_map(|step| {
                    let base = u64::from(step + 1) * 100 + offset;
                    vec![
                        Span {
                            kind: SpanKind::Teacher,
                            block: Some(stage as u16),
                            step,
                            t0_ns: base - 90,
                            t1_ns: base - 50,
                            bytes: 0,
                        },
                        Span {
                            kind: SpanKind::Student,
                            block: Some(stage as u16),
                            step,
                            t0_ns: base - 50,
                            t1_ns: base - 10,
                            bytes: 0,
                        },
                        Span {
                            kind: SpanKind::Update,
                            block: Some(stage as u16),
                            step,
                            t0_ns: base - 10,
                            t1_ns: base,
                            bytes: 0,
                        },
                    ]
                })
                .collect(),
            dropped: 0,
        };
        TraceReport {
            mode: "spans".into(),
            tracks: vec![track(0, 0, 0), track(1, 1, 50)],
            events: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn measured_period_matches_construction() {
        let s = summarize(&report(8), 8, 4).unwrap();
        assert_eq!(s.measured_period_ns, 100);
        assert_eq!(s.steps, 8);
        assert_eq!(s.stages.len(), 2);
        // Both stages do 90 ns of work per 100 ns step.
        assert!(s.stages[0].busy_ratio > 0.5, "{}", s.stages[0].busy_ratio);
        assert!((0.0..=1.0).contains(&s.bubble_ratio));
        assert_eq!(s.bottleneck_margin, 1.0, "stages are tied");
    }

    #[test]
    fn summarize_rejects_missing_steps() {
        let err = summarize(&report(4), 8, 2).unwrap_err();
        assert!(err.contains("no update span"), "{err}");
    }

    #[test]
    fn summarize_rejects_bad_tail() {
        assert!(summarize(&report(4), 4, 0).is_err());
        assert!(summarize(&report(4), 4, 4).is_err());
    }

    #[test]
    fn measured_profile_builds_a_table() {
        let plan = StagePlan::contiguous(2, 2).unwrap();
        let table = measured_profile(&report(8), &plan, 8).unwrap();
        assert_eq!(table.num_blocks(), 2);
        assert_eq!(table.batch_sizes(), &[8]);
        // Teacher spans are 40 ns, student 40 ns, update 10 ns.
        assert_eq!(table.teacher_time(0, 8), SimTime::from_ns(40));
        assert_eq!(table.student_time(1, 8), SimTime::from_ns(40));
        assert_eq!(table.update_time(0), SimTime::from_ns(10));
    }
}
