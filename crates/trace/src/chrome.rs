//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) consumed by
//! Perfetto and `chrome://tracing`, built on `pipebd_json::Value` — no
//! external serializer. Both the executor's measured spans and the
//! simulator's task timeline export onto **shared track naming**: process
//! 1 is the executor, process 2 the simulator, and device rank `r` is
//! thread `r` named `gpu{r}` in *both*, so [`combined_trace`] renders the
//! measured and simulated timelines one above the other with aligned
//! rows. Simulator-only resources take reserved thread ids: the loader
//! pool is [`LOADER_TID`], copy engines start at [`COPY_TID_BASE`]; the
//! executor's control-plane events (restore/replan) land on
//! [`CONTROL_TID`].
//!
//! Timestamps: `trace_event` wants microseconds; both planes record
//! nanoseconds, so `ts`/`dur` are emitted as floats with three decimals —
//! exact, since a f64 holds ns-scale integers losslessly.

use pipebd_json::{Number, Value};
use pipebd_sim::{Resource, SimRun, TaskGraph, TaskKind};

use crate::span::{Span, TraceReport};

/// Chrome process id of the executor's measured timeline.
pub const EXECUTOR_PID: u64 = 1;
/// Chrome process id of the simulator's timeline.
pub const SIMULATOR_PID: u64 = 2;
/// Thread id of the executor's control-plane track (restore/replan).
pub const CONTROL_TID: u64 = 999;
/// Thread id of the simulator's loader-pool resource.
pub const LOADER_TID: u64 = 1000;
/// First thread id of the simulator's per-device copy engines.
pub const COPY_TID_BASE: u64 = 1100;

fn s(v: &str) -> Value {
    Value::String(v.to_owned())
}

fn n(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn us(ns: u64) -> Value {
    Value::Number(Number::Float(ns as f64 / 1000.0))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A `ph:"M"` metadata event naming a process or thread.
fn metadata(name: &str, pid: u64, tid: Option<u64>, label: &str) -> Value {
    let mut fields = vec![
        ("name", s(name)),
        ("ph", s("M")),
        ("pid", n(pid)),
        ("args", obj(vec![("name", s(label))])),
    ];
    if let Some(tid) = tid {
        fields.insert(3, ("tid", n(tid)));
    }
    obj(fields)
}

/// A `ph:"X"` complete duration event.
fn duration_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    t0_ns: u64,
    dur_ns: u64,
    args: Vec<(&str, Value)>,
) -> Value {
    obj(vec![
        ("name", s(name)),
        ("cat", s(cat)),
        ("ph", s("X")),
        ("ts", us(t0_ns)),
        ("dur", us(dur_ns)),
        ("pid", n(pid)),
        ("tid", n(tid)),
        ("args", obj(args)),
    ])
}

fn span_event(span: &Span, pid: u64, tid: u64) -> Value {
    let name = match span.block {
        Some(b) => format!("{} b{b}", span.kind.label()),
        None => span.kind.label().to_owned(),
    };
    let mut args = vec![("step", n(u64::from(span.step)))];
    if span.bytes > 0 {
        args.push(("bytes", n(span.bytes)));
    }
    duration_event(&name, "exec", pid, tid, span.t0_ns, span.dur_ns(), args)
}

fn executor_events(report: &TraceReport, events: &mut Vec<Value>) {
    events.push(metadata("process_name", EXECUTOR_PID, None, "executor"));
    for track in &report.tracks {
        events.push(metadata(
            "thread_name",
            EXECUTOR_PID,
            Some(track.device as u64),
            &format!(
                "gpu{} (stage {} m{})",
                track.device, track.stage, track.member
            ),
        ));
        for span in &track.spans {
            events.push(span_event(span, EXECUTOR_PID, track.device as u64));
        }
    }
    if !report.events.is_empty() {
        events.push(metadata(
            "thread_name",
            EXECUTOR_PID,
            Some(CONTROL_TID),
            "control",
        ));
        for span in &report.events {
            events.push(span_event(span, EXECUTOR_PID, CONTROL_TID));
        }
    }
}

fn task_kind_label(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Load => "load",
        TaskKind::Teacher => "teacher",
        TaskKind::Student => "student",
        TaskKind::Update => "update",
        TaskKind::Comm => "relay",
        TaskKind::GradShare => "grad_share",
        TaskKind::Sync => "sync",
        TaskKind::Replan => "replan",
    }
}

fn simulator_events(graph: &TaskGraph, run: &SimRun, events: &mut Vec<Value>) {
    events.push(metadata("process_name", SIMULATOR_PID, None, "simulator"));
    for r in 0..graph.num_gpus() {
        events.push(metadata(
            "thread_name",
            SIMULATOR_PID,
            Some(r as u64),
            &format!("gpu{r}"),
        ));
    }
    events.push(metadata(
        "thread_name",
        SIMULATOR_PID,
        Some(LOADER_TID),
        "loader",
    ));
    let mut named_copies = Vec::new();
    for (id, task) in graph.iter() {
        let tid = match task.resource {
            Resource::Gpu(d) => d as u64,
            Resource::Loader => LOADER_TID,
            Resource::Copy(d) => {
                if !named_copies.contains(&d) {
                    named_copies.push(d);
                    events.push(metadata(
                        "thread_name",
                        SIMULATOR_PID,
                        Some(COPY_TID_BASE + d as u64),
                        &format!("copy{d}"),
                    ));
                }
                COPY_TID_BASE + d as u64
            }
        };
        let name = match task.block {
            Some(b) => format!("{} b{b}", task_kind_label(task.kind)),
            None => task_kind_label(task.kind).to_owned(),
        };
        let start = run.start[id.index()].as_ns();
        let finish = run.finish[id.index()].as_ns();
        events.push(duration_event(
            &name,
            "sim",
            SIMULATOR_PID,
            tid,
            start,
            finish.saturating_sub(start),
            vec![("step", n(u64::from(task.step)))],
        ));
    }
}

fn document(events: Vec<Value>) -> Value {
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ns")),
    ])
}

/// Exports an executor trace report as a Chrome trace document.
pub fn executor_trace(report: &TraceReport) -> Value {
    let mut events = Vec::new();
    executor_events(report, &mut events);
    document(events)
}

/// Exports a simulated task graph (with its run's start/finish times) as
/// a Chrome trace document.
pub fn simulator_trace(graph: &TaskGraph, run: &SimRun) -> Value {
    let mut events = Vec::new();
    simulator_events(graph, run, &mut events);
    document(events)
}

/// Exports both timelines into one document: the measured executor run as
/// process 1, the simulated schedule as process 2, `gpu{r}` rows aligned.
pub fn combined_trace(report: &TraceReport, graph: &TaskGraph, run: &SimRun) -> Value {
    let mut events = Vec::new();
    executor_events(report, &mut events);
    simulator_events(graph, run, &mut events);
    document(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::span::{SpanKind, TrackSpans};

    fn tiny_report() -> TraceReport {
        TraceReport {
            mode: "spans".into(),
            tracks: vec![TrackSpans {
                device: 0,
                stage: 0,
                member: 0,
                spans: vec![Span {
                    kind: SpanKind::Teacher,
                    block: Some(2),
                    step: 1,
                    t0_ns: 1500,
                    t1_ns: 4000,
                    bytes: 0,
                }],
                dropped: 0,
            }],
            events: vec![Span {
                kind: SpanKind::Restore,
                block: None,
                step: 3,
                t0_ns: 0,
                t1_ns: 10,
                bytes: 0,
            }],
            metrics: MetricsSnapshot::default(),
        }
    }

    fn events_of(doc: &Value) -> &[Value] {
        let Value::Object(fields) = doc else {
            panic!("document is not an object")
        };
        let (_, Value::Array(events)) = &fields[0] else {
            panic!("traceEvents is not an array")
        };
        events
    }

    #[test]
    fn executor_trace_round_trips_through_json() {
        let doc = executor_trace(&tiny_report());
        let text = pipebd_json::to_string_pretty(&doc).unwrap();
        let parsed = pipebd_json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        // 1 process meta + 1 thread meta + 1 span + control meta + 1 event.
        assert_eq!(events_of(&doc).len(), 5);
    }

    #[test]
    fn span_events_carry_block_and_microsecond_times() {
        let doc = executor_trace(&tiny_report());
        let span = events_of(&doc)
            .iter()
            .find(|e| {
                let Value::Object(f) = e else { return false };
                f.iter()
                    .any(|(k, v)| k == "name" && v.as_str() == Some("teacher b2"))
            })
            .expect("teacher span present");
        let Value::Object(f) = span else {
            unreachable!()
        };
        let get = |key: &str| f.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        assert_eq!(get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(get("pid").unwrap().as_u64(), Some(EXECUTOR_PID));
        assert_eq!(get("tid").unwrap().as_u64(), Some(0));
    }
}
