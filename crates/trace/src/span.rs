//! Per-thread span recording.
//!
//! Design: each instrumented thread owns a [`TrackRecorder`] — a bounded
//! ring of [`Span`]s that only that thread writes. Recording a span is a
//! plain indexed store into thread-owned memory: no locks, no atomics, no
//! allocation after the ring is built. When the thread finishes (the
//! recorder drops), the ring flushes once into the [`TraceCollector`]
//! under a mutex; the executor joins every worker before draining, so the
//! join establishes the happens-before edge and the drain sees complete,
//! untorn rings.
//!
//! Timestamps are nanosecond offsets from the collector's construction
//! instant (`Instant`-based, so they are monotone per thread and
//! comparable across threads of one run, and no wall-clock time ever
//! enters a trace).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{MetricsRegistry, MetricsSnapshot};

/// How much the trace plane records, parsed from `PIPEBD_TRACE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No collector is constructed; instrumentation costs one branch.
    Off,
    /// Record spans only.
    Spans,
    /// Record spans plus the metrics registry and pool counters.
    Full,
}

impl TraceMode {
    /// Resolves the mode from `PIPEBD_TRACE` (`off` | `spans` | `full`,
    /// unset means `off`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a mislabeled trace artifact is
    /// worse than a crashed run, same policy as `PIPEBD_SIMD` and
    /// `PIPEBD_POOL`.
    pub fn from_env() -> Self {
        match std::env::var("PIPEBD_TRACE") {
            Err(_) => TraceMode::Off,
            Ok(v) => match v.as_str() {
                "" | "off" => TraceMode::Off,
                "spans" => TraceMode::Spans,
                "full" => TraceMode::Full,
                other => panic!("PIPEBD_TRACE must be off|spans|full, got `{other}`"),
            },
        }
    }

    /// Stable lowercase label (`"off"`, `"spans"`, `"full"`).
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Spans => "spans",
            TraceMode::Full => "full",
        }
    }

    /// Whether any recording happens at all.
    pub fn enabled(self) -> bool {
        self != TraceMode::Off
    }
}

/// What a span measures. Kinds mirror the simulator's `TaskKind` where a
/// counterpart exists, so executor and simulator tracks align in the
/// Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Input acquisition: batch materialization (stage 0) or receiving and
    /// re-sharding the relayed activation (later stages).
    Load,
    /// One teacher block's forward.
    Teacher,
    /// One student block's forward + loss + backward.
    Student,
    /// One student block's optimizer step.
    Update,
    /// Boundary-activation sends to the next stage (`bytes` counts the
    /// logical payload across all receiving members).
    Relay,
    /// Intra-stage gradient gather/average/broadcast (width > 1).
    GradShare,
    /// The global per-step barrier (absent under decoupled updates).
    Barrier,
    /// Checkpoint fragment capture and send.
    Checkpoint,
    /// Recovery: computing a degraded plan after a rank loss.
    Replan,
    /// Recovery: restoring from the latest checkpoint.
    Restore,
    /// Registry: a device worker thread entered the epoch (`step` is the
    /// first round the worker participates in).
    WorkerSpawn,
    /// Registry: a device worker thread left the epoch (retired at a
    /// round boundary, lost, or run complete; `step` is the first round
    /// the worker no longer participates in).
    WorkerRetire,
}

impl SpanKind {
    /// Stable lowercase label, used for Chrome event names.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Load => "load",
            SpanKind::Teacher => "teacher",
            SpanKind::Student => "student",
            SpanKind::Update => "update",
            SpanKind::Relay => "relay",
            SpanKind::GradShare => "grad_share",
            SpanKind::Barrier => "barrier",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Replan => "replan",
            SpanKind::Restore => "restore",
            SpanKind::WorkerSpawn => "worker_spawn",
            SpanKind::WorkerRetire => "worker_retire",
        }
    }

    /// Whether the span is unconditionally device *work* (it consumes the
    /// device lane and belongs in busy time and the measured profile) as
    /// opposed to synchronization or bookkeeping (waiting on peers,
    /// channel sends). [`SpanKind::Load`] is work only on stage 0 — on
    /// later stages it is the receive wait — so busy accounting treats it
    /// stage-aware (see [`crate::summarize`]).
    pub fn is_work(self) -> bool {
        matches!(
            self,
            SpanKind::Teacher | SpanKind::Student | SpanKind::Update
        )
    }
}

/// One recorded interval on one track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// What the interval measures.
    pub kind: SpanKind,
    /// Global block index, for per-block kinds.
    pub block: Option<u16>,
    /// Training step (round) the interval belongs to.
    pub step: u32,
    /// Start, nanoseconds since the collector's epoch.
    pub t0_ns: u64,
    /// End, nanoseconds since the collector's epoch.
    pub t1_ns: u64,
    /// Payload bytes, for data-movement kinds (0 otherwise).
    pub bytes: u64,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// One thread's drained spans plus its identity in the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackSpans {
    /// Device rank (the `gpu{device}` track).
    pub device: usize,
    /// Stage index in the plan.
    pub stage: usize,
    /// Member index within the stage (0 for width-1 stages).
    pub member: usize,
    /// Recorded spans, oldest first.
    pub spans: Vec<Span>,
    /// Spans overwritten because the ring wrapped (the *oldest* spans are
    /// dropped; the tail used for steady-state measurement survives).
    pub dropped: u64,
}

/// Everything one run recorded, drained from the collector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Mode label the run recorded under (`"spans"` or `"full"`).
    pub mode: String,
    /// Per-thread tracks, sorted by device rank.
    pub tracks: Vec<TrackSpans>,
    /// Control-plane events (restore/replan), recorded off the hot path.
    pub events: Vec<Span>,
    /// Metrics registry snapshot (empty under `spans` mode).
    pub metrics: MetricsSnapshot,
}

impl TraceReport {
    /// Total spans across all tracks and control events.
    pub fn span_count(&self) -> u64 {
        self.tracks
            .iter()
            .map(|t| t.spans.len() as u64)
            .sum::<u64>()
            + self.events.len() as u64
    }

    /// Total spans lost to ring wrap-around across all tracks.
    pub fn dropped_count(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }
}

/// Default per-track ring capacity: generous for every scenario in the
/// repo (a 12-step, 6-block run records a few hundred spans per track).
pub const DEFAULT_TRACK_CAPACITY: usize = 1 << 16;

/// The shared sink instrumented threads flush into.
///
/// Constructed once per run when tracing is enabled; the executor holds
/// it in `RunHooks` and drains it after joining the workers.
#[derive(Debug)]
pub struct TraceCollector {
    mode: TraceMode,
    epoch: Instant,
    capacity: usize,
    tracks: Mutex<Vec<TrackSpans>>,
    events: Mutex<Vec<Span>>,
    metrics: MetricsRegistry,
}

impl TraceCollector {
    /// Creates a collector with the default ring capacity.
    ///
    /// # Panics
    ///
    /// Panics on [`TraceMode::Off`] — off means *no collector exists*;
    /// constructing one anyway would silently violate the one-branch
    /// overhead contract.
    pub fn new(mode: TraceMode) -> Arc<Self> {
        Self::with_capacity(mode, DEFAULT_TRACK_CAPACITY)
    }

    /// [`TraceCollector::new`] with an explicit per-track ring capacity
    /// (tests use tiny rings to exercise wrap-around).
    pub fn with_capacity(mode: TraceMode, capacity: usize) -> Arc<Self> {
        assert!(
            mode.enabled(),
            "TraceCollector::new(Off): pass None instead of an off collector"
        );
        assert!(capacity > 0, "ring capacity must be positive");
        Arc::new(TraceCollector {
            mode,
            epoch: Instant::now(),
            capacity,
            tracks: Mutex::new(Vec::new()),
            events: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        })
    }

    /// The collector's mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Whether `full`-mode extras (metrics, pool counters) are on.
    pub fn full(&self) -> bool {
        self.mode == TraceMode::Full
    }

    /// Nanoseconds since the collector was constructed.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The metrics registry (populated in `full` mode).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Creates the span recorder for one instrumented thread.
    pub fn recorder(self: &Arc<Self>, device: usize, stage: usize, member: usize) -> TrackRecorder {
        TrackRecorder {
            collector: Arc::clone(self),
            device,
            stage,
            member,
            cap: self.capacity,
            ring: Vec::with_capacity(self.capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Records a control-plane event (restore/replan). These are rare and
    /// happen on the coordinating thread, so a mutex push is fine.
    pub fn event(&self, kind: SpanKind, step: u32, t0_ns: u64, t1_ns: u64) {
        self.events.lock().expect("event lock").push(Span {
            kind,
            block: None,
            step,
            t0_ns,
            t1_ns,
            bytes: 0,
        });
    }

    /// Drains everything recorded so far into a [`TraceReport`].
    ///
    /// Call after joining every instrumented thread — the joins are what
    /// guarantee each ring was flushed (recorders flush on drop).
    pub fn drain(&self) -> TraceReport {
        let mut tracks = std::mem::take(&mut *self.tracks.lock().expect("tracks lock"));
        tracks.sort_by_key(|t| t.device);
        let events = std::mem::take(&mut *self.events.lock().expect("event lock"));
        TraceReport {
            mode: self.mode.label().to_owned(),
            tracks,
            events,
            metrics: self.metrics.snapshot(),
        }
    }

    /// Flush target for [`TrackRecorder::drop`].
    fn absorb(&self, track: TrackSpans) {
        self.tracks.lock().expect("tracks lock").push(track);
    }
}

/// A single thread's span ring. Single-writer by construction (`!Sync`,
/// methods take `&mut self`); recording is an indexed store into
/// thread-owned memory. Flushes into the collector when dropped.
#[derive(Debug)]
pub struct TrackRecorder {
    collector: Arc<TraceCollector>,
    device: usize,
    stage: usize,
    member: usize,
    cap: usize,
    ring: Vec<Span>,
    /// Oldest element once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl TrackRecorder {
    /// Nanoseconds since the collector's epoch.
    pub fn now_ns(&self) -> u64 {
        self.collector.now_ns()
    }

    /// Whether `full`-mode extras are on.
    pub fn full(&self) -> bool {
        self.collector.full()
    }

    /// The shared metrics registry (record only when [`Self::full`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.collector.metrics()
    }

    /// Records one span. When the ring is full the oldest span is
    /// overwritten, keeping the most recent window — steady-state
    /// summaries read the tail, so the tail must survive.
    pub fn record(&mut self, span: Span) {
        if self.ring.len() < self.cap {
            self.ring.push(span);
        } else {
            self.ring[self.head] = span;
            self.head = (self.head + 1) % self.ring.len();
            self.dropped += 1;
        }
    }

    /// Convenience: record a completed interval of `kind`.
    pub fn record_span(
        &mut self,
        kind: SpanKind,
        block: Option<u16>,
        step: u32,
        t0_ns: u64,
        t1_ns: u64,
    ) {
        self.record(Span {
            kind,
            block,
            step,
            t0_ns,
            t1_ns,
            bytes: 0,
        });
    }
}

impl Drop for TrackRecorder {
    fn drop(&mut self) {
        // Rotate so spans come out oldest-first even after wrap-around.
        let mut spans = std::mem::take(&mut self.ring);
        spans.rotate_left(self.head);
        self.collector.absorb(TrackSpans {
            device: self.device,
            stage: self.stage,
            member: self.member,
            spans,
            dropped: self.dropped,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(step: u32, t0: u64) -> Span {
        Span {
            kind: SpanKind::Update,
            block: Some(0),
            step,
            t0_ns: t0,
            t1_ns: t0 + 10,
            bytes: 0,
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [TraceMode::Off, TraceMode::Spans, TraceMode::Full] {
            assert_eq!(m.enabled(), m != TraceMode::Off);
            assert!(!m.label().is_empty());
        }
    }

    #[test]
    fn recorder_drains_in_order() {
        let c = TraceCollector::new(TraceMode::Spans);
        let mut r = c.recorder(3, 1, 0);
        for i in 0..5 {
            r.record(span(i, u64::from(i) * 100));
        }
        drop(r);
        let report = c.drain();
        assert_eq!(report.tracks.len(), 1);
        let t = &report.tracks[0];
        assert_eq!((t.device, t.stage, t.member), (3, 1, 0));
        assert_eq!(t.spans.len(), 5);
        assert_eq!(t.dropped, 0);
        let steps: Vec<u32> = t.spans.iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let c = TraceCollector::with_capacity(TraceMode::Spans, 4);
        let mut r = c.recorder(0, 0, 0);
        for i in 0..10 {
            r.record(span(i, u64::from(i) * 100));
        }
        drop(r);
        let report = c.drain();
        let t = &report.tracks[0];
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.dropped, 6);
        let steps: Vec<u32> = t.spans.iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9], "tail must survive, oldest-first");
    }

    #[test]
    fn drain_sorts_tracks_by_device() {
        let c = TraceCollector::new(TraceMode::Spans);
        for device in [2usize, 0, 1] {
            let mut r = c.recorder(device, 0, 0);
            r.record(span(0, device as u64));
            drop(r);
        }
        let report = c.drain();
        let devices: Vec<usize> = report.tracks.iter().map(|t| t.device).collect();
        assert_eq!(devices, vec![0, 1, 2]);
    }

    #[test]
    fn timestamps_are_monotone() {
        let c = TraceCollector::new(TraceMode::Spans);
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn events_record_off_hot_path() {
        let c = TraceCollector::new(TraceMode::Full);
        c.event(SpanKind::Restore, 5, 100, 200);
        let report = c.drain();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].kind, SpanKind::Restore);
        assert_eq!(report.span_count(), 1);
    }

    #[test]
    #[should_panic(expected = "off collector")]
    fn off_collector_is_rejected() {
        let _ = TraceCollector::new(TraceMode::Off);
    }
}
