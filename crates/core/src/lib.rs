//! Pipe-BD core: strategies, simulator lowering, the threaded functional
//! executor, and the experiment facade.
//!
//! The timing side (paper Figs. 2, 4–7 and Table II times) flows through
//! [`ExperimentBuilder`] → [`Experiment::run`] → [`RunReport`]; the
//! functional side (paper Section VII-D, "scheduling does not change
//! results") flows through [`exec`], which trains real miniature models on
//! device threads with channel-based teacher relaying.
//!
//! # Example
//!
//! ```
//! use pipebd_core::{ExperimentBuilder, Strategy};
//! use pipebd_models::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let e = ExperimentBuilder::new(Workload::synthetic(6, false))
//!     .sim_rounds(8)
//!     .build()?;
//! let dp = e.run(Strategy::DataParallel)?;
//! let pb = e.run(Strategy::PipeBd)?;
//! assert!(pb.speedup_over(&dp) > 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod exec;
mod experiment;
pub mod lower;
mod memory;
mod report;
mod strategy;

pub use checkpoint::{BlockState, Checkpoint, CheckpointPolicy, CheckpointSink, MemorySink};
pub use exec::{Executor, ExecutorChoice};
pub use experiment::{Experiment, ExperimentBuilder, ExperimentError};
pub use memory::memory_per_rank;
pub use report::RunReport;
pub use strategy::Strategy;
