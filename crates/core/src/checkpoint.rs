//! Checkpointing: versioned snapshots of student training state.
//!
//! A [`Checkpoint`] captures everything a blockwise-distillation run needs
//! to resume bit-exactly at a round boundary: per-block parameter tensors,
//! the per-block SGD momentum velocities, the per-block loss history, and
//! the data cursor (sample generation is per-index deterministic, so the
//! "RNG cursor" of a run *is* its next sample index — `round × batch`).
//! Because the per-block objective is schedule-independent, a checkpoint
//! assembled from blocks that reached round `r` at different wall-clock
//! times is still globally consistent: it equals the sequential reference
//! state after `r` steps, bit for bit.
//!
//! Persistence is decoupled through the [`CheckpointSink`] trait: the
//! executor streams completed checkpoints into a sink without knowing
//! whether they land in memory ([`MemorySink`]) or in a schema-versioned
//! `pipebd.checkpoint` artifact envelope (`pipebd_artifact`'s
//! `CheckpointStore`, which layers atomic write-rename and retry on top).
//! The round-interval policy lives in [`CheckpointPolicy`].

use std::sync::Mutex;

use pipebd_nn::{Layer, Sgd};
use pipebd_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A bitwise-exact, serializable snapshot of one tensor.
///
/// `crates/json` round-trips `f32` exactly, so snapshot → JSON → restore
/// reproduces the original buffer bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorSnapshot {
    /// Tensor shape.
    pub dims: Vec<usize>,
    /// Row-major element data.
    pub data: Vec<f32>,
}

impl TensorSnapshot {
    /// Snapshots a tensor by value.
    pub fn of(t: &Tensor) -> Self {
        TensorSnapshot {
            dims: t.dims().to_vec(),
            data: t.data().to_vec(),
        }
    }

    /// Rebuilds the tensor.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when `data` does not fill `dims` (a
    /// corrupt or hand-edited checkpoint).
    pub fn to_tensor(&self) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), &self.dims)
    }
}

/// One student block's state at a round boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockState {
    /// Global block index.
    pub block: usize,
    /// Parameter tensors in `visit_params` order.
    pub params: Vec<TensorSnapshot>,
    /// SGD momentum velocities in `visit_params` order (may be empty if
    /// the optimizer never stepped).
    pub velocities: Vec<TensorSnapshot>,
    /// Per-step distillation losses recorded so far (length = round).
    pub losses: Vec<f32>,
}

/// Versioned student training state at a round boundary.
///
/// `round` counts *completed* optimizer steps; resuming replays steps
/// `round..steps` and reproduces the uninterrupted run bitwise (width-1
/// plans) because every restored quantity — parameters, velocities, the
/// data cursor — is exactly what the uninterrupted run held at that point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Completed optimizer steps (the resume point).
    pub round: usize,
    /// Next sample index: `round × batch`. Redundant with `round` but
    /// stored explicitly so an envelope is self-describing.
    pub data_cursor: u64,
    /// Global batch size of the run that produced this state.
    pub batch: usize,
    /// Learning rate of the run.
    pub lr: f32,
    /// SGD momentum of the run.
    pub momentum: f32,
    /// Structural fingerprint of the [`StagePlan`] the writing run
    /// executed under (`StagePlan::fingerprint`; empty when the run used
    /// the default contiguous plan implicitly). Restores check it against
    /// the restoring run's plan *lineage* — a checkpoint written under a
    /// plan the recovery never ran is mismatched state, not a resume
    /// point.
    ///
    /// [`StagePlan`]: pipebd_sched::StagePlan
    pub plan_fingerprint: String,
    /// Per-block state, sorted by block index, one entry per block.
    pub blocks: Vec<BlockState>,
}

impl Checkpoint {
    /// The state of global block `index`, if present.
    pub fn block(&self, index: usize) -> Option<&BlockState> {
        self.blocks.iter().find(|b| b.block == index)
    }

    /// Structural validation against a run shape.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the checkpoint cannot resume
    /// a `num_blocks`-block run at batch size `batch`.
    pub fn validate(&self, num_blocks: usize, batch: usize) -> Result<(), String> {
        if self.blocks.len() != num_blocks {
            return Err(format!(
                "checkpoint has {} blocks, run has {num_blocks}",
                self.blocks.len()
            ));
        }
        for i in 0..num_blocks {
            let Some(b) = self.block(i) else {
                return Err(format!("checkpoint is missing block {i}"));
            };
            if b.losses.len() != self.round {
                return Err(format!(
                    "block {i} has {} losses at round {}",
                    b.losses.len(),
                    self.round
                ));
            }
        }
        if self.batch != batch {
            return Err(format!(
                "checkpoint batch {} differs from run batch {batch}",
                self.batch
            ));
        }
        if self.data_cursor != self.round as u64 * self.batch as u64 {
            return Err(format!(
                "data cursor {} inconsistent with round {} x batch {}",
                self.data_cursor, self.round, self.batch
            ));
        }
        Ok(())
    }
}

/// Captures one block's state: parameters and momentum velocities in
/// `visit_params` order, plus the loss history recorded so far.
pub fn capture_block(
    layer: &mut dyn Layer,
    block: usize,
    optim: &Sgd,
    losses: &[f32],
) -> BlockState {
    let params = pipebd_nn::snapshot_params(layer)
        .iter()
        .map(TensorSnapshot::of)
        .collect();
    let velocities = optim.velocities().iter().map(TensorSnapshot::of).collect();
    BlockState {
        block,
        params,
        velocities,
        losses: losses.to_vec(),
    }
}

/// Restores one block's state: parameter values are replaced (gradients
/// cleared, dropping any shared-grad override) and the optimizer's
/// momentum velocities are reinstalled, so the next step continues the
/// exact trajectory of the run that was checkpointed.
///
/// # Errors
///
/// Returns a human-readable reason when `state` does not structurally
/// match `layer` (wrong parameter count or corrupt snapshot shapes).
pub fn restore_block(
    layer: &mut dyn Layer,
    optim: &mut Sgd,
    state: &BlockState,
) -> Result<(), String> {
    let mut idx = 0usize;
    let mut err: Option<String> = None;
    layer.visit_params(&mut |p| {
        if err.is_none() {
            match state.params.get(idx).map(TensorSnapshot::to_tensor) {
                Some(Ok(t)) => {
                    p.value = t;
                    p.clear_grad();
                }
                Some(Err(e)) => err = Some(format!("block {}: param {idx}: {e}", state.block)),
                None => err = Some(format!("block {}: missing param {idx}", state.block)),
            }
        }
        idx += 1;
    });
    if let Some(e) = err {
        return Err(e);
    }
    if idx != state.params.len() {
        return Err(format!(
            "block {}: layer has {idx} params, checkpoint has {}",
            state.block,
            state.params.len()
        ));
    }
    let velocities: Result<Vec<Tensor>, TensorError> = state
        .velocities
        .iter()
        .map(TensorSnapshot::to_tensor)
        .collect();
    optim.restore_velocities(
        velocities.map_err(|e| format!("block {}: velocity: {e}", state.block))?,
    );
    Ok(())
}

/// Round-interval checkpoint policy: snapshot after every `every`-th
/// completed round (and never after the final round — a finished run has
/// its outcome, not a checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Rounds between snapshots; `0` disables checkpointing.
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every` rounds.
    pub fn every(every: usize) -> Self {
        CheckpointPolicy { every }
    }

    /// Whether a snapshot is due after completing `rounds_done` of
    /// `total_steps` rounds.
    pub fn due(&self, rounds_done: usize, total_steps: usize) -> bool {
        self.every > 0
            && rounds_done > 0
            && rounds_done < total_steps
            && rounds_done % self.every == 0
    }
}

/// Where completed checkpoints go, and where a recovery restores from.
///
/// Errors are rendered as text — the executor wraps them in
/// `ExecError::Checkpoint`. Implementations must be thread-safe: the
/// executor may store from the assembly thread while a recovery
/// orchestrator reads `latest`.
pub trait CheckpointSink: Send + Sync {
    /// Persists a completed checkpoint.
    ///
    /// # Errors
    ///
    /// Returns the sink-specific failure as text.
    fn store(&self, checkpoint: &Checkpoint) -> Result<(), String>;

    /// The highest-round checkpoint stored so far, if any.
    ///
    /// # Errors
    ///
    /// Returns the sink-specific failure as text (a torn on-disk
    /// envelope is an error, never silently `None`).
    fn latest(&self) -> Result<Option<Checkpoint>, String>;

    /// [`CheckpointSink::latest`], gated on plan lineage: the checkpoint's
    /// `plan_fingerprint` must be one of `lineage` (the fingerprints of
    /// every plan the restoring recovery has run under). A checkpoint
    /// written under a foreign plan is **mismatched state** — silently
    /// resuming it would splice another run's trajectory into this one —
    /// so it is a structured error, distinct from a torn envelope (which
    /// `latest` already reports as its own sink-specific text).
    ///
    /// Checkpoints with an empty fingerprint predate the lineage stamp
    /// and pass unchecked.
    ///
    /// # Errors
    ///
    /// Returns the sink failure verbatim, or a
    /// `"plan fingerprint mismatch: ..."` message for a foreign
    /// checkpoint.
    fn latest_matching(&self, lineage: &[String]) -> Result<Option<Checkpoint>, String> {
        let Some(ckpt) = self.latest()? else {
            return Ok(None);
        };
        if !ckpt.plan_fingerprint.is_empty() && !lineage.contains(&ckpt.plan_fingerprint) {
            return Err(format!(
                "plan fingerprint mismatch: checkpoint at round {} written under `{}`, \
                 expected one of [{}]",
                ckpt.round,
                ckpt.plan_fingerprint,
                lineage.join(", ")
            ));
        }
        Ok(Some(ckpt))
    }
}

/// An in-memory [`CheckpointSink`] keeping the highest-round checkpoint.
#[derive(Debug, Default)]
pub struct MemorySink {
    inner: Mutex<MemoryState>,
}

#[derive(Debug, Default)]
struct MemoryState {
    latest: Option<Checkpoint>,
    stored: usize,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// How many checkpoints have been stored (including superseded ones).
    pub fn stored(&self) -> usize {
        self.inner.lock().expect("sink lock").stored
    }
}

impl CheckpointSink for MemorySink {
    fn store(&self, checkpoint: &Checkpoint) -> Result<(), String> {
        let mut inner = self.inner.lock().map_err(|_| "sink poisoned".to_string())?;
        inner.stored += 1;
        if !matches!(&inner.latest, Some(c) if c.round >= checkpoint.round) {
            inner.latest = Some(checkpoint.clone());
        }
        Ok(())
    }

    fn latest(&self) -> Result<Option<Checkpoint>, String> {
        let inner = self.inner.lock().map_err(|_| "sink poisoned".to_string())?;
        Ok(inner.latest.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Rng64;

    fn tiny_checkpoint(round: usize, batch: usize) -> Checkpoint {
        let mut rng = Rng64::seed_from_u64(11);
        let t = Tensor::randn(&[2, 3], &mut rng);
        Checkpoint {
            round,
            data_cursor: round as u64 * batch as u64,
            batch,
            lr: 0.05,
            momentum: 0.9,
            plan_fingerprint: "1x1:test".to_string(),
            blocks: vec![BlockState {
                block: 0,
                params: vec![TensorSnapshot::of(&t)],
                velocities: vec![TensorSnapshot::of(&t)],
                losses: vec![0.5; round],
            }],
        }
    }

    #[test]
    fn tensor_snapshot_roundtrips_bitwise() {
        let mut rng = Rng64::seed_from_u64(3);
        let t = Tensor::randn(&[3, 4, 2], &mut rng);
        let snap = TensorSnapshot::of(&t);
        let back = snap.to_tensor().unwrap();
        assert_eq!(back, t);
        // And through JSON, which round-trips f32 exactly.
        let json = pipebd_json::to_string(&snap).unwrap();
        let reparsed: TensorSnapshot = pipebd_json::from_str(&json).unwrap();
        assert_eq!(reparsed.to_tensor().unwrap(), t);
    }

    #[test]
    fn snapshot_rejects_mismatched_dims() {
        let snap = TensorSnapshot {
            dims: vec![2, 3],
            data: vec![0.0; 5],
        };
        assert!(snap.to_tensor().is_err());
    }

    #[test]
    fn policy_due_at_interval_boundaries_only() {
        let p = CheckpointPolicy::every(3);
        assert!(!p.due(0, 10), "nothing to snapshot before any round");
        assert!(!p.due(2, 10));
        assert!(p.due(3, 10));
        assert!(!p.due(4, 10));
        assert!(p.due(6, 10));
        assert!(
            !p.due(9, 9),
            "final round yields an outcome, not a checkpoint"
        );
        assert!(!CheckpointPolicy::every(0).due(3, 10), "0 disables");
    }

    #[test]
    fn checkpoint_validate_catches_structural_drift() {
        let good = tiny_checkpoint(4, 8);
        good.validate(1, 8).expect("well-formed");
        assert!(good.validate(2, 8).is_err(), "block count");
        assert!(good.validate(1, 4).is_err(), "batch mismatch");
        let mut torn = good.clone();
        torn.data_cursor = 7;
        assert!(torn.validate(1, 8).is_err(), "cursor drift");
        let mut short = good.clone();
        short.blocks[0].losses.pop();
        assert!(short.validate(1, 8).is_err(), "loss history length");
    }

    #[test]
    fn memory_sink_keeps_the_highest_round() {
        let sink = MemorySink::new();
        assert!(sink.latest().unwrap().is_none());
        sink.store(&tiny_checkpoint(2, 8)).unwrap();
        sink.store(&tiny_checkpoint(6, 8)).unwrap();
        sink.store(&tiny_checkpoint(4, 8)).unwrap();
        assert_eq!(sink.latest().unwrap().unwrap().round, 6);
        assert_eq!(sink.stored(), 3);
    }

    #[test]
    fn latest_matching_gates_on_plan_lineage() {
        let sink = MemorySink::new();
        assert!(sink.latest_matching(&[]).unwrap().is_none(), "empty sink");
        sink.store(&tiny_checkpoint(2, 8)).unwrap();
        // In-lineage fingerprint resumes.
        let lineage = vec!["0x0:dead".to_string(), "1x1:test".to_string()];
        assert_eq!(sink.latest_matching(&lineage).unwrap().unwrap().round, 2);
        // Foreign fingerprint is a structured error, not a silent resume.
        let err = sink
            .latest_matching(&["2x2:beef".to_string()])
            .expect_err("foreign plan must not resume");
        assert!(
            err.contains("plan fingerprint mismatch") && err.contains("1x1:test"),
            "unexpected error: {err}"
        );
        // Pre-stamp checkpoints (empty fingerprint) pass unchecked.
        let mut legacy = tiny_checkpoint(4, 8);
        legacy.plan_fingerprint.clear();
        sink.store(&legacy).unwrap();
        assert_eq!(sink.latest_matching(&[]).unwrap().unwrap().round, 4);
    }
}
