//! The parallelization strategies the paper compares.

use serde::{Deserialize, Serialize};

/// A blockwise-distillation parallelization strategy.
///
/// `DataParallel` and `LayerwiseScheduling` are the paper's baselines
/// (Section VI-C); the remaining four are Pipe-BD's ablation steps from
/// Fig. 4, with [`Strategy::PipeBd`] (= TR+DPU+AHD) being the full method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// DP: block-by-block data-parallel training (DNA's scheme, Fig. 3a).
    DataParallel,
    /// LS: layerwise bin-packing of independent block tasks (Blakeney et
    /// al.).
    LayerwiseScheduling,
    /// TR: teacher relaying only (Fig. 3b) — pipeline with a per-step
    /// barrier before updates.
    TeacherRelaying,
    /// TR+DPU: teacher relaying with decoupled parameter update (Fig. 3c).
    TrDpu,
    /// TR+IR: internal relaying — every device runs all blocks on a batch
    /// shard (the paper's alternative in Section VII-A).
    TrIr,
    /// TR+DPU+AHD: full Pipe-BD with automatic hybrid distribution
    /// (Fig. 3d).
    PipeBd,
}

impl Strategy {
    /// All strategies in the order the paper's figures list them.
    pub const ALL: [Strategy; 6] = [
        Strategy::DataParallel,
        Strategy::LayerwiseScheduling,
        Strategy::TeacherRelaying,
        Strategy::TrDpu,
        Strategy::TrIr,
        Strategy::PipeBd,
    ];

    /// The ablation subset shown as colored bars in Fig. 4 (everything but
    /// the baselines).
    pub const PIPE_BD_VARIANTS: [Strategy; 4] = [
        Strategy::TeacherRelaying,
        Strategy::TrDpu,
        Strategy::TrIr,
        Strategy::PipeBd,
    ];

    /// The short label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::DataParallel => "DP",
            Strategy::LayerwiseScheduling => "LS",
            Strategy::TeacherRelaying => "TR",
            Strategy::TrDpu => "TR+DPU",
            Strategy::TrIr => "TR+IR",
            Strategy::PipeBd => "TR+DPU+AHD",
        }
    }

    /// Whether the strategy uses decoupled parameter updates (no per-step
    /// global barrier).
    pub fn decoupled_updates(&self) -> bool {
        matches!(self, Strategy::TrDpu | Strategy::PipeBd)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(Strategy::DataParallel.to_string(), "DP");
        assert_eq!(Strategy::PipeBd.to_string(), "TR+DPU+AHD");
        assert_eq!(Strategy::ALL.len(), 6);
    }

    #[test]
    fn dpu_flags() {
        assert!(!Strategy::TeacherRelaying.decoupled_updates());
        assert!(Strategy::TrDpu.decoupled_updates());
        assert!(Strategy::PipeBd.decoupled_updates());
        assert!(!Strategy::DataParallel.decoupled_updates());
    }
}
