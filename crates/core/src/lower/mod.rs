//! Lowering of each [`Strategy`] into a simulator task graph.
//!
//! Each submodule emits the event schedule of one of the paper's Fig. 3
//! diagrams: [`dp`] (Fig. 3a), [`relay`] (Fig. 3b–d, parameterized by the
//! stage plan and the DPU flag), [`ir`] (internal relaying), and [`ls`]
//! (the layerwise baseline).

pub mod dp;
pub mod epochs;
pub mod fault;
pub mod ir;
pub mod ls;
pub mod relay;

use pipebd_models::Workload;
use pipebd_sched::{CostModel, LsAssignment, ProfileTable, StagePlan};
use pipebd_sim::{HardwareConfig, Resource, SimTime, TaskGraph, TaskId, TaskKind};

use crate::strategy::Strategy;

/// How many batches the loader pipeline may run ahead of the consumer
/// (PyTorch-style bounded prefetching).
pub const PREFETCH_DEPTH: usize = 4;

/// Shared lowering context.
#[derive(Debug, Clone)]
pub struct Lowering<'a> {
    /// The workload being trained.
    pub workload: &'a Workload,
    /// The simulated server.
    pub hw: &'a HardwareConfig,
    /// Block-level timing model (must match the profiler's).
    pub cost: CostModel,
    /// Global batch size.
    pub batch: usize,
    /// Number of forward/backward rounds to emit (for DP: per phase).
    pub rounds: u32,
    /// Measured per-block timing override. When set, block durations come
    /// from this profile instead of the analytic [`CostModel`] — the trace
    /// plane replays an *observed* executor run through the simulator this
    /// way. `None` (the default) leaves lowering bit-identical to before.
    pub profile: Option<&'a ProfileTable>,
}

impl<'a> Lowering<'a> {
    /// Creates a lowering context.
    pub fn new(workload: &'a Workload, hw: &'a HardwareConfig, batch: usize, rounds: u32) -> Self {
        Lowering {
            workload,
            hw,
            cost: CostModel::new(hw.gpu.clone()),
            batch,
            rounds,
            profile: None,
        }
    }

    /// Returns this context with block durations taken from a measured
    /// profile (see [`Lowering::profile`]).
    #[must_use]
    pub fn with_profile(mut self, profile: &'a ProfileTable) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Emits the decode (loader pool) and consume (device-side collate +
    /// H2D copy) tasks for one batch of `samples` on device `device`.
    ///
    /// `throttle` is the consume task `PREFETCH_DEPTH` batches ago on the
    /// same consumer, bounding how far the loader runs ahead.
    pub(crate) fn emit_load(
        &self,
        g: &mut TaskGraph,
        device: usize,
        samples: usize,
        step: u32,
        throttle: Option<TaskId>,
    ) -> (TaskId, TaskId) {
        let decode = g.add_tagged(
            Resource::Loader,
            TaskKind::Load,
            self.hw
                .host
                .decode_time(samples, self.workload.dataset.decode_us_per_sample),
            throttle.into_iter().collect(),
            None,
            step,
        );
        let bytes = samples as u64 * self.workload.dataset.sample_bytes();
        let consume = g.add_tagged(
            Resource::Gpu(device),
            TaskKind::Load,
            self.hw.host.consume_time(samples, bytes, &self.hw.pcie),
            vec![decode],
            None,
            step,
        );
        (decode, consume)
    }

    /// Teacher execution duration for one block at a per-device batch.
    pub(crate) fn teacher(&self, block: usize, batch: usize) -> SimTime {
        if let Some(p) = self.profile {
            return p.teacher_time(block, batch);
        }
        self.cost
            .teacher_time(&self.workload.model.blocks[block], batch)
    }

    /// Student execution duration for one block at a per-device batch.
    pub(crate) fn student(&self, block: usize, batch: usize) -> SimTime {
        if let Some(p) = self.profile {
            return p.student_time(block, batch);
        }
        self.cost
            .student_time(&self.workload.model.blocks[block], batch)
    }

    /// Update duration for one block.
    pub(crate) fn update(&self, block: usize) -> SimTime {
        if let Some(p) = self.profile {
            return p.update_time(block);
        }
        self.cost.update_time(&self.workload.model.blocks[block])
    }
}

/// A lowered strategy, ready to simulate.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The emitted task graph.
    pub graph: TaskGraph,
    /// The stage plan, for relay-family strategies.
    pub plan: Option<StagePlan>,
    /// The bin-packing assignment, for the LS baseline.
    pub ls: Option<LsAssignment>,
    /// Rounds emitted (the caller scales makespan to a full epoch).
    pub rounds: u32,
}

/// Lowers `strategy` into a task graph (dispatch over the submodules).
///
/// # Errors
///
/// Returns an error string if the strategy cannot be laid out (e.g. plain
/// teacher relaying with fewer blocks than devices).
pub fn lower(lowering: &Lowering<'_>, strategy: Strategy) -> Result<Lowered, String> {
    match strategy {
        Strategy::DataParallel => Ok(dp::lower(lowering)),
        Strategy::LayerwiseScheduling => Ok(ls::lower(lowering)),
        Strategy::TeacherRelaying => relay::lower_contiguous(lowering, false),
        Strategy::TrDpu => relay::lower_contiguous(lowering, true),
        Strategy::TrIr => Ok(ir::lower(lowering)),
        Strategy::PipeBd => relay::lower_ahd(lowering),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_sim::simulate;

    fn ctx<'a>(workload: &'a Workload, hw: &'a HardwareConfig) -> Lowering<'a> {
        Lowering::new(workload, hw, 256, 8)
    }

    #[test]
    fn all_strategies_lower_and_simulate() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw);
        for s in Strategy::ALL {
            let lowered = lower(&l, s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(!lowered.graph.is_empty(), "{s} emitted no tasks");
            let run = simulate(&lowered.graph);
            assert!(run.makespan > SimTime::ZERO, "{s} has zero makespan");
        }
    }

    #[test]
    fn pipe_bd_beats_dp_on_every_paper_workload() {
        // The headline claim, at lowering level: simulated Pipe-BD epoch
        // time is below DP's. An epoch runs every DP phase at the full
        // round count, so makespans at equal `rounds` are comparable
        // directly (DP's graph already contains all B phases).
        let hw = HardwareConfig::a6000_server(4);
        for w in [Workload::nas_cifar10(), Workload::compression_cifar10()] {
            let l = ctx(&w, &hw);
            let dp = simulate(&lower(&l, Strategy::DataParallel).unwrap().graph).makespan;
            let pb = simulate(&lower(&l, Strategy::PipeBd).unwrap().graph).makespan;
            assert!(
                pb < dp,
                "{}: Pipe-BD {pb} !< DP {dp} per epoch-equivalent",
                w.label()
            );
        }
    }

    #[test]
    fn teacher_relaying_requires_enough_blocks() {
        let w = Workload::synthetic(3, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw);
        assert!(lower(&l, Strategy::TeacherRelaying).is_err());
        // But Pipe-BD still works: AHD can batch-split.
        assert!(lower(&l, Strategy::PipeBd).is_ok());
    }
}
