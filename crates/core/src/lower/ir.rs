//! Internal relaying (the paper's TR+IR alternative, Section VII-A).
//!
//! Every device trains *all* blocks each step on a batch shard: the
//! teacher runs once per device with activations kept in memory (no relay,
//! no redundancy, no imbalance), but every block executes at the small
//! per-device batch — the utilization loss that makes IR lose to full
//! Pipe-BD. It is exactly the plan where every block is batch-split, which
//! the paper notes is a special case of TR+DPU+AHD.

use pipebd_sched::StagePlan;
use pipebd_sim::{Resource, TaskGraph, TaskId, TaskKind};

use super::{Lowered, Lowering, PREFETCH_DEPTH};

/// Emits the internal-relaying schedule.
pub fn lower(l: &Lowering<'_>) -> Lowered {
    let n = l.hw.num_gpus;
    let b = l.workload.num_blocks();
    let shard = l.batch.div_ceil(n);
    let mut g = TaskGraph::new(n);
    let mut recent_consumes: Vec<Vec<TaskId>> = vec![Vec::new(); n];

    for round in 0..l.rounds {
        let mut last_students = Vec::with_capacity(n);
        for d in 0..n {
            let throttle = recent_consumes[d]
                .len()
                .checked_sub(PREFETCH_DEPTH)
                .map(|idx| recent_consumes[d][idx]);
            let (_, consume) = l.emit_load(&mut g, d, shard, round, throttle);
            recent_consumes[d].push(consume);

            // One full teacher pass, activations stored internally.
            let mut prev = consume;
            for block in 0..b {
                prev = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Teacher,
                    l.teacher(block, shard),
                    vec![prev],
                    Some(block as u16),
                    round,
                );
            }
            // All students, reading the stored activations.
            for block in 0..b {
                prev = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Student,
                    l.student(block, shard),
                    vec![prev],
                    Some(block as u16),
                    round,
                );
            }
            last_students.push(prev);
        }
        // Fused all-reduce over every student's gradients, then updates.
        let grad_bytes: u64 = l
            .workload
            .model
            .blocks
            .iter()
            .map(|blk| 4 * blk.student_params)
            .sum();
        let share_time = l.hw.pcie.allreduce_time(grad_bytes, n);
        for d in 0..n {
            let share = g.add_tagged(
                Resource::Gpu(d),
                TaskKind::GradShare,
                share_time,
                last_students.clone(),
                None,
                round,
            );
            let mut prev = share;
            for block in 0..b {
                prev = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Update,
                    l.update(block),
                    vec![prev],
                    Some(block as u16),
                    round,
                );
            }
        }
    }

    Lowered {
        graph: g,
        plan: Some(StagePlan::internal_relaying(b, n)),
        ls: None,
        rounds: l.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;
    use pipebd_sim::{simulate, Breakdown, HardwareConfig, SimTime};

    #[test]
    fn ranks_are_symmetric() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let lowered = lower(&Lowering::new(&w, &hw, 256, 4));
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        for r in &bd.ranks[1..] {
            assert_eq!(r.teacher, bd.ranks[0].teacher);
            assert_eq!(r.student, bd.ranks[0].student);
        }
    }

    #[test]
    fn no_teacher_redundancy_but_small_batch() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = Lowering::new(&w, &hw, 256, 1);
        let lowered = lower(&l);
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        // Each rank runs the full teacher once at shard size.
        let per_rank: f64 = (0..6).map(|k| l.teacher(k, 64).as_secs_f64()).sum();
        assert!((bd.ranks[0].teacher.as_secs_f64() - per_rank).abs() < 1e-9);
        // Four ranks at batch 64 do more total teacher-time than one full
        // batch-256 pass (occupancy loss) — the paper's IR caveat.
        let full: f64 = (0..6).map(|k| l.teacher(k, 256).as_secs_f64()).sum();
        let total = 4.0 * per_rank;
        assert!(total > full, "IR must pay the small-batch penalty");
    }

    #[test]
    fn ir_loses_to_pipe_bd_on_balanced_workloads() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = Lowering::new(&w, &hw, 256, 8);
        let ir = simulate(&lower(&l).graph).makespan;
        let pb = simulate(
            &crate::lower::lower(&l, crate::strategy::Strategy::PipeBd)
                .unwrap()
                .graph,
        )
        .makespan;
        assert!(pb < ir, "Pipe-BD {pb} must beat IR {ir}");
        assert!(ir > SimTime::ZERO);
    }
}
