//! Multi-epoch lowering with epoch-boundary synchronization.
//!
//! Section IV-B of the paper: decoupled parameter update removes per-step
//! barriers, but "full synchronization is needed for validating the whole
//! model" at the beginning of each epoch — and because an epoch has tens
//! to hundreds of steps, that overhead "is amortized to a negligible
//! amount". This module emits several epochs of a relayed schedule with a
//! global sync plus a validation pass between epochs, so that claim can be
//! measured rather than asserted.

use pipebd_sched::StagePlan;
use pipebd_sim::{simulate, Resource, SimTime, TaskGraph, TaskId, TaskKind};

use super::{relay, Lowering};

/// Result of a multi-epoch simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSyncReport {
    /// Total simulated time for all epochs including boundary syncs.
    pub total: SimTime,
    /// Time the same rounds take without any epoch boundaries.
    pub unsynced: SimTime,
    /// Fractional overhead of the epoch-boundary synchronization.
    pub overhead: f64,
}

/// Emits `epochs` epochs of `rounds_per_epoch` DPU-relayed rounds each,
/// with a full barrier and a validation pass (one full teacher+student
/// forward at the global batch, split across devices) between epochs, then
/// compares against the boundary-free schedule.
pub fn simulate_with_epoch_sync(
    l: &Lowering<'_>,
    plan: &StagePlan,
    epochs: u32,
    rounds_per_epoch: u32,
) -> EpochSyncReport {
    assert!(epochs > 0 && rounds_per_epoch > 0, "need work to simulate");

    // Boundary-free reference: one long pipeline.
    let long = Lowering {
        rounds: epochs * rounds_per_epoch,
        ..l.clone()
    };
    let unsynced = simulate(&relay::lower_plan(&long, plan, true).graph).makespan;

    // Epoch-synced schedule: emit each epoch into one graph, joined by a
    // global Sync plus a validation forward pass per device.
    let per_epoch = Lowering {
        rounds: rounds_per_epoch,
        ..l.clone()
    };
    let mut total = SimTime::ZERO;
    for _ in 0..epochs {
        let lowered = relay::lower_plan(&per_epoch, plan, true);
        let mut graph = lowered.graph;
        append_validation_pass(&per_epoch, plan, &mut graph);
        total += simulate(&graph).makespan;
    }

    let overhead = total.as_secs_f64() / unsynced.as_secs_f64() - 1.0;
    EpochSyncReport {
        total,
        unsynced,
        overhead,
    }
}

/// Appends the epoch-boundary work: a global barrier over everything
/// emitted so far, then one evaluation forward pass (teacher + student,
/// shard per device) on every rank.
fn append_validation_pass(l: &Lowering<'_>, plan: &StagePlan, graph: &mut TaskGraph) {
    let last_per_device: Vec<Option<TaskId>> = {
        let mut last = vec![None; graph.num_gpus()];
        for (id, t) in graph.iter() {
            if let Resource::Gpu(d) = t.resource {
                last[d] = Some(id);
            }
        }
        last
    };
    let all_last: Vec<TaskId> = last_per_device.iter().flatten().copied().collect();
    let shard = l.batch.div_ceil(graph.num_gpus());
    for d in 0..graph.num_gpus() {
        let sync = graph.add(
            Resource::Gpu(d),
            TaskKind::Sync,
            SimTime::ZERO,
            all_last.clone(),
        );
        // Validation: full model forward (teacher reference + student) on
        // this device's shard.
        let eval_time: SimTime = (0..plan.num_blocks)
            .map(|b| {
                // Student eval forward ≈ one third of fwd+bwd cost.
                let stu_fwd = SimTime::from_secs_f64(l.student(b, shard).as_secs_f64() / 3.0);
                l.teacher(b, shard) + stu_fwd
            })
            .sum();
        graph.add(Resource::Gpu(d), TaskKind::Teacher, eval_time, vec![sync]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;
    use pipebd_sim::HardwareConfig;

    #[test]
    fn epoch_sync_overhead_is_amortized() {
        // The paper's claim: with tens to hundreds of steps per epoch the
        // sync overhead becomes negligible. At 64 rounds/epoch it must be
        // under 10%.
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = Lowering::new(&w, &hw, 256, 1);
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let report = simulate_with_epoch_sync(&l, &plan, 3, 64);
        assert!(
            report.overhead < 0.10,
            "sync overhead {:.1}% not amortized",
            100.0 * report.overhead
        );
        assert!(report.total >= report.unsynced, "sync cannot be free");
    }

    #[test]
    fn short_epochs_pay_visibly_more() {
        // Conversely, with very short epochs the boundary cost shows up —
        // the reason the paper amortizes over long epochs.
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = Lowering::new(&w, &hw, 256, 1);
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let short = simulate_with_epoch_sync(&l, &plan, 12, 4);
        let long = simulate_with_epoch_sync(&l, &plan, 1, 48);
        assert!(
            short.overhead > 2.0 * long.overhead,
            "short epochs {:.3} should cost more than long {:.3}",
            short.overhead,
            long.overhead
        );
    }

    #[test]
    #[should_panic(expected = "need work to simulate")]
    fn zero_epochs_rejected() {
        let w = Workload::synthetic(4, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = Lowering::new(&w, &hw, 256, 1);
        let plan = StagePlan::contiguous(4, 4).unwrap();
        let _ = simulate_with_epoch_sync(&l, &plan, 0, 4);
    }
}
