//! Teacher relaying (Fig. 3b), decoupled parameter update (Fig. 3c), and
//! the full hybrid Pipe-BD schedule (Fig. 3d), all lowered from a
//! [`StagePlan`].
//!
//! Every stage executes, per round: receive the boundary activation from
//! the previous stage (or load data, for stage 0) → teacher blocks → send
//! the boundary onward (on the copy engine, overlapped) → student blocks →
//! (gradient sharing, if the stage is batch-split) → updates. Without DPU a
//! global barrier precedes the updates; with DPU each block updates
//! immediately and the next round starts as soon as input is available.

use pipebd_sched::{ahd, Profiler, StagePlan};
use pipebd_sim::{Resource, SimTime, TaskGraph, TaskId, TaskKind};

use super::{Lowered, Lowering, PREFETCH_DEPTH};

/// Lowers plain teacher relaying (optionally with DPU) on the naive
/// contiguous plan.
///
/// # Errors
///
/// Returns an error if there are fewer blocks than devices (plain TR
/// cannot batch-split; the paper's AHD exists for exactly that reason).
pub fn lower_contiguous(l: &Lowering<'_>, dpu: bool) -> Result<Lowered, String> {
    let plan =
        StagePlan::contiguous(l.workload.num_blocks(), l.hw.num_gpus).map_err(|e| e.to_string())?;
    Ok(lower_plan(l, &plan, dpu))
}

/// Lowers the full Pipe-BD schedule: profile, search hybrid plans, then
/// emit the chosen plan with DPU.
///
/// # Errors
///
/// Currently infallible in practice (the hybrid space is never empty); the
/// `Result` mirrors [`lower_contiguous`] for a uniform dispatch signature.
pub fn lower_ahd(l: &Lowering<'_>) -> Result<Lowered, String> {
    let table = Profiler::new(l.cost.clone()).profile(&l.workload.model, l.batch, l.hw.num_gpus);
    let decision = ahd::search(l.workload, &table, l.hw, l.batch);
    Ok(lower_plan(l, &decision.plan, true))
}

/// Incremental emitter of relayed-pipeline rounds.
///
/// Owns the task graph plus the state that crosses round boundaries — the
/// per-consumer prefetch throttle and the previous round's barrier updates
/// — so callers can splice rounds of *different* plans into one schedule.
/// [`lower_plan`] drives it with a single plan and the identity device
/// map; the fault plane (`super::fault`) re-plans at fault boundaries and
/// switches plan and device map mid-schedule.
pub(crate) struct RoundEmitter<'l, 'a> {
    l: &'l Lowering<'a>,
    pub(crate) graph: TaskGraph,
    /// Consume tasks per *physical* rank (prefetch throttling).
    recent_consumes: Vec<Vec<TaskId>>,
    /// Update tasks of the previous round (barrier deps when `!dpu`).
    prev_round_updates: Vec<TaskId>,
}

impl<'l, 'a> RoundEmitter<'l, 'a> {
    pub(crate) fn new(l: &'l Lowering<'a>) -> Self {
        let n = l.hw.num_gpus;
        RoundEmitter {
            l,
            graph: TaskGraph::new(n),
            recent_consumes: vec![Vec::new(); n],
            prev_round_updates: Vec::new(),
        }
    }

    /// Emits one round of `plan`.
    ///
    /// `map` sends the plan's logical device ranks to physical GPU ranks
    /// (`map[d] = d` reproduces the classic lowering exactly);
    /// `extra_deps` additionally gate the round's stage-0 inputs — the
    /// replan-barrier tasks at a segment splice. Every other task of the
    /// round chains off stage 0 (directly or through relay sends), so
    /// gating stage 0 gates the round.
    pub(crate) fn emit_round(
        &mut self,
        plan: &StagePlan,
        dpu: bool,
        round: u32,
        map: &[usize],
        extra_deps: &[TaskId],
    ) {
        let l = self.l;
        let g = &mut self.graph;
        // Boundary sends of the previous stage within this round.
        let mut prev_stage_sends: Vec<TaskId> = Vec::new();
        let mut this_round_students: Vec<TaskId> = Vec::new();
        // Deferred update emission for the barrier (non-DPU) case:
        // (logical device, block, deps-so-far).
        let mut pending_updates: Vec<(usize, usize, TaskId)> = Vec::new();

        for stage in &plan.stages {
            let db = stage.device_batch(l.batch);
            let mut stage_students: Vec<TaskId> = Vec::new();
            let mut stage_sends: Vec<TaskId> = Vec::new();

            for &d in &stage.devices {
                let p = map[d];
                // Input: load for stage 0, relay receive otherwise.
                let mut input_deps: Vec<TaskId> = if stage.first_block == 0 {
                    let throttle = self.recent_consumes[p]
                        .len()
                        .checked_sub(PREFETCH_DEPTH)
                        .map(|idx| self.recent_consumes[p][idx]);
                    let (_, consume) = l.emit_load(g, p, db, round, throttle);
                    self.recent_consumes[p].push(consume);
                    let mut deps = vec![consume];
                    deps.extend_from_slice(extra_deps);
                    deps
                } else {
                    prev_stage_sends.clone()
                };
                // Without DPU the new round may not start before the global
                // barrier of the previous round resolved.
                if !dpu {
                    input_deps.extend(self.prev_round_updates.iter().copied());
                }

                // Teacher chain over the stage's blocks.
                let mut last_teacher = None;
                for b in stage.blocks() {
                    let deps = match last_teacher {
                        None => input_deps.clone(),
                        Some(t) => vec![t],
                    };
                    let teach = g.add_tagged(
                        Resource::Gpu(p),
                        TaskKind::Teacher,
                        l.teacher(b, db),
                        deps,
                        Some(b as u16),
                        round,
                    );
                    last_teacher = Some(teach);
                }
                let last_teacher = last_teacher.expect("stages are nonempty");

                // Relay the boundary activation onward (overlapped on the
                // copy engine).
                let last_block = stage.first_block + stage.num_blocks - 1;
                if last_block + 1 < plan.num_blocks {
                    let bytes = l.workload.model.blocks[last_block].boundary_bytes() * db as u64;
                    let send = g.add_tagged(
                        Resource::Copy(p),
                        TaskKind::Comm,
                        l.hw.pcie.transfer_time(bytes),
                        vec![last_teacher],
                        Some(last_block as u16),
                        round,
                    );
                    stage_sends.push(send);
                }

                // Students (forward + backward) per block.
                let mut last_stu = None;
                for b in stage.blocks() {
                    let stu = g.add_tagged(
                        Resource::Gpu(p),
                        TaskKind::Student,
                        l.student(b, db),
                        vec![last_stu.unwrap_or(last_teacher)],
                        Some(b as u16),
                        round,
                    );
                    stage_students.push(stu);
                    this_round_students.push(stu);
                    last_stu = Some(stu);

                    if dpu && stage.width() == 1 {
                        // Immediate per-block update (Fig. 3c).
                        let upd = g.add_tagged(
                            Resource::Gpu(p),
                            TaskKind::Update,
                            l.update(b),
                            vec![stu],
                            Some(b as u16),
                            round,
                        );
                        last_stu = Some(upd);
                    } else {
                        pending_updates.push((d, b, stu));
                    }
                }
            }

            // Data-parallel gradient sharing inside a widened stage: one
            // fused all-reduce per member, depending on every member's
            // backwards; the member's updates chain after it.
            if stage.width() > 1 {
                let grad_bytes: u64 = stage
                    .blocks()
                    .map(|b| 4 * l.workload.model.blocks[b].student_params)
                    .sum();
                let share_time = l.hw.pcie.allreduce_time(grad_bytes, stage.width());
                let mut retained = Vec::new();
                for &d in &stage.devices {
                    let share = g.add_tagged(
                        Resource::Gpu(map[d]),
                        TaskKind::GradShare,
                        share_time,
                        stage_students.clone(),
                        None,
                        round,
                    );
                    for &(pd, b, _) in pending_updates.iter().filter(|(pd, _, _)| *pd == d) {
                        if dpu {
                            g.add_tagged(
                                Resource::Gpu(map[pd]),
                                TaskKind::Update,
                                l.update(b),
                                vec![share],
                                Some(b as u16),
                                round,
                            );
                        } else {
                            retained.push((pd, b, share));
                        }
                    }
                }
                pending_updates.retain(|(pd, _, _)| !stage.devices.contains(pd));
                pending_updates.extend(retained);
            }

            prev_stage_sends = stage_sends;
        }

        // Barrier before updates (plain TR): every pending update waits on
        // every student of the round.
        let mut round_updates = Vec::new();
        if !dpu {
            for (d, b, dep) in pending_updates.drain(..) {
                let mut deps = this_round_students.clone();
                deps.push(dep);
                let upd = g.add_tagged(
                    Resource::Gpu(map[d]),
                    TaskKind::Update,
                    l.update(b),
                    deps,
                    Some(b as u16),
                    round,
                );
                round_updates.push(upd);
            }
        }
        self.prev_round_updates = round_updates;
    }
}

/// Emits the relayed pipeline schedule for an explicit plan.
pub fn lower_plan(l: &Lowering<'_>, plan: &StagePlan, dpu: bool) -> Lowered {
    let mut em = RoundEmitter::new(l);
    let identity: Vec<usize> = (0..l.hw.num_gpus).collect();
    for round in 0..l.rounds {
        em.emit_round(plan, dpu, round, &identity, &[]);
    }
    Lowered {
        graph: em.graph,
        plan: Some(plan.clone()),
        ls: None,
        rounds: l.rounds,
    }
}

/// Estimated steady-state period of the simulated pipeline: total time of
/// the last `tail` rounds divided by `tail` (used to validate the analytic
/// estimator).
pub fn simulated_period(l: &Lowering<'_>, plan: &StagePlan, dpu: bool, tail: u32) -> SimTime {
    let lowered = lower_plan(l, plan, dpu);
    let run = pipebd_sim::simulate(&lowered.graph);
    // Find the completion time of round (rounds - tail - 1) and of the last
    // round; their difference spans `tail` rounds.
    let mut end_by_round = vec![SimTime::ZERO; l.rounds as usize];
    for (id, t) in lowered.graph.iter() {
        let f = run.finish[id.index()];
        let r = t.step as usize;
        if f > end_by_round[r] {
            end_by_round[r] = f;
        }
    }
    let last = *end_by_round.last().expect("at least one round");
    let base = end_by_round[l.rounds as usize - 1 - tail as usize];
    SimTime::from_ns((last.as_ns() - base.as_ns()) / tail as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;
    use pipebd_sim::{simulate, Breakdown, HardwareConfig};

    fn ctx<'a>(w: &'a Workload, hw: &'a HardwareConfig, rounds: u32) -> Lowering<'a> {
        Lowering::new(w, hw, 256, rounds)
    }

    #[test]
    fn dpu_strictly_improves_on_barrier() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 16);
        let tr = simulate(&lower_contiguous(&l, false).unwrap().graph).makespan;
        let dpu = simulate(&lower_contiguous(&l, true).unwrap().graph).makespan;
        assert!(dpu < tr, "DPU {dpu} must beat barrier {tr}");
    }

    #[test]
    fn teacher_runs_once_per_round() {
        // Teacher relaying eliminates redundancy: total teacher time per
        // round equals one full forward pass.
        let w = Workload::synthetic(8, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 1);
        let lowered = lower_contiguous(&l, true).unwrap();
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        let total_teacher: f64 = bd.ranks.iter().map(|r| r.teacher.as_secs_f64()).sum();
        let one_pass: f64 = (0..8).map(|k| l.teacher(k, 256).as_secs_f64()).sum();
        assert!((total_teacher - one_pass).abs() < 1e-9);
    }

    #[test]
    fn only_first_stage_loads() {
        let w = Workload::synthetic(8, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 4);
        let lowered = lower_contiguous(&l, true).unwrap();
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        assert!(bd.ranks[0].load > SimTime::ZERO);
        for r in &bd.ranks[1..] {
            assert_eq!(r.load, SimTime::ZERO, "only rank 0 consumes batches");
        }
    }

    #[test]
    fn simulated_period_matches_analytic_estimate() {
        // The AHD estimator and the simulator must agree on the pipeline's
        // steady state (within a few percent: the estimator ignores relay
        // latency edges).
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 24);
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let table = Profiler::new(l.cost.clone()).profile(&w.model, 256, 4);
        let analytic = pipebd_sched::estimate_period(&plan, &table, &w, &hw, 256);
        let simulated = simulated_period(&l, &plan, true, 8);
        let ratio = simulated.as_secs_f64() / analytic.as_secs_f64();
        assert!(
            (0.9..1.1).contains(&ratio),
            "estimate {analytic} vs simulated {simulated} (ratio {ratio})"
        );
    }

    #[test]
    fn ahd_lowering_picks_split_plan_on_imagenet() {
        let w = Workload::nas_imagenet();
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 4);
        let lowered = lower_ahd(&l).unwrap();
        assert!(lowered.plan.unwrap().uses_batch_split());
    }

    #[test]
    fn wide_stage_emits_grad_sharing() {
        let w = Workload::synthetic(4, true);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 2);
        let plan = StagePlan::from_widths(&[(1, 2), (3, 2)], 4, 4).unwrap();
        let lowered = lower_plan(&l, &plan, true);
        let has_share = lowered
            .graph
            .iter()
            .any(|(_, t)| t.kind == TaskKind::GradShare);
        assert!(has_share);
    }

    #[test]
    fn barrier_updates_wait_on_all_students() {
        let w = Workload::synthetic(4, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 2);
        let plan = StagePlan::contiguous(4, 4).unwrap();
        let lowered = lower_plan(&l, &plan, false);
        // Every update in round 0 must depend on >= 4 students.
        let mut found = 0;
        for (_, t) in lowered.graph.iter() {
            if t.kind == TaskKind::Update && t.step == 0 {
                let stu_deps = t
                    .deps
                    .iter()
                    .filter(|d| lowered.graph.task(**d).kind == TaskKind::Student)
                    .count();
                assert!(
                    stu_deps >= 4,
                    "barrier update has only {stu_deps} student deps"
                );
                found += 1;
            }
        }
        assert_eq!(found, 4);
    }
}
