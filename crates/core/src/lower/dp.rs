//! The data-parallel baseline (the paper's Fig. 3a, DNA's scheme).
//!
//! For every block `i` (a *phase*), all devices train student `i` in data
//! parallel for the full epoch: each device loads its batch shard, runs the
//! teacher prefix `0..=i` (the redundant execution the paper attacks),
//! runs student `i`, all-reduces gradients, and updates. Phases run
//! back-to-back.

use pipebd_sim::{Resource, TaskGraph, TaskId, TaskKind};

use super::{Lowered, Lowering, PREFETCH_DEPTH};

/// Emits the DP schedule: `rounds` rounds for each of the `B` phases.
pub fn lower(l: &Lowering<'_>) -> Lowered {
    let n = l.hw.num_gpus;
    let b = l.workload.num_blocks();
    let shard = l.batch.div_ceil(n);
    let mut g = TaskGraph::new(n);

    // Per-device ring buffer of consume tasks for loader throttling.
    let mut recent_consumes: Vec<Vec<TaskId>> = vec![Vec::new(); n];

    for phase in 0..b {
        for round in 0..l.rounds {
            let step = phase as u32 * l.rounds + round;
            let mut students = Vec::with_capacity(n);
            let mut teacher_deps = Vec::with_capacity(n);
            for d in 0..n {
                let throttle = recent_consumes[d]
                    .len()
                    .checked_sub(PREFETCH_DEPTH)
                    .map(|idx| recent_consumes[d][idx]);
                let (_, consume) = l.emit_load(&mut g, d, shard, step, throttle);
                recent_consumes[d].push(consume);
                teacher_deps.push(consume);
            }
            for d in 0..n {
                // The whole teacher prefix 0..=phase, fused into one task
                // (its duration is the sum of the per-block times).
                let prefix: pipebd_sim::SimTime = (0..=phase).map(|k| l.teacher(k, shard)).sum();
                let teach = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Teacher,
                    prefix,
                    vec![teacher_deps[d]],
                    Some(phase as u16),
                    step,
                );
                let stu = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Student,
                    l.student(phase, shard),
                    vec![teach],
                    Some(phase as u16),
                    step,
                );
                students.push(stu);
            }
            // Gradient all-reduce is a collective: every device's share
            // depends on every device's backward.
            let grad_bytes = 4 * l.workload.model.blocks[phase].student_params;
            let share_time = l.hw.pcie.allreduce_time(grad_bytes, n);
            for d in 0..n {
                let share = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::GradShare,
                    share_time,
                    students.clone(),
                    Some(phase as u16),
                    step,
                );
                g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Update,
                    l.update(phase),
                    vec![share],
                    Some(phase as u16),
                    step,
                );
            }
        }
    }

    Lowered {
        graph: g,
        plan: None,
        ls: None,
        rounds: l.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;
    use pipebd_sim::{simulate, Breakdown, HardwareConfig};

    #[test]
    fn phases_scale_with_block_count() {
        let hw = HardwareConfig::a6000_server(4);
        let w4 = Workload::synthetic(4, false);
        let w8 = Workload::synthetic(8, false);
        let m4 = simulate(&lower(&Lowering::new(&w4, &hw, 256, 4)).graph).makespan;
        let m8 = simulate(&lower(&Lowering::new(&w8, &hw, 256, 4)).graph).makespan;
        // 8 blocks = 8 phases with longer prefixes: superlinear growth.
        assert!(m8.as_secs_f64() > 2.0 * m4.as_secs_f64());
    }

    #[test]
    fn all_ranks_equally_busy() {
        let hw = HardwareConfig::a6000_server(4);
        let w = Workload::synthetic(6, false);
        let lowered = lower(&Lowering::new(&w, &hw, 256, 4));
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        let t0 = bd.ranks[0].teacher;
        for r in &bd.ranks[1..] {
            assert_eq!(r.teacher, t0, "DP ranks are symmetric");
        }
    }

    #[test]
    fn redundant_prefix_visible_in_teacher_time() {
        // Teacher time summed over phases must exceed a single full pass
        // by roughly B/2 (the redundancy factor).
        let hw = HardwareConfig::a6000_server(4);
        let w = Workload::synthetic(6, false);
        let l = Lowering::new(&w, &hw, 256, 1);
        let lowered = lower(&l);
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        let one_pass: f64 = (0..6).map(|k| l.teacher(k, 64).as_secs_f64()).sum();
        let simulated = bd.ranks[0].teacher.as_secs_f64();
        assert!(
            simulated > 3.0 * one_pass,
            "prefix redundancy missing: {simulated} vs {one_pass}"
        );
    }
}
