//! The layerwise-scheduling baseline (Blakeney et al., IEEE TPDS 2021).
//!
//! Block-training tasks are bin-packed onto devices; each device trains its
//! blocks independently at the full batch size, re-running the teacher
//! prefix for every task (the redundancy stays), with no inter-device
//! communication. Imbalance appears when few, very unequal blocks must be
//! packed — the paper's explanation for LS losing to DP on ImageNet.

use pipebd_sched::{ls, Profiler};
use pipebd_sim::{Resource, SimTime, TaskGraph, TaskId, TaskKind};

use super::{Lowered, Lowering, PREFETCH_DEPTH};

/// Emits the LS schedule: `rounds` rounds, each device running its packed
/// block tasks sequentially.
pub fn lower(l: &Lowering<'_>) -> Lowered {
    let n = l.hw.num_gpus;
    // Pack using the same profile the AHD search would see.
    let table = Profiler::new(l.cost.clone()).profile(&l.workload.model, l.batch, n);
    let assignment = ls::pack(l.workload, &table, n, l.batch);

    let mut g = TaskGraph::new(n);
    let mut recent_consumes: Vec<Vec<TaskId>> = vec![Vec::new(); n];

    for round in 0..l.rounds {
        for d in 0..n {
            if assignment.device_blocks[d].is_empty() {
                continue;
            }
            let throttle = recent_consumes[d]
                .len()
                .checked_sub(PREFETCH_DEPTH)
                .map(|idx| recent_consumes[d][idx]);
            let (_, consume) = l.emit_load(&mut g, d, l.batch, round, throttle);
            recent_consumes[d].push(consume);
            let mut prev = consume;
            for &block in &assignment.device_blocks[d] {
                // Independent task: teacher prefix up to `block` re-runs.
                let prefix: SimTime = (0..=block).map(|k| l.teacher(k, l.batch)).sum();
                let teach = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Teacher,
                    prefix,
                    vec![prev],
                    Some(block as u16),
                    round,
                );
                let stu = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Student,
                    l.student(block, l.batch),
                    vec![teach],
                    Some(block as u16),
                    round,
                );
                let upd = g.add_tagged(
                    Resource::Gpu(d),
                    TaskKind::Update,
                    l.update(block),
                    vec![stu],
                    Some(block as u16),
                    round,
                );
                prev = upd;
            }
        }
    }

    Lowered {
        graph: g,
        plan: None,
        ls: Some(assignment),
        rounds: l.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use pipebd_models::Workload;
    use pipebd_sim::{simulate, Breakdown, HardwareConfig};

    #[test]
    fn ls_beats_dp_on_cifar_and_its_edge_shrinks_on_compression_imagenet() {
        // The paper (Fig. 4 / Table II) has LS beating DP on CIFAR-10 and
        // *losing* on ImageNet. Our LS baseline is stronger than the
        // paper's (profiled-cost LPT packing + shared per-device loading),
        // so the crossover does not fully reproduce — see EXPERIMENTS.md —
        // but the direction must hold: LS's advantage over DP is large on
        // CIFAR and shrinks substantially on ImageNet for the compression
        // workload. Both graphs at equal `rounds` are epoch-comparable.
        let hw = HardwareConfig::a6000_server(4);
        let speedup = |w: &Workload| {
            let l = Lowering::new(w, &hw, 256, 6);
            let ls_time = simulate(&lower(&l).graph).makespan;
            let dp_time = simulate(
                &crate::lower::lower(&l, Strategy::DataParallel)
                    .unwrap()
                    .graph,
            )
            .makespan;
            dp_time.as_secs_f64() / ls_time.as_secs_f64()
        };
        let cifar = speedup(&Workload::compression_cifar10());
        let imagenet = speedup(&Workload::compression_imagenet());
        assert!(cifar > 1.5, "LS must clearly beat DP on CIFAR: {cifar:.2}x");
        assert!(
            imagenet < 0.7 * cifar,
            "LS's edge must shrink on ImageNet: {imagenet:.2}x vs {cifar:.2}x"
        );
    }

    #[test]
    fn no_cross_device_dependencies() {
        // LS devices are fully independent: each rank's idle stays 0 until
        // the others finish (idle only from makespan padding).
        let hw = HardwareConfig::a6000_server(4);
        let w = Workload::compression_cifar10();
        let lowered = lower(&Lowering::new(&w, &hw, 256, 2));
        let run = simulate(&lowered.graph);
        let bd = Breakdown::from_run(&lowered.graph, &run);
        // At least one rank is idle-padded (imbalance), but no rank waits
        // on Comm (no relays exist).
        for (_, t) in lowered.graph.iter() {
            assert_ne!(t.kind, TaskKind::Comm);
            assert_ne!(t.kind, TaskKind::GradShare);
        }
        assert!(bd.ranks.iter().any(|r| r.idle > SimTime::ZERO));
    }

    #[test]
    fn assignment_recorded_in_lowered() {
        let hw = HardwareConfig::a6000_server(4);
        let w = Workload::compression_cifar10();
        let lowered = lower(&Lowering::new(&w, &hw, 256, 1));
        let ls = lowered.ls.expect("LS assignment present");
        let total: usize = ls.device_blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 13);
    }
}
