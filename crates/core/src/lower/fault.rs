//! Fault-aware lowering: splicing replanned stage plans into the schedule.
//!
//! The fault plane's third piece (after `pipebd_sim::simulate_faulted` and
//! `pipebd_sched::replan`): given an incumbent [`StagePlan`] and a
//! [`FaultScript`], emit one task graph whose rounds switch plans at the
//! script's change steps.
//!
//! * With `replan = false` the incumbent runs unchanged for every round
//!   (slowdowns only stretch task durations at simulation time); a script
//!   that removes or adds a host mid-schedule is rejected, because the
//!   static schedule would place work on a missing rank.
//! * With `replan = true` the lowering probes the degraded cluster at
//!   every change step, re-runs the AHD search over the survivors
//!   ([`pipebd_sched::replan::replan`]), and splices the new plan into the
//!   remaining rounds. Each splice charges the scheduler's
//!   `replan_overhead` as one [`TaskKind::Replan`] barrier task per
//!   surviving member, gating the new segment's first round behind every
//!   task of the old segment's last round.
//!
//! The splice is DPU-only (immediate/post-share updates): plain-TR's
//! global update barrier would entangle rounds across the segment
//! boundary, and the paper's deployed configurations all run with DPU.

use pipebd_sched::replan::{replan, DegradedServer};
use pipebd_sched::StagePlan;
use pipebd_sim::{FaultScript, Resource, SimTime, TaskGraph, TaskId, TaskKind};

use super::relay::RoundEmitter;
use super::Lowering;

/// One contiguous run of rounds under a single plan and device mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSegment {
    /// First round this segment covers (it runs until the next segment's
    /// start, or the end of the schedule).
    pub start_round: u32,
    /// The plan in force, over `device_map.len()` logical devices.
    pub plan: StagePlan,
    /// Logical device → physical GPU rank.
    pub device_map: Vec<usize>,
    /// Replanning overhead charged at the splice into this segment
    /// (zero for the initial segment: its plan is decided before the
    /// run starts).
    pub overhead: SimTime,
}

/// A fault-aware lowering: the spliced graph plus its segment history.
#[derive(Debug, Clone)]
pub struct FaultLowered {
    /// The emitted task graph (feed to `pipebd_sim::simulate_faulted`
    /// with the same script so durations degrade consistently).
    pub graph: TaskGraph,
    /// Plan segments in round order; never empty when `rounds > 0`.
    pub segments: Vec<FaultSegment>,
    /// Sum of per-splice replanning overheads.
    pub total_overhead: SimTime,
    /// Rounds emitted.
    pub rounds: u32,
}

impl FaultLowered {
    /// The segment in force at the end of the schedule (steady state for
    /// scripts whose last change step precedes the final round).
    pub fn final_segment(&self) -> &FaultSegment {
        self.segments
            .last()
            .expect("lower_faulted emits >= 1 segment")
    }
}

/// Lowers `incumbent` over `l.rounds` rounds under `script`, optionally
/// replanning at every cluster change (DPU schedules only; see module
/// docs).
///
/// The returned graph tags every task with its global round, so
/// `simulate_faulted` applies each fault window to exactly the rounds the
/// replanner saw when it probed the script.
///
/// # Errors
///
/// Returns an error when the script is invalid for the server, when
/// `replan = false` and the script changes membership before the last
/// round, or when no rank survives at some change step.
pub fn lower_faulted(
    l: &Lowering<'_>,
    incumbent: &StagePlan,
    script: &FaultScript,
    replan_on_fault: bool,
) -> Result<FaultLowered, String> {
    let n = l.hw.num_gpus;
    script.validate(n).map_err(|e| e.to_string())?;
    let identity: Vec<usize> = (0..n).collect();

    // Probe steps: schedule start plus every in-range cluster change.
    let mut probes: Vec<u32> = vec![0];
    probes.extend(
        script
            .change_steps()
            .into_iter()
            .filter(|&s| s > 0 && s < l.rounds),
    );

    let segments: Vec<FaultSegment> = if replan_on_fault {
        let mut segs: Vec<FaultSegment> = Vec::new();
        let mut prev_state: Option<DegradedServer> = None;
        for &s in &probes {
            let state = DegradedServer::at_step(l.hw, script, s).map_err(|e| e.to_string())?;
            if prev_state.as_ref() == Some(&state) {
                continue; // window edge with no net change: keep the plan
            }
            let seg = if segs.is_empty() && state.is_healthy(n) {
                FaultSegment {
                    start_round: s,
                    plan: incumbent.clone(),
                    device_map: identity.clone(),
                    overhead: SimTime::ZERO,
                }
            } else {
                let d = replan(l.workload, &state, l.batch);
                FaultSegment {
                    start_round: s,
                    plan: d.plan,
                    device_map: d.device_map,
                    // The initial plan is decided offline, before round 0.
                    overhead: if segs.is_empty() {
                        SimTime::ZERO
                    } else {
                        d.overhead
                    },
                }
            };
            segs.push(seg);
            prev_state = Some(state);
        }
        segs
    } else {
        // Static schedule: the incumbent must stay placeable throughout.
        let used: Vec<usize> = incumbent
            .stages
            .iter()
            .flat_map(|st| st.devices.iter().copied())
            .collect();
        for &s in &probes {
            for &d in &used {
                if !script.alive(d, s) {
                    return Err(format!(
                        "replanning disabled, but rank {d} is unavailable at step {s}: \
                         the static schedule cannot place its work"
                    ));
                }
            }
        }
        vec![FaultSegment {
            start_round: 0,
            plan: incumbent.clone(),
            device_map: identity.clone(),
            overhead: SimTime::ZERO,
        }]
    };

    let mut em = RoundEmitter::new(l);
    let mut total_overhead = SimTime::ZERO;
    // Every task of the most recently emitted round (splice barrier deps).
    let mut prev_round_ids: Vec<TaskId> = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        let end = segments.get(i + 1).map_or(l.rounds, |nx| nx.start_round);
        let mut splice_deps: Vec<TaskId> = Vec::new();
        if i > 0 {
            total_overhead += seg.overhead;
            for &p in &seg.device_map {
                let id = em.graph.add_tagged(
                    Resource::Gpu(p),
                    TaskKind::Replan,
                    seg.overhead,
                    prev_round_ids.clone(),
                    None,
                    seg.start_round,
                );
                splice_deps.push(id);
            }
        }
        for round in seg.start_round..end {
            let mark = em.graph.len();
            let gate: &[TaskId] = if round == seg.start_round {
                &splice_deps
            } else {
                &[]
            };
            em.emit_round(&seg.plan, true, round, &seg.device_map, gate);
            prev_round_ids = em.graph.iter().skip(mark).map(|(id, _)| id).collect();
        }
    }

    Ok(FaultLowered {
        graph: em.graph,
        segments,
        total_overhead,
        rounds: l.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::relay::lower_plan;
    use pipebd_models::Workload;
    use pipebd_sched::{ahd, Profiler};
    use pipebd_sim::{simulate_faulted, FaultEvent, HardwareConfig};

    fn ctx<'a>(w: &'a Workload, hw: &'a HardwareConfig, rounds: u32) -> Lowering<'a> {
        Lowering::new(w, hw, 256, rounds)
    }

    fn incumbent(l: &Lowering<'_>) -> StagePlan {
        let table =
            Profiler::new(l.cost.clone()).profile(&l.workload.model, l.batch, l.hw.num_gpus);
        ahd::search(l.workload, &table, l.hw, l.batch).plan
    }

    fn assert_graphs_equal(a: &TaskGraph, b: &TaskGraph) {
        assert_eq!(a.len(), b.len(), "task counts differ");
        for ((ia, ta), (ib, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ta.resource, tb.resource, "task {ia:?}");
            assert_eq!(ta.kind, tb.kind, "task {ia:?}");
            assert_eq!(ta.duration, tb.duration, "task {ia:?}");
            assert_eq!(ta.deps, tb.deps, "task {ia:?}");
            assert_eq!(ta.block, tb.block, "task {ia:?}");
            assert_eq!(ta.step, tb.step, "task {ia:?}");
        }
    }

    #[test]
    fn healthy_script_reproduces_lower_plan_bit_for_bit() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 8);
        let plan = incumbent(&l);
        let classic = lower_plan(&l, &plan, true);
        for replan_on in [false, true] {
            let f = lower_faulted(&l, &plan, &FaultScript::healthy(), replan_on).unwrap();
            assert_graphs_equal(&f.graph, &classic.graph);
            assert_eq!(f.segments.len(), 1);
            assert_eq!(f.total_overhead, SimTime::ZERO);
        }
    }

    #[test]
    fn slowdown_without_replan_keeps_the_static_schedule() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 8);
        let plan = incumbent(&l);
        let script = FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank: 1,
                factor: 3.0,
                start_step: 2,
                end_step: 6,
            }],
        };
        let f = lower_faulted(&l, &plan, &script, false).unwrap();
        // Same graph as the healthy lowering: degradation is applied by the
        // simulator, not the static schedule.
        assert_graphs_equal(&f.graph, &lower_plan(&l, &plan, true).graph);
        let run = simulate_faulted(&f.graph, &script).unwrap();
        let healthy = simulate_faulted(&f.graph, &FaultScript::healthy()).unwrap();
        assert!(run.run.makespan > healthy.run.makespan);
    }

    #[test]
    fn replan_disabled_rejects_membership_changes() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 8);
        let plan = incumbent(&l);
        let loss = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 2,
                at_step: 3,
            }],
        };
        let err = lower_faulted(&l, &plan, &loss, false).unwrap_err();
        assert!(err.contains("rank 2"), "{err}");
        // A loss after the schedule's last round is clean.
        let late = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 2,
                at_step: 8,
            }],
        };
        assert!(lower_faulted(&l, &plan, &late, false).is_ok());
    }

    #[test]
    fn slowdown_window_splices_three_segments() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 12);
        let plan = incumbent(&l);
        let script = FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank: 0,
                factor: 4.0,
                start_step: 4,
                end_step: 8,
            }],
        };
        let f = lower_faulted(&l, &plan, &script, true).unwrap();
        assert_eq!(
            f.segments.iter().map(|s| s.start_round).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
        // Both splices charge overhead; the initial segment does not.
        assert_eq!(f.segments[0].overhead, SimTime::ZERO);
        assert!(f.segments[1].overhead > SimTime::ZERO);
        assert!(f.segments[2].overhead > SimTime::ZERO);
        assert_eq!(
            f.total_overhead,
            f.segments[1].overhead + f.segments[2].overhead
        );
        // One Replan barrier task per member per splice, tagged with the
        // splice round.
        let replans: Vec<_> = f
            .graph
            .iter()
            .filter(|(_, t)| t.kind == TaskKind::Replan)
            .collect();
        assert_eq!(replans.len(), 2 * hw.num_gpus);
        assert!(replans.iter().all(|(_, t)| t.step == 4 || t.step == 8));
        // The spliced graph degrades and simulates cleanly.
        assert!(simulate_faulted(&f.graph, &script).is_ok());
    }

    #[test]
    fn host_loss_replans_onto_the_survivors() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 8);
        let plan = incumbent(&l);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 1,
                at_step: 3,
            }],
        };
        let f = lower_faulted(&l, &plan, &script, true).unwrap();
        assert_eq!(f.segments.len(), 2);
        let last = f.final_segment();
        assert_eq!(last.start_round, 3);
        assert_eq!(last.plan.num_devices, 3);
        assert_eq!(last.device_map, vec![0, 2, 3]);
        // No task after the loss lands on the dead rank, so the degraded
        // simulation accepts the graph.
        for (_, t) in f.graph.iter() {
            if t.step >= 3 {
                assert_ne!(t.resource, Resource::Gpu(1), "task at step {}", t.step);
                assert_ne!(t.resource, Resource::Copy(1), "task at step {}", t.step);
            }
        }
        assert!(simulate_faulted(&f.graph, &script).is_ok());
    }

    #[test]
    fn host_join_grows_the_cluster() {
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 10);
        let plan = incumbent(&l);
        // Rank 3 only becomes available at step 5.
        let script = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 3,
                at_step: 5,
            }],
        };
        let f = lower_faulted(&l, &plan, &script, true).unwrap();
        assert_eq!(f.segments.len(), 2);
        assert_eq!(f.segments[0].plan.num_devices, 3);
        assert_eq!(f.segments[0].device_map, vec![0, 1, 2]);
        assert_eq!(
            f.segments[0].overhead,
            SimTime::ZERO,
            "initial plan is offline"
        );
        assert_eq!(f.final_segment().plan.num_devices, 4);
        assert!(simulate_faulted(&f.graph, &script).is_ok());
    }

    #[test]
    fn splice_barrier_orders_segments() {
        // Every task of the new segment starts at or after every finish of
        // the old segment's last round plus the replan overhead.
        let w = Workload::synthetic(6, false);
        let hw = HardwareConfig::a6000_server(4);
        let l = ctx(&w, &hw, 8);
        let plan = incumbent(&l);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 0,
                at_step: 4,
            }],
        };
        let f = lower_faulted(&l, &plan, &script, true).unwrap();
        let sim = simulate_faulted(&f.graph, &script).unwrap();
        let replan_finish = f
            .graph
            .iter()
            .filter(|(_, t)| t.kind == TaskKind::Replan)
            .map(|(id, _)| sim.run.finish_of(id))
            .max()
            .unwrap();
        let old_max_finish = f
            .graph
            .iter()
            .filter(|(_, t)| t.step < 4 && t.kind != TaskKind::Replan)
            .map(|(id, _)| sim.run.finish_of(id))
            .max()
            .unwrap();
        assert!(replan_finish >= old_max_finish);
        for (id, t) in f.graph.iter() {
            // Loader-pool decodes may prefetch through the splice (they
            // are throttled by PREFETCH_DEPTH, not the barrier); every
            // on-device task of the new segment waits out the replan.
            if t.step >= 4 && t.kind != TaskKind::Replan && t.resource != Resource::Loader {
                assert!(
                    sim.run.start[id.index()] >= replan_finish,
                    "task at step {} started inside the old segment",
                    t.step
                );
            }
        }
    }
}
