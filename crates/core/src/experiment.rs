//! The experiment facade: configure a workload + hardware once, then run
//! any strategy and get a [`RunReport`].

use pipebd_models::Workload;
use pipebd_sched::{ahd, AhdDecision, CostModel, Profiler};
use pipebd_sim::{render_gantt, simulate, Breakdown, HardwareConfig, SimTime};

use crate::exec::{Executor, ExecutorChoice};
use crate::lower::{lower, Lowering};
use crate::memory::memory_per_rank;
use crate::report::RunReport;
use crate::strategy::Strategy;

/// Error raised when building or running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentError(pub String);

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "experiment error: {}", self.0)
    }
}

impl std::error::Error for ExperimentError {}

/// Builder for an [`Experiment`].
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    workload: Workload,
    hw: HardwareConfig,
    batch: usize,
    sim_rounds: u32,
    executor: ExecutorChoice,
}

impl ExperimentBuilder {
    /// Starts from an explicit workload.
    pub fn new(workload: Workload) -> Self {
        ExperimentBuilder {
            workload,
            hw: HardwareConfig::a6000_server(4),
            batch: 256,
            sim_rounds: 32,
            executor: ExecutorChoice::default(),
        }
    }

    /// NAS on CIFAR-10 (the paper's default ablation workload).
    pub fn nas_cifar10() -> Self {
        ExperimentBuilder::new(Workload::nas_cifar10())
    }

    /// NAS on ImageNet.
    pub fn nas_imagenet() -> Self {
        ExperimentBuilder::new(Workload::nas_imagenet())
    }

    /// Model compression on CIFAR-10.
    pub fn compression_cifar10() -> Self {
        ExperimentBuilder::new(Workload::compression_cifar10())
    }

    /// Model compression on ImageNet.
    pub fn compression_imagenet() -> Self {
        ExperimentBuilder::new(Workload::compression_imagenet())
    }

    /// Sets the number of GPUs (keeps the current GPU type).
    pub fn devices(mut self, n: usize) -> Self {
        self.hw.num_gpus = n;
        self
    }

    /// Sets the global batch size.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the full hardware configuration.
    pub fn hardware(mut self, hw: HardwareConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Sets how many rounds to simulate before extrapolating to an epoch
    /// (more rounds = tighter steady-state estimate, slower simulation).
    pub fn sim_rounds(mut self, rounds: u32) -> Self {
        self.sim_rounds = rounds.max(2);
        self
    }

    /// Selects which functional [`Executor`] backs
    /// [`Experiment::functional_executor`]; recorded in every
    /// [`RunReport`] so persisted artifacts name their execution engine.
    pub fn executor(mut self, executor: ExecutorChoice) -> Self {
        self.executor = executor;
        self
    }

    /// Validates and builds the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for nonsensical configurations (no
    /// devices, zero batch, fewer batch rows than devices).
    pub fn build(self) -> Result<Experiment, ExperimentError> {
        if self.hw.num_gpus == 0 {
            return Err(ExperimentError("need at least one GPU".into()));
        }
        if self.batch == 0 {
            return Err(ExperimentError("batch size must be positive".into()));
        }
        if self.batch < self.hw.num_gpus {
            return Err(ExperimentError(format!(
                "batch {} smaller than device count {}",
                self.batch, self.hw.num_gpus
            )));
        }
        self.workload.model.validate().map_err(ExperimentError)?;
        Ok(Experiment {
            workload: self.workload,
            hw: self.hw,
            batch: self.batch,
            sim_rounds: self.sim_rounds,
            executor: self.executor,
        })
    }
}

/// A configured experiment: workload × hardware × batch.
#[derive(Debug, Clone)]
pub struct Experiment {
    workload: Workload,
    hw: HardwareConfig,
    batch: usize,
    sim_rounds: u32,
    executor: ExecutorChoice,
}

impl Experiment {
    /// The workload under test.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The simulated server.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// The global batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The configured functional-executor choice.
    pub fn executor_choice(&self) -> ExecutorChoice {
        self.executor
    }

    /// Constructs the configured functional [`Executor`] (first step of
    /// wiring the executor trait through the facade: callers running the
    /// real threaded pipeline select the engine here instead of naming
    /// `exec::threaded` directly).
    pub fn functional_executor(&self) -> Box<dyn Executor> {
        self.executor.executor()
    }

    /// Rounds per epoch (`steps_per_epoch × rounds_per_step`).
    pub fn epoch_rounds(&self) -> u64 {
        self.workload.dataset.steps_per_epoch(self.batch) * self.workload.rounds_per_step as u64
    }

    /// Simulates one strategy and reports epoch-level results.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] if the strategy cannot be laid out on
    /// this configuration (e.g. plain TR with fewer blocks than devices).
    pub fn run(&self, strategy: Strategy) -> Result<RunReport, ExperimentError> {
        let lowering = Lowering::new(&self.workload, &self.hw, self.batch, self.sim_rounds);
        let lowered = lower(&lowering, strategy).map_err(ExperimentError)?;
        let run = simulate(&lowered.graph);
        let breakdown = Breakdown::from_run(&lowered.graph, &run);
        let memory = memory_per_rank(
            strategy,
            &self.workload,
            self.hw.num_gpus,
            self.batch,
            lowered.plan.as_ref(),
            lowered.ls.as_ref(),
        );

        // DP simulates `sim_rounds` per phase but an epoch runs
        // `epoch_rounds` per phase; the others simulate `sim_rounds` total
        // against `epoch_rounds` total. Both scale identically.
        let epoch_rounds = self.epoch_rounds();
        let scale = epoch_rounds as f64 / self.sim_rounds as f64;
        let epoch_time = SimTime::from_secs_f64(run.makespan.as_secs_f64() * scale);

        let mut report = RunReport {
            strategy,
            executor: self.executor,
            workload: self.workload.label(),
            hardware: self.hw.label(),
            global_batch: self.batch,
            simulated_rounds: self.sim_rounds,
            epoch_rounds,
            sim_makespan: run.makespan,
            epoch_time,
            breakdown,
            memory_per_rank: memory,
            plan: lowered.plan,
            ls_blocks: None,
        };
        if let Some(ls) = &lowered.ls {
            report.set_ls(ls);
        }
        Ok(report)
    }

    /// Renders the ASCII Gantt chart of a few simulated rounds of a
    /// strategy (the paper's Fig. 5b/5c schedule visualizations).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Experiment::run`].
    pub fn gantt(&self, strategy: Strategy, columns: usize) -> Result<String, ExperimentError> {
        let rounds = 4;
        let lowering = Lowering::new(&self.workload, &self.hw, self.batch, rounds);
        let lowered = lower(&lowering, strategy).map_err(ExperimentError)?;
        let run = simulate(&lowered.graph);
        Ok(render_gantt(&lowered.graph, &run, columns))
    }

    /// Runs the profiling pass and the AHD search, returning the decision
    /// (the plan [`Experiment::run`] uses for [`Strategy::PipeBd`]).
    pub fn ahd_decision(&self) -> AhdDecision {
        let table = Profiler::new(CostModel::new(self.hw.gpu.clone())).profile(
            &self.workload.model,
            self.batch,
            self.hw.num_gpus,
        );
        ahd::search(&self.workload, &table, &self.hw, self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(ExperimentBuilder::nas_cifar10().devices(0).build().is_err());
        assert!(ExperimentBuilder::nas_cifar10()
            .batch_size(0)
            .build()
            .is_err());
        assert!(ExperimentBuilder::nas_cifar10()
            .batch_size(2)
            .devices(4)
            .build()
            .is_err());
        assert!(ExperimentBuilder::nas_cifar10().build().is_ok());
    }

    #[test]
    fn run_produces_consistent_report() {
        let e = ExperimentBuilder::new(Workload::synthetic(6, false))
            .sim_rounds(8)
            .build()
            .unwrap();
        let r = e.run(Strategy::TrDpu).unwrap();
        assert_eq!(r.strategy, Strategy::TrDpu);
        assert_eq!(r.memory_per_rank.len(), 4);
        assert!(r.epoch_time_s() > 0.0);
        assert!(r.plan.is_some());
        // Epoch time consistent with scale.
        let expect = r.sim_makespan.as_secs_f64() * r.epoch_scale();
        assert!((r.epoch_time_s() - expect).abs() < 1e-9);
    }

    #[test]
    fn gantt_renders_for_all_strategies() {
        let e = ExperimentBuilder::new(Workload::synthetic(6, false))
            .sim_rounds(4)
            .build()
            .unwrap();
        for s in Strategy::ALL {
            let chart = e.gantt(s, 60).unwrap();
            assert!(chart.contains("gpu0"), "{s} chart missing rows");
        }
    }

    #[test]
    fn executor_choice_flows_into_reports() {
        let e = ExperimentBuilder::new(Workload::synthetic(6, false))
            .sim_rounds(4)
            .executor(ExecutorChoice::Reference)
            .build()
            .unwrap();
        assert_eq!(e.executor_choice(), ExecutorChoice::Reference);
        assert_eq!(e.functional_executor().name(), "reference");
        let r = e.run(Strategy::TrDpu).unwrap();
        assert_eq!(r.executor, ExecutorChoice::Reference);
        // Default is the threaded pipeline.
        let d = ExperimentBuilder::new(Workload::synthetic(6, false))
            .sim_rounds(4)
            .build()
            .unwrap();
        assert_eq!(d.functional_executor().name(), "threaded");
        assert_eq!(
            d.run(Strategy::TrDpu).unwrap().executor,
            ExecutorChoice::Threaded
        );
    }

    #[test]
    fn ahd_decision_matches_pipe_bd_run_plan() {
        let e = ExperimentBuilder::nas_imagenet()
            .sim_rounds(4)
            .build()
            .unwrap();
        let d = e.ahd_decision();
        let r = e.run(Strategy::PipeBd).unwrap();
        assert_eq!(Some(d.plan), r.plan);
    }
}
