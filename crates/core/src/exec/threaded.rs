//! Multi-threaded teacher relaying: the paper's Algorithm 1 with OS
//! threads as devices and crossbeam channels as the PCIe links.
//!
//! Per step and per device (Algorithm 1, lines 7–16):
//!
//! 1. receive the input activation from the previous stage — or load a
//!    batch, if this device owns block 0 (lines 8–9);
//! 2. run the assigned teacher blocks and relay the boundary activation to
//!    the next stage (lines 10–11);
//! 3. run the assigned student blocks forward/backward (lines 12–13);
//! 4. share gradients within a batch-split stage (line 14, AHD);
//! 5. wait on the global barrier unless decoupled updates are enabled
//!    (line 15, DPU);
//! 6. update the student weights (line 16).
//!
//! # Zero-copy relay
//!
//! The data plane shares immutable tensors instead of copying them (see
//! the [module docs](super) for the invariants):
//!
//! * boundary activations are wrapped in [`SharedTensor`] once, then
//!   cached locally and relayed to every next-stage member as handle
//!   clones — a steady-state hop performs zero full-tensor deep copies;
//! * the gradient gather **moves** each member's gradient buffers to the
//!   stage leader through the channel, the leader folds the average into
//!   the first contribution's buffers (no accumulator allocation), the
//!   averaged bundle is broadcast as shared handles, and each member
//!   installs its handles directly as `Param` shared gradients (the
//!   optimizer consumes them in place) — the sharing path performs zero
//!   buffer copies;
//! * the only remaining per-step copy is batch re-sharding at stage
//!   width *transitions* (equal-width hops forward handles untouched).
//!
//! Stage replicas are verified to remain bitwise identical after gradient
//! averaging — divergence is reported as an error.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use pipebd_data::SyntheticImageDataset;
use pipebd_nn::{mse_loss, BlockNet, Layer, Mode, Sgd};
use pipebd_sched::StagePlan;
use pipebd_tensor::parallel::ComputePool;
use pipebd_tensor::{SharedTensor, Tensor};
use pipebd_trace::{Span, SpanKind, TraceCollector, TrackRecorder};

use super::fault::{FaultAction, FaultDriver, ABORT_POLL};
use super::registry::{self, DeviceRegistry, DeviceRole, GradBundle, Shard, WorkerOut};
pub use super::ExecError;
use super::{FuncConfig, FuncOutcome};
use crate::checkpoint::{self, BlockState, Checkpoint, CheckpointPolicy, CheckpointSink};

/// Optional instrumentation for a threaded run: fault injection, a resume
/// point, checkpoint capture, and span tracing. [`run`] uses the empty
/// default; the recovery protocol ([`super::recovery`]) wires the first
/// three, the trace plane the fourth.
#[derive(Default)]
pub struct RunHooks {
    /// Fault driver interpreting a `FaultScript` against the workers.
    pub driver: Option<Arc<FaultDriver>>,
    /// Checkpoint to resume from (training replays steps
    /// `resume.round..cfg.steps`; the data cursor follows the global step
    /// index automatically).
    pub resume: Option<Arc<Checkpoint>>,
    /// Round-interval checkpoint capture into a sink.
    pub checkpoint: Option<(CheckpointPolicy, Arc<dyn CheckpointSink>)>,
    /// Span collector for the trace plane. `None` (the `PIPEBD_TRACE=off`
    /// case) costs exactly one branch per instrumentation point; tracing
    /// observes the schedule and never the math, so traced runs stay
    /// bitwise identical to untraced ones.
    pub trace: Option<Arc<TraceCollector>>,
}

/// A per-round checkpoint fragment: one block's state, sent by the
/// stage's member 0 to the assembly loop on the coordinating thread.
type CkptFrag = (usize, BlockState);

/// What each worker thread needs of the hooks.
struct WorkerHooks {
    driver: Option<Arc<FaultDriver>>,
    resume: Option<Arc<Checkpoint>>,
    ckpt: Option<(CheckpointPolicy, Sender<CkptFrag>)>,
    trace: Option<Arc<TraceCollector>>,
}

/// Runs `f` inside a recorded span when a recorder is present (the span
/// covers `f` exactly; with tracing off this is the one branch on `None`).
fn spanned<T>(
    rec: &mut Option<TrackRecorder>,
    kind: SpanKind,
    block: Option<u16>,
    step: u32,
    f: impl FnOnce() -> T,
) -> T {
    match rec {
        None => f(),
        Some(r) => {
            let t0 = r.now_ns();
            let out = f();
            let t1 = r.now_ns();
            r.record_span(kind, block, step, t0, t1);
            out
        }
    }
}

/// Runs blockwise distillation on device threads following `cfg.plan`
/// (contiguous by default).
///
/// # Errors
///
/// Returns [`ExecError`] for invalid configurations, tensor failures,
/// worker panics, or replica divergence.
pub fn run(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
) -> Result<FuncOutcome, ExecError> {
    run_hooked(teacher, student, data, cfg, &RunHooks::default())
}

/// [`run`] with instrumentation: fault injection, checkpoint capture,
/// and resume-from-checkpoint (see [`RunHooks`]).
///
/// With a fault driver installed, a host loss never hangs: the lost
/// worker returns [`ExecError::RankLost`] and every surviving worker
/// unblocks from its channel waits via the driver's abort flag and
/// surfaces the same structured error.
///
/// # Errors
///
/// Returns [`ExecError`] for invalid configurations, tensor failures,
/// worker panics, replica divergence, rank loss, or checkpoint failures.
pub fn run_hooked(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
    hooks: &RunHooks,
) -> Result<FuncOutcome, ExecError> {
    let b = teacher.num_blocks();
    if student.num_blocks() != b {
        return Err(ExecError::Config(format!(
            "teacher has {b} blocks, student {}",
            student.num_blocks()
        )));
    }
    let plan = match &cfg.plan {
        Some(p) => p.clone(),
        None => {
            StagePlan::contiguous(b, cfg.devices).map_err(|e| ExecError::Config(e.to_string()))?
        }
    };
    plan.validate()
        .map_err(|e| ExecError::Config(e.to_string()))?;
    if plan.num_blocks != b || plan.num_devices != cfg.devices {
        return Err(ExecError::Config(format!(
            "plan is for {}x{} but workload is {b} blocks x {} devices",
            plan.num_blocks, plan.num_devices, cfg.devices
        )));
    }
    for s in &plan.stages {
        if cfg.batch % s.width() != 0 {
            return Err(ExecError::Config(format!(
                "batch {} not divisible by stage width {}",
                cfg.batch,
                s.width()
            )));
        }
    }
    if let Some(ckpt) = &hooks.resume {
        ckpt.validate(b, cfg.batch).map_err(ExecError::Checkpoint)?;
        if ckpt.round > cfg.steps {
            return Err(ExecError::Checkpoint(format!(
                "checkpoint round {} beyond the run's {} steps",
                ckpt.round, cfg.steps
            )));
        }
    }

    // Wire one epoch's channel fabric from the plan. Every run is an
    // epoch of the device-thread registry; membership changes end the
    // epoch, and the next `run_hooked` call (driven by the recovery
    // protocol) wires a fresh fabric over the new member set.
    let roles = registry::wire_roles(&plan, teacher, student);
    // The plan's structural fingerprint stamps every checkpoint this run
    // writes, so a later resume can prove lineage (see
    // `CheckpointSink::latest_matching`).
    let fingerprint = plan.fingerprint();

    let barrier = Arc::new(Barrier::new(cfg.devices));
    let data = Arc::new(data.clone());
    let cfg_arc = Arc::new(cfg.clone());

    // Split the host compute budget across device ranks: each worker
    // installs a pool of its assigned width, so intra-stage kernel
    // parallelism never multiplies with stage concurrency into
    // oversubscription. A width-1 pool is inline (no threads) and pins
    // that device's kernels serial — including against the process
    // default. By the tensor determinism contract the widths change
    // wall-clock only, never a bit of the result.
    let intra_widths = plan.intra_pool_widths(cfg.pool_budget());

    // Checkpoint fabric: member-0 workers stream per-block fragments to
    // this thread, which assembles complete rounds and stores them. The
    // sender clones live in the workers; once they all exit, `recv`
    // disconnects and the assembly loop ends — no polling needed.
    let ckpt_channel = hooks.checkpoint.as_ref().map(|_| unbounded::<CkptFrag>());

    let start_round = hooks.resume.as_ref().map_or(0, |c| c.round);
    let mut devices = DeviceRegistry::open(hooks.trace.clone(), start_round, cfg.steps);
    for role in roles {
        let barrier = Arc::clone(&barrier);
        let data = Arc::clone(&data);
        let cfg = Arc::clone(&cfg_arc);
        let pool = ComputePool::new(intra_widths[role.device]);
        let wh = WorkerHooks {
            driver: hooks.driver.clone(),
            resume: hooks.resume.clone(),
            ckpt: hooks.checkpoint.as_ref().map(|(policy, _)| {
                let (tx, _) = ckpt_channel.as_ref().expect("channel exists");
                (*policy, tx.clone())
            }),
            trace: hooks.trace.clone(),
        };
        let device = role.device;
        devices.spawn(device, pool, move || worker(role, barrier, data, cfg, wh));
    }

    // Assemble checkpoints while the workers run. A round is stored the
    // moment its last block fragment arrives; rounds can complete out of
    // order under decoupled updates, so sinks keep the max round. Blocks
    // reaching round r at different wall-clock times is fine: the
    // per-block objective is schedule-independent, so the assembled state
    // equals the sequential reference after r steps, bit for bit.
    let mut ckpt_err: Option<String> = None;
    if let Some((tx, rx)) = ckpt_channel {
        drop(tx);
        let sink = &hooks.checkpoint.as_ref().expect("checkpoint configured").1;
        let mut pending: HashMap<usize, Vec<BlockState>> = HashMap::new();
        while let Ok((round, state)) = rx.recv() {
            let entry = pending.entry(round).or_default();
            entry.push(state);
            if entry.len() == b {
                let mut blocks = pending.remove(&round).expect("entry exists");
                blocks.sort_by_key(|s| s.block);
                let ckpt = Checkpoint {
                    round,
                    data_cursor: round as u64 * cfg.batch as u64,
                    batch: cfg.batch,
                    lr: cfg.lr,
                    momentum: cfg.momentum,
                    plan_fingerprint: fingerprint.clone(),
                    blocks,
                };
                if ckpt_err.is_none() {
                    if let Err(e) = sink.store(&ckpt) {
                        ckpt_err = Some(e);
                    }
                }
            }
        }
    }

    // Retire the epoch: join everything before deciding the error so a
    // rank loss is reported as the structured `RankLost` rather than
    // whichever secondary hangup a surviving worker observed first; a
    // scripted membership growth likewise outranks secondary errors but
    // yields to a genuine loss at the same boundary.
    let mut by_block: Vec<Option<Vec<Tensor>>> = vec![None; b];
    let mut losses_by_block: Vec<Option<Vec<f32>>> = vec![None; b];
    let mut replicas: Vec<Vec<(usize, Vec<Tensor>)>> = vec![Vec::new(); b];
    let mut errors: Vec<ExecError> = Vec::new();
    for result in devices.retire()? {
        match result {
            Err(e) => errors.push(e),
            Ok(out) => {
                for (block, member, params, losses) in out {
                    replicas[block].push((member, params.clone()));
                    if member == 0 {
                        by_block[block] = Some(params);
                        losses_by_block[block] = Some(losses);
                    }
                }
            }
        }
    }

    if !errors.is_empty() {
        let idx = errors
            .iter()
            .position(|e| matches!(e, ExecError::RankLost { .. }))
            .or_else(|| {
                errors
                    .iter()
                    .position(|e| matches!(e, ExecError::MembershipGrow { .. }))
            })
            .unwrap_or(0);
        return Err(errors.swap_remove(idx));
    }
    if let Some(e) = ckpt_err {
        return Err(ExecError::Checkpoint(e));
    }

    // Replica parity: every member of a widened stage must hold identical
    // parameters after averaged updates.
    for (block, reps) in replicas.iter().enumerate() {
        let Some((_, reference)) = reps.iter().find(|(m, _)| *m == 0) else {
            continue;
        };
        for (member, params) in reps {
            if *member == 0 {
                continue;
            }
            for (a, c) in reference.iter().zip(params.iter()) {
                let diff = a.max_abs_diff(c)?;
                if diff > 1e-6 {
                    return Err(ExecError::ReplicaDivergence { block, diff });
                }
            }
        }
    }

    let params: Vec<Vec<Tensor>> = by_block
        .into_iter()
        .map(|p| p.expect("every block owned by exactly one stage"))
        .collect();
    let losses = losses_by_block
        .into_iter()
        .map(|l| l.expect("every block has losses"))
        .collect();
    Ok(FuncOutcome { params, losses })
}

fn worker(
    mut role: DeviceRole,
    barrier: Arc<Barrier>,
    data: Arc<SyntheticImageDataset>,
    cfg: Arc<FuncConfig>,
    hooks: WorkerHooks,
) -> Result<WorkerOut, ExecError> {
    let num_blocks = role.teacher_blocks.len();
    let mut optims: Vec<Sgd> = (0..num_blocks)
        .map(|_| Sgd::new(cfg.lr, cfg.momentum, 0.0))
        .collect();
    let mut losses: Vec<Vec<f32>> = vec![Vec::with_capacity(cfg.steps); num_blocks];
    // Resume: reinstall the checkpointed parameters, velocities, and loss
    // history, then continue from the checkpoint round. Every replica
    // restores the same state (replicas are bitwise identical after
    // averaged updates, so the captured state is theirs too).
    let start = hooks.resume.as_ref().map_or(0, |c| c.round);
    if let Some(ckpt) = &hooks.resume {
        for (i, s) in role.student_blocks.iter_mut().enumerate() {
            let block = role.first_block + i;
            let state = ckpt
                .block(block)
                .ok_or_else(|| ExecError::Checkpoint(format!("missing block {block}")))?;
            checkpoint::restore_block(s, &mut optims[i], state).map_err(ExecError::Checkpoint)?;
            losses[i] = state.losses.clone();
        }
    }
    let driver = hooks.driver.as_deref();
    // Trace plane: one ring recorder per worker thread, flushed into the
    // collector when this function returns (recorder drop). With tracing
    // off (`None`) every instrumentation point below is a single branch.
    let mut rec = hooks
        .trace
        .as_ref()
        .map(|t| t.recorder(role.device, role.stage_index, role.member));
    // Out-of-order relay buffering: with decoupled updates a fast upstream
    // member may deliver step s+1 before a slow one delivers step s. Each
    // sender's channel order is its step order, so one FIFO per upstream
    // member restores alignment.
    let mut shard_queues: Vec<std::collections::VecDeque<SharedTensor>> =
        vec![std::collections::VecDeque::new(); role.prev_width];

    for step in start..cfg.steps {
        // (0) Fault gate: serve this rank's slowdown pause, stop for a
        // membership growth, or die. A scripted join stops *every*
        // incumbent at the same round boundary (the driver gates growth
        // before the loss check, so all ranks agree on the boundary);
        // channel sends for earlier steps have already balanced, so the
        // epoch drains cleanly without an abort flag.
        if let Some(d) = driver {
            match d.before_step(role.device, step) {
                FaultAction::Continue => {}
                FaultAction::Grow => return Err(ExecError::MembershipGrow { step }),
                FaultAction::Lost => {
                    return Err(ExecError::RankLost {
                        rank: role.device,
                        step,
                    })
                }
            }
        }

        // (1) Input: load data (stage 0) or receive the relayed activation.
        let input: SharedTensor = spanned(&mut rec, SpanKind::Load, None, step as u32, || {
            if role.stage_index == 0 {
                if let Some(d) = driver {
                    d.before_load(step);
                }
                // Sample generation is per-index deterministic, so each member
                // materializes exactly its own shard — identical values to
                // splitting a full batch (widths divide the batch), without
                // generating the other members' rows only to discard them.
                let shard = cfg.batch / role.width;
                let start = step as u64 * cfg.batch as u64 + (role.member * shard) as u64;
                let (x, _labels) = data.batch(start, shard);
                Ok(SharedTensor::new(x))
            } else {
                let rx = role.input_rx.as_ref().expect("non-first stage receives");
                let prev_shards = receive_full_batch(rx, &mut shard_queues, driver)?;
                reshard(prev_shards, role.width, role.member)
            }
        })?;

        // (2) Teacher blocks, collecting every boundary (lines 10–11).
        // Each boundary is wrapped in a shared handle once; caching it and
        // relaying it downstream are refcount bumps, never buffer copies.
        let mut boundaries: Vec<SharedTensor> = Vec::with_capacity(num_blocks);
        let mut cur = input.clone();
        for (bi, t) in role.teacher_blocks.iter_mut().enumerate() {
            let block = Some((role.first_block + bi) as u16);
            cur = spanned(&mut rec, SpanKind::Teacher, block, step as u32, || {
                Ok::<_, ExecError>(SharedTensor::new(t.forward(&cur, Mode::Eval)?))
            })?;
            boundaries.push(cur.clone());
        }
        // Relay the final boundary to every member of the next stage. The
        // span carries the logical relay volume (f32 payload × receivers);
        // the send itself is a refcount bump, so the duration measures
        // channel handoff, not a copy.
        if !role.output_tx.is_empty() {
            let t0 = rec.as_mut().map(|r| r.now_ns());
            for tx in &role.output_tx {
                tx.send((role.member, cur.clone()))
                    .map_err(|_| hangup(driver, "next stage"))?;
            }
            if let (Some(r), Some(t0)) = (rec.as_mut(), t0) {
                let t1 = r.now_ns();
                let bytes = (cur.numel() * 4 * role.output_tx.len()) as u64;
                r.record(Span {
                    kind: SpanKind::Relay,
                    block: None,
                    step: step as u32,
                    t0_ns: t0,
                    t1_ns: t1,
                    bytes,
                });
                if r.full() {
                    r.metrics().counter("relay.bytes").add(bytes);
                    r.metrics().counter("relay.sends").inc();
                }
            }
        }

        // (3) Students forward/backward (lines 12–13).
        let mut step_losses = Vec::with_capacity(num_blocks);
        for (i, s) in role.student_blocks.iter_mut().enumerate() {
            let block = Some((role.first_block + i) as u16);
            let loss = spanned(&mut rec, SpanKind::Student, block, step as u32, || {
                let s_in = if i == 0 { &input } else { &boundaries[i - 1] };
                let s_out = s.forward(s_in, Mode::Train)?;
                let loss = mse_loss(&s_out, &boundaries[i])?;
                s.backward(&loss.grad)?;
                Ok::<_, ExecError>(loss.loss)
            })?;
            step_losses.push(loss);
        }

        // (4) Gradient sharing within a widened stage (line 14).
        if role.width > 1 {
            spanned(&mut rec, SpanKind::GradShare, None, step as u32, || {
                share_gradients(&mut role, &mut step_losses, driver)
            })?;
        }

        // (5) Barrier unless decoupled (line 15).
        if !cfg.decoupled_updates {
            spanned(&mut rec, SpanKind::Barrier, None, step as u32, || {
                barrier.wait();
            });
        }

        // (6) Updates (line 16).
        for (i, s) in role.student_blocks.iter_mut().enumerate() {
            let block = Some((role.first_block + i) as u16);
            spanned(&mut rec, SpanKind::Update, block, step as u32, || {
                optims[i].step(s)?;
                pipebd_nn::zero_grad(s);
                Ok::<_, ExecError>(())
            })?;
            losses[i].push(step_losses[i]);
        }

        // (7) Checkpoint capture at round boundaries. Member 0 streams
        // its blocks' state to the assembly loop; replicas hold bitwise
        // identical state, so one capture per block suffices. A pending
        // membership growth forces a capture at exactly the grow
        // boundary (regardless of the policy interval), so the next
        // epoch resumes from the joined round and the new rank never
        // recomputes pre-join steps.
        if role.member == 0 {
            if let Some((policy, tx)) = &hooks.ckpt {
                let done = step + 1;
                let grow_boundary =
                    driver.and_then(FaultDriver::grow_step) == Some(done) && done < cfg.steps;
                if policy.due(done, cfg.steps) || grow_boundary {
                    spanned(&mut rec, SpanKind::Checkpoint, None, step as u32, || {
                        for (i, s) in role.student_blocks.iter_mut().enumerate() {
                            let state = checkpoint::capture_block(
                                s,
                                role.first_block + i,
                                &optims[i],
                                &losses[i],
                            );
                            tx.send((done, state)).map_err(|_| {
                                ExecError::Checkpoint("assembly loop hung up".into())
                            })?;
                        }
                        Ok::<_, ExecError>(())
                    })?;
                }
            }
        }
    }

    // With decoupled updates some threads may finish earlier; that is the
    // point. Return parameters per owned block.
    let out = role
        .student_blocks
        .iter_mut()
        .enumerate()
        .map(|(i, s)| {
            (
                role.first_block + i,
                role.member,
                pipebd_nn::snapshot_params(s),
                losses[i].clone(),
            )
        })
        .collect();
    let _ = role.device;
    Ok(out)
}

/// Receives from `rx`, unblocking on the fault driver's abort flag.
///
/// The compat channel has no `recv_timeout`, so cancellation is a
/// `try_recv` poll loop: when a rank dies, every peer blocked on a
/// channel that will never deliver observes the abort flag within one
/// poll interval and surfaces the structured loss error instead of
/// hanging forever.
fn recv_or_abort<T>(
    rx: &Receiver<T>,
    driver: Option<&FaultDriver>,
    what: &str,
) -> Result<T, ExecError> {
    let Some(d) = driver else {
        return rx
            .recv()
            .map_err(|_| ExecError::Config(format!("{what} hung up")));
    };
    loop {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(TryRecvError::Disconnected) => return Err(hangup(driver, what)),
            Err(TryRecvError::Empty) => {
                if d.aborted() {
                    return Err(d.loss_error());
                }
                std::thread::sleep(ABORT_POLL);
            }
        }
    }
}

/// The error for a dropped channel peer: a recorded rank loss if the
/// fault driver saw one (the hangup is secondary damage), else a plain
/// config error.
fn hangup(driver: Option<&FaultDriver>, what: &str) -> ExecError {
    if let Some(d) = driver {
        if d.aborted() {
            return d.loss_error();
        }
    }
    ExecError::Config(format!("{what} hung up"))
}

/// Receives until every upstream member has a queued shard for the current
/// step, then pops one shard per member, ordered by member index.
fn receive_full_batch(
    rx: &Receiver<Shard>,
    queues: &mut [std::collections::VecDeque<SharedTensor>],
    driver: Option<&FaultDriver>,
) -> Result<Vec<SharedTensor>, ExecError> {
    while queues.iter().any(std::collections::VecDeque::is_empty) {
        let (member, shard) = recv_or_abort(rx, driver, "previous stage")?;
        queues
            .get_mut(member)
            .ok_or_else(|| ExecError::Config(format!("unknown upstream member {member}")))?
            .push_back(shard);
    }
    Ok(queues
        .iter_mut()
        .map(|q| q.pop_front().expect("queue nonempty"))
        .collect())
}

/// Maps the previous stage's shards onto this member's input shard.
///
/// In the steady-state relay case — equal stage widths, including the
/// common 1 → 1 pipeline hop — the member's received handle is forwarded
/// untouched: zero copies. (Widths all divide the batch, so upstream
/// shards are equal-sized and concatenating then re-splitting would
/// reproduce them exactly.) Only genuine width transitions re-shard the
/// batch, paying one concatenation and/or one split; the values are
/// identical to the always-cat-then-split formulation, so bitwise parity
/// with the reference is unaffected.
fn reshard(
    mut prev: Vec<SharedTensor>,
    width: usize,
    member: usize,
) -> Result<SharedTensor, ExecError> {
    if prev.len() == width {
        return Ok(prev.swap_remove(member));
    }
    if prev.len() == 1 {
        // Narrow-to-wide: split the single upstream shard directly.
        let mut shards = prev[0].split_batch(width)?;
        return Ok(SharedTensor::new(shards.swap_remove(member)));
    }
    // Reassemble the full batch in member order, then take our shard.
    let refs: Vec<&Tensor> = prev.iter().map(SharedTensor::as_ref).collect();
    let full = Tensor::cat_batch_refs(&refs)?;
    if width == 1 {
        return Ok(SharedTensor::new(full));
    }
    let mut shards = full.split_batch(width)?;
    Ok(SharedTensor::new(shards.swap_remove(member)))
}

fn share_gradients(
    role: &mut DeviceRole,
    step_losses: &mut [f32],
    driver: Option<&FaultDriver>,
) -> Result<(), ExecError> {
    // Move the local gradients out of the params: they are about to be
    // replaced by the averaged bundle, so the gather can transfer
    // ownership through the channel instead of copying buffers. The next
    // backward pass re-seeds each accumulator by moving its freshly
    // computed gradient in (`Param::accumulate_grad`).
    let mut local: Vec<Vec<Tensor>> = Vec::with_capacity(role.student_blocks.len());
    for s in &mut role.student_blocks {
        let mut grads = Vec::new();
        s.visit_params(&mut |p| grads.push(p.take_grad()));
        local.push(grads);
    }

    let (avg, avg_losses): GradBundle = if role.member == 0 {
        // Leader: gather, average in member order, broadcast.
        let rx = role
            .grad_from_members
            .as_ref()
            .expect("leader has a gather channel");
        let mut contributions: Vec<Option<(Vec<Vec<Tensor>>, Vec<f32>)>> = vec![None; role.width];
        contributions[0] = Some((local, step_losses.to_vec()));
        for _ in 1..role.width {
            let (member, grads, l) = recv_or_abort(rx, driver, "gradient gather")?;
            contributions[member] = Some((grads, l));
        }
        // Fold the average into the first contribution's buffers — the
        // accumulator reuses the moved-in gradient storage, allocating
        // nothing.
        let mut iter = contributions.into_iter().map(|c| c.expect("all members"));
        let (mut acc, mut loss_acc) = iter.next().expect("width >= 1");
        for (grads, l) in iter {
            for (a, g) in acc.iter_mut().zip(grads.iter()) {
                for (ta, tg) in a.iter_mut().zip(g.iter()) {
                    ta.add_assign(tg)?;
                }
            }
            for (la, lb) in loss_acc.iter_mut().zip(l.iter()) {
                *la += lb;
            }
        }
        let inv = 1.0 / role.width as f32;
        for block in &mut acc {
            for g in block {
                g.scale(inv);
            }
        }
        for l in &mut loss_acc {
            *l *= inv;
        }
        // Publish the averaged gradients behind shared handles; each
        // broadcast send clones handles, not buffers.
        let bundle: GradBundle = (
            acc.into_iter()
                .map(|block| block.into_iter().map(SharedTensor::new).collect())
                .collect(),
            loss_acc,
        );
        for tx in &role.grad_broadcast_tx {
            tx.send(bundle.clone())
                .map_err(|_| hangup(driver, "gradient broadcast"))?;
        }
        let rx = role
            .grad_broadcast_rx
            .as_ref()
            .expect("leader also receives its broadcast");
        recv_or_abort(rx, driver, "broadcast loopback")?
    } else {
        let tx = role
            .grad_to_leader
            .as_ref()
            .expect("members have a gather channel");
        tx.send((role.member, local, step_losses.to_vec()))
            .map_err(|_| hangup(driver, "gradient gather"))?;
        let rx = role
            .grad_broadcast_rx
            .as_ref()
            .expect("members receive the broadcast");
        recv_or_abort(rx, driver, "gradient broadcast")?
    };

    // Install the averaged gradients as shared handles — a refcount bump
    // per param, not a copy. Every member of the stage points its params
    // at the same averaged buffers; the optimizer consumes them in place
    // (`Sgd::step` reads `Param::grad_view` without mutating), so the
    // sharing path is now copy-free end to end.
    for (s, grads) in role.student_blocks.iter_mut().zip(avg.iter()) {
        let mut idx = 0usize;
        s.visit_params(&mut |p| {
            p.set_shared_grad(grads[idx].clone());
            idx += 1;
        });
    }
    step_losses.copy_from_slice(&avg_losses);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::reference;
    use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
    use pipebd_tensor::Rng64;

    fn setup(blocks: usize) -> (BlockNet, BlockNet, SyntheticImageDataset) {
        let cfg = MiniConfig {
            blocks,
            channels: 6,
            batch_norm: false,
        };
        let mut rng = Rng64::seed_from_u64(42);
        let teacher = mini_teacher(cfg, &mut rng);
        let student = mini_student_dsconv(cfg, &mut rng);
        let data = SyntheticImageDataset::mini(64, 8, 4, 9);
        (teacher, student, data)
    }

    #[test]
    fn tr_matches_reference_exactly() {
        let (teacher, student, data) = setup(4);
        let cfg = FuncConfig {
            devices: 2,
            steps: 6,
            batch: 8,
            decoupled_updates: false,
            ..FuncConfig::default()
        };
        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        let threaded = run(&teacher, &student, &data, &cfg).unwrap();
        assert_eq!(
            threaded.max_param_diff(&golden),
            0.0,
            "teacher relaying must be bitwise identical to the definition"
        );
    }

    #[test]
    fn dpu_matches_barrier_exactly() {
        // The paper's key correctness argument: removing the barrier
        // cannot change any computed value.
        let (teacher, student, data) = setup(4);
        let barrier_cfg = FuncConfig {
            devices: 4,
            steps: 6,
            batch: 8,
            decoupled_updates: false,
            ..FuncConfig::default()
        };
        let dpu_cfg = FuncConfig {
            decoupled_updates: true,
            ..barrier_cfg.clone()
        };
        let with_barrier = run(&teacher, &student, &data, &barrier_cfg).unwrap();
        let without = run(&teacher, &student, &data, &dpu_cfg).unwrap();
        assert_eq!(without.max_param_diff(&with_barrier), 0.0);
    }

    #[test]
    fn hybrid_plan_close_to_reference() {
        // Batch splitting changes float summation order (shard-mean
        // averaging), so parity is near-exact rather than bitwise.
        let (teacher, student, data) = setup(4);
        let plan = StagePlan::from_widths(&[(1, 2), (3, 2)], 4, 4).unwrap();
        let cfg = FuncConfig {
            devices: 4,
            steps: 6,
            batch: 8,
            plan: Some(plan),
            decoupled_updates: true,
            ..FuncConfig::default()
        };
        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        let hybrid = run(&teacher, &student, &data, &cfg).unwrap();
        let diff = hybrid.max_param_diff(&golden);
        assert!(diff < 1e-4, "hybrid diverged from reference by {diff}");
    }

    #[test]
    fn internal_relaying_plan_close_to_reference() {
        let (teacher, student, data) = setup(3);
        let plan = StagePlan::internal_relaying(3, 4);
        let cfg = FuncConfig {
            devices: 4,
            steps: 5,
            batch: 8,
            plan: Some(plan),
            decoupled_updates: true,
            ..FuncConfig::default()
        };
        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        let ir = run(&teacher, &student, &data, &cfg).unwrap();
        let diff = ir.max_param_diff(&golden);
        assert!(diff < 1e-4, "IR diverged from reference by {diff}");
    }

    #[test]
    fn rejects_indivisible_batch() {
        let (teacher, student, data) = setup(3);
        let plan = StagePlan::internal_relaying(3, 4);
        let cfg = FuncConfig {
            devices: 4,
            steps: 1,
            batch: 6, // not divisible by width 4
            plan: Some(plan),
            ..FuncConfig::default()
        };
        assert!(matches!(
            run(&teacher, &student, &data, &cfg),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn rejects_mismatched_plan() {
        let (teacher, student, data) = setup(3);
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let cfg = FuncConfig {
            devices: 4,
            plan: Some(plan),
            ..FuncConfig::default()
        };
        assert!(matches!(
            run(&teacher, &student, &data, &cfg),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn losses_decrease_under_threaded_training() {
        let (teacher, student, data) = setup(4);
        let cfg = FuncConfig {
            devices: 4,
            steps: 30,
            batch: 8,
            decoupled_updates: true,
            ..FuncConfig::default()
        };
        let out = run(&teacher, &student, &data, &cfg).unwrap();
        for (i, l) in out.losses.iter().enumerate() {
            assert!(
                l.last().unwrap() < l.first().unwrap(),
                "block {i} loss did not decrease"
            );
        }
    }

    #[test]
    fn reshard_steady_state_forwards_the_same_allocation() {
        // The tentpole invariant: a width-1 → width-1 hop must not copy.
        let t = SharedTensor::new(Tensor::ones(&[4, 2]));
        let out = reshard(vec![t.clone()], 1, 0).unwrap();
        assert!(out.ptr_eq(&t), "steady-state relay must share, not copy");
    }

    #[test]
    fn reshard_equal_widths_forward_each_member_shard() {
        // Width-N → width-N hops are also steady state: member i's input
        // is exactly upstream member i's shard, shared by handle.
        let a = SharedTensor::new(Tensor::ones(&[2, 3]));
        let b = SharedTensor::new(Tensor::full(&[2, 3], 2.0));
        let out = reshard(vec![a.clone(), b.clone()], 2, 1).unwrap();
        assert!(out.ptr_eq(&b), "equal-width relay must share, not re-shard");
    }

    #[test]
    fn reshard_width_transitions_match_cat_then_split() {
        let a = Tensor::from_vec((0..8).map(|x| x as f32).collect(), &[2, 4]).unwrap();
        let b = Tensor::from_vec((8..16).map(|x| x as f32).collect(), &[2, 4]).unwrap();
        let full = Tensor::cat_batch(&[a.clone(), b.clone()]).unwrap();
        // Wide-to-narrow: 2 upstream members into width 1.
        let merged = reshard(
            vec![SharedTensor::new(a.clone()), SharedTensor::new(b.clone())],
            1,
            0,
        )
        .unwrap();
        assert_eq!(*merged, full);
        // Narrow-to-wide: 1 upstream member into width 2, member 1.
        let expect = full.split_batch(2).unwrap();
        let shard = reshard(vec![SharedTensor::new(full.clone())], 2, 1).unwrap();
        assert_eq!(*shard, expect[1]);
    }
}
