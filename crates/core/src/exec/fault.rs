//! Executor-level fault injection: the deterministic [`FaultDriver`].
//!
//! The simulator's `FaultScript`s perturb *when* work runs; the driver
//! interprets the same scripts against the threaded executor's real
//! worker threads:
//!
//! * **Slowdown windows** pause the covered rank's thread for a small
//!   wall-clock interval each step — observable in timing, invisible in
//!   results (the tensor determinism contract makes scheduling
//!   result-free).
//! * **Host loss** cancels the rank: the step check returns
//!   [`FaultAction::Lost`], the worker returns a structured
//!   [`ExecError::RankLost`], and a process-wide abort flag flips so
//!   every surviving worker unblocks from its channel waits instead of
//!   hanging on a peer that will never send.
//! * **Loader slowdown** pauses stage-0 data loading the same way.
//!
//! Host *join* events are rejected at construction: the executor spawns a
//! fixed thread set, so an elastic join is unrealizable (the simulator
//! still models joins for timing). Non-decoupled configs are rejected
//! too — a `Barrier` over a thread that will be cancelled is a deadlock
//! by construction, and the recovery plane must never hang.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pipebd_sim::{FaultEvent, FaultScript};

use super::ExecError;

/// Wall-clock pause per unit of excess slowdown factor. Kept small: the
/// pause must be observable enough to reorder decoupled workers without
/// slowing the test matrix down.
const PAUSE_PER_FACTOR: Duration = Duration::from_micros(300);

/// How long a blocked worker sleeps between abort-flag polls. The compat
/// channel has no `recv_timeout`, so cancellation is poll-based.
pub(crate) const ABORT_POLL: Duration = Duration::from_micros(200);

/// What a worker must do at the top of a training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed (any slowdown pause has already been served).
    Continue,
    /// The rank is lost from this step on: cancel in-flight work and
    /// return [`ExecError::RankLost`].
    Lost,
}

/// Deterministic interpreter of a [`FaultScript`] over executor threads.
///
/// One driver instance is shared (via `Arc`) by every worker of a run;
/// it is the single source of truth for "has any rank died yet".
#[derive(Debug)]
pub struct FaultDriver {
    script: FaultScript,
    abort: AtomicBool,
    /// Earliest observed loss as `(rank, step)`.
    lost: Mutex<Option<(usize, usize)>>,
}

impl FaultDriver {
    /// Builds a driver for `script` over `devices` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Config`] when the script fails
    /// [`FaultScript::validate`], contains a host join (the executor's
    /// thread set is fixed), or `decoupled` is false (a barrier over a
    /// cancellable thread deadlocks).
    pub fn new(script: &FaultScript, devices: usize, decoupled: bool) -> Result<Self, ExecError> {
        script
            .validate(devices)
            .map_err(|v| ExecError::Config(format!("fault script rejected: {v}")))?;
        if let Some(FaultEvent::HostJoin { rank, at_step }) = script
            .events
            .iter()
            .find(|e| matches!(e, FaultEvent::HostJoin { .. }))
        {
            return Err(ExecError::Config(format!(
                "host join (rank {rank} at step {at_step}) is unrealizable: \
                 the executor spawns a fixed thread set"
            )));
        }
        if !decoupled && !script.is_healthy() {
            return Err(ExecError::Config(
                "fault injection requires decoupled updates: a barrier over a \
                 cancellable thread deadlocks"
                    .into(),
            ));
        }
        Ok(FaultDriver {
            script: script.clone(),
            abort: AtomicBool::new(false),
            lost: Mutex::new(None),
        })
    }

    /// A driver with no perturbations (useful as a test control).
    pub fn healthy() -> Self {
        FaultDriver {
            script: FaultScript::healthy(),
            abort: AtomicBool::new(false),
            lost: Mutex::new(None),
        }
    }

    /// The script being interpreted.
    pub fn script(&self) -> &FaultScript {
        &self.script
    }

    /// Step gate for GPU `rank` entering training step `step`: serves the
    /// rank's slowdown pause (wall-clock only) and reports losses.
    pub fn before_step(&self, rank: usize, step: usize) -> FaultAction {
        let step32 = step.min(u32::MAX as usize) as u32;
        if !self.script.alive(rank, step32) {
            self.record_loss(rank, step);
            return FaultAction::Lost;
        }
        let factor = self.script.factor(rank, step32);
        if factor > 1.0 {
            std::thread::sleep(PAUSE_PER_FACTOR.mul_f64(factor - 1.0));
        }
        FaultAction::Continue
    }

    /// Loader gate for stage-0 members loading step `step`'s batch.
    pub fn before_load(&self, step: usize) {
        let factor = self
            .script
            .loader_factor(step.min(u32::MAX as usize) as u32);
        if factor > 1.0 {
            std::thread::sleep(PAUSE_PER_FACTOR.mul_f64(factor - 1.0));
        }
    }

    /// Whether any rank has been lost (workers poll this in channel
    /// waits to unblock instead of hanging).
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The earliest recorded loss, as `(rank, step)`.
    pub fn first_loss(&self) -> Option<(usize, usize)> {
        *self.lost.lock().expect("fault driver lock")
    }

    /// The structured error every worker of an aborted run surfaces.
    pub(crate) fn loss_error(&self) -> ExecError {
        let (rank, step) = self.first_loss().unwrap_or((usize::MAX, 0));
        ExecError::RankLost { rank, step }
    }

    fn record_loss(&self, rank: usize, step: usize) {
        let mut lost = self.lost.lock().expect("fault driver lock");
        if !matches!(*lost, Some((_, s)) if step >= s) {
            *lost = Some((rank, step));
        }
        drop(lost);
        self.abort.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_script(rank: usize, at_step: u32) -> FaultScript {
        FaultScript {
            events: vec![FaultEvent::HostLoss { rank, at_step }],
        }
    }

    #[test]
    fn rejects_joins_and_coupled_updates() {
        let join = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 1,
                at_step: 3,
            }],
        };
        assert!(matches!(
            FaultDriver::new(&join, 2, true),
            Err(ExecError::Config(_))
        ));
        assert!(matches!(
            FaultDriver::new(&loss_script(0, 2), 2, false),
            Err(ExecError::Config(_))
        ));
        // A healthy script is fine even with a barrier.
        FaultDriver::new(&FaultScript::healthy(), 2, false).expect("healthy + barrier ok");
    }

    #[test]
    fn rejects_invalid_scripts() {
        let overlap = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 0,
                    end_step: 5,
                },
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 3.0,
                    start_step: 3,
                    end_step: 8,
                },
            ],
        };
        assert!(matches!(
            FaultDriver::new(&overlap, 2, true),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn loss_fires_exactly_at_its_step_and_sets_abort() {
        let d = FaultDriver::new(&loss_script(1, 4), 2, true).unwrap();
        assert_eq!(d.before_step(1, 3), FaultAction::Continue);
        assert!(!d.aborted());
        assert_eq!(d.before_step(1, 4), FaultAction::Lost);
        assert!(d.aborted());
        assert_eq!(d.first_loss(), Some((1, 4)));
        // The surviving rank keeps stepping.
        assert_eq!(d.before_step(0, 4), FaultAction::Continue);
        // An earlier observation wins the record.
        d.before_step(1, 4);
        assert_eq!(d.first_loss(), Some((1, 4)));
    }

    #[test]
    fn healthy_driver_never_aborts() {
        let d = FaultDriver::healthy();
        for step in 0..16 {
            assert_eq!(d.before_step(0, step), FaultAction::Continue);
            d.before_load(step);
        }
        assert!(!d.aborted());
        assert!(d.first_loss().is_none());
    }
}
