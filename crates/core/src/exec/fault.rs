//! Executor-level fault injection: the deterministic [`FaultDriver`].
//!
//! The simulator's `FaultScript`s perturb *when* work runs; the driver
//! interprets the same scripts against the threaded executor's real
//! worker threads:
//!
//! * **Slowdown windows** pause the covered rank's thread for a small
//!   wall-clock interval each step — observable in timing, invisible in
//!   results (the tensor determinism contract makes scheduling
//!   result-free).
//! * **Host loss** cancels the rank: the step check returns
//!   [`FaultAction::Lost`], the worker returns a structured
//!   [`ExecError::RankLost`], and a process-wide abort flag flips so
//!   every surviving worker unblocks from its channel waits instead of
//!   hanging on a peer that will never send.
//! * **Loader slowdown** pauses stage-0 data loading the same way.
//!
//! * **Host join** events for ranks *beyond* the current worker set are
//!   accepted as pending growth: the step gate returns
//!   [`FaultAction::Grow`] at the earliest join step, every incumbent
//!   worker stops cleanly at that round boundary with
//!   [`ExecError::MembershipGrow`], and the recovery plane re-wires the
//!   channel graph over the enlarged member set (see
//!   `exec::recovery`). A join targeting a rank *inside* the worker set
//!   is still rejected at construction — that member already exists, so
//!   the script must be projected (`FaultScript::for_survivors`) before
//!   a driver is built over it.
//!
//! Non-decoupled configs with a non-healthy script are rejected too — a
//! `Barrier` over a thread that will be cancelled is a deadlock by
//! construction, and the recovery plane must never hang.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pipebd_sim::{FaultEvent, FaultScript};

use super::ExecError;

/// Wall-clock pause per unit of excess slowdown factor. Kept small: the
/// pause must be observable enough to reorder decoupled workers without
/// slowing the test matrix down.
const PAUSE_PER_FACTOR: Duration = Duration::from_micros(300);

/// How long a blocked worker sleeps between abort-flag polls. The compat
/// channel has no `recv_timeout`, so cancellation is poll-based.
pub(crate) const ABORT_POLL: Duration = Duration::from_micros(200);

/// What a worker must do at the top of a training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Proceed (any slowdown pause has already been served).
    Continue,
    /// The rank is lost from this step on: cancel in-flight work and
    /// return [`ExecError::RankLost`].
    Lost,
    /// A scripted join came due: the epoch ends at this round boundary so
    /// the registry can re-wire the channel graph over the enlarged
    /// member set. Every incumbent stops here and returns
    /// [`ExecError::MembershipGrow`].
    Grow,
}

/// Deterministic interpreter of a [`FaultScript`] over executor threads.
///
/// One driver instance is shared (via `Arc`) by every worker of a run;
/// it is the single source of truth for "has any rank died yet".
#[derive(Debug)]
pub struct FaultDriver {
    script: FaultScript,
    abort: AtomicBool,
    /// Earliest observed loss as `(rank, step)`.
    lost: Mutex<Option<(usize, usize)>>,
    /// Earliest pending-join step: the round at which the current epoch
    /// must stop so the member set can grow. `None` when no growth is
    /// scripted.
    grow: Option<usize>,
}

impl FaultDriver {
    /// Builds a driver for `script` over `devices` ranks. Join events for
    /// ranks `>= devices` are accepted as pending growth (they must
    /// extend the worker set contiguously — the shape
    /// `FaultScript::for_survivors` produces); the script is validated
    /// against the grown rank space.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Config`] when the script fails
    /// [`FaultScript::validate`], contains a join for a rank already in
    /// the worker set (project the script first), scatters its join
    /// ranks non-contiguously, or `decoupled` is false with a non-healthy
    /// script (a barrier over a cancellable thread deadlocks).
    pub fn new(script: &FaultScript, devices: usize, decoupled: bool) -> Result<Self, ExecError> {
        if let Some(FaultEvent::HostJoin { rank, at_step }) = script
            .events
            .iter()
            .find(|e| matches!(e, FaultEvent::HostJoin { rank, .. } if *rank < devices))
        {
            return Err(ExecError::Config(format!(
                "host join (rank {rank} at step {at_step}) targets a rank already \
                 in the {devices}-rank worker set: project the script with \
                 for_survivors after membership changes"
            )));
        }
        let pending = script.pending_joins(devices);
        let total = devices + pending.len();
        let mut join_ranks: Vec<usize> = pending.iter().map(|&(r, _)| r).collect();
        join_ranks.sort_unstable();
        if join_ranks != (devices..total).collect::<Vec<_>>() {
            return Err(ExecError::Config(format!(
                "pending join ranks {join_ranks:?} must extend the {devices}-rank \
                 worker set contiguously (project the script with for_survivors)"
            )));
        }
        script
            .validate(total)
            .map_err(|v| ExecError::Config(format!("fault script rejected: {v}")))?;
        if !decoupled && !script.is_healthy() {
            return Err(ExecError::Config(
                "fault injection requires decoupled updates: a barrier over a \
                 cancellable thread deadlocks"
                    .into(),
            ));
        }
        let grow = pending.iter().map(|&(_, s)| s as usize).min();
        Ok(FaultDriver {
            script: script.clone(),
            abort: AtomicBool::new(false),
            lost: Mutex::new(None),
            grow,
        })
    }

    /// A driver with no perturbations (useful as a test control).
    pub fn healthy() -> Self {
        FaultDriver {
            script: FaultScript::healthy(),
            abort: AtomicBool::new(false),
            lost: Mutex::new(None),
            grow: None,
        }
    }

    /// The script being interpreted.
    pub fn script(&self) -> &FaultScript {
        &self.script
    }

    /// The round at which the current epoch must stop for the member set
    /// to grow (the earliest pending-join step), if any.
    pub fn grow_step(&self) -> Option<usize> {
        self.grow
    }

    /// Step gate for GPU `rank` entering training step `step`: serves the
    /// rank's slowdown pause (wall-clock only) and reports growth and
    /// losses. Growth wins over a same-step loss — the epoch ends at the
    /// boundary and the loss fires under the re-wired member set.
    pub fn before_step(&self, rank: usize, step: usize) -> FaultAction {
        if matches!(self.grow, Some(g) if step >= g) {
            return FaultAction::Grow;
        }
        let step32 = step.min(u32::MAX as usize) as u32;
        if !self.script.alive(rank, step32) {
            self.record_loss(rank, step);
            return FaultAction::Lost;
        }
        let factor = self.script.factor(rank, step32);
        if factor > 1.0 {
            std::thread::sleep(PAUSE_PER_FACTOR.mul_f64(factor - 1.0));
        }
        FaultAction::Continue
    }

    /// Loader gate for stage-0 members loading step `step`'s batch.
    pub fn before_load(&self, step: usize) {
        let factor = self
            .script
            .loader_factor(step.min(u32::MAX as usize) as u32);
        if factor > 1.0 {
            std::thread::sleep(PAUSE_PER_FACTOR.mul_f64(factor - 1.0));
        }
    }

    /// Whether any rank has been lost (workers poll this in channel
    /// waits to unblock instead of hanging).
    pub fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The earliest recorded loss, as `(rank, step)`.
    pub fn first_loss(&self) -> Option<(usize, usize)> {
        *self.lost.lock().expect("fault driver lock")
    }

    /// The structured error every worker of an aborted run surfaces.
    pub(crate) fn loss_error(&self) -> ExecError {
        let (rank, step) = self.first_loss().unwrap_or((usize::MAX, 0));
        ExecError::RankLost { rank, step }
    }

    fn record_loss(&self, rank: usize, step: usize) {
        let mut lost = self.lost.lock().expect("fault driver lock");
        if !matches!(*lost, Some((_, s)) if step >= s) {
            *lost = Some((rank, step));
        }
        drop(lost);
        self.abort.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_script(rank: usize, at_step: u32) -> FaultScript {
        FaultScript {
            events: vec![FaultEvent::HostLoss { rank, at_step }],
        }
    }

    #[test]
    fn rejects_in_set_joins_and_coupled_updates() {
        // A join for a rank already inside the worker set is a script
        // that should have been projected first.
        let join = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 1,
                at_step: 3,
            }],
        };
        match FaultDriver::new(&join, 2, true) {
            Err(ExecError::Config(m)) => assert!(m.contains("already"), "got: {m}"),
            other => panic!("expected Config rejection, got {other:?}"),
        }
        assert!(matches!(
            FaultDriver::new(&loss_script(0, 2), 2, false),
            Err(ExecError::Config(_))
        ));
        // A healthy script is fine even with a barrier.
        FaultDriver::new(&FaultScript::healthy(), 2, false).expect("healthy + barrier ok");
    }

    #[test]
    fn future_joins_arm_the_grow_gate() {
        // Rank 2 joins a 2-rank worker set at step 3: accepted as pending
        // growth, and every incumbent stops at exactly that round.
        let join = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 2,
                at_step: 3,
            }],
        };
        let d = FaultDriver::new(&join, 2, true).expect("future join is realizable");
        assert_eq!(d.grow_step(), Some(3));
        assert_eq!(d.before_step(0, 2), FaultAction::Continue);
        assert_eq!(d.before_step(0, 3), FaultAction::Grow);
        assert_eq!(d.before_step(1, 3), FaultAction::Grow);
        assert!(!d.aborted(), "growth is a clean stop, not an abort");
        assert!(d.first_loss().is_none());
        // Growth wins over a same-step loss: the loss fires under the
        // re-wired member set, not in this epoch.
        let compound = FaultScript {
            events: vec![
                FaultEvent::HostLoss {
                    rank: 0,
                    at_step: 3,
                },
                FaultEvent::HostJoin {
                    rank: 2,
                    at_step: 3,
                },
            ],
        };
        let d = FaultDriver::new(&compound, 2, true).unwrap();
        assert_eq!(d.before_step(0, 3), FaultAction::Grow);
        // Non-contiguous join ranks are a projection bug, loudly.
        let scattered = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 5,
                at_step: 3,
            }],
        };
        assert!(matches!(
            FaultDriver::new(&scattered, 2, true),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn rejects_invalid_scripts() {
        let overlap = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 0,
                    end_step: 5,
                },
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 3.0,
                    start_step: 3,
                    end_step: 8,
                },
            ],
        };
        assert!(matches!(
            FaultDriver::new(&overlap, 2, true),
            Err(ExecError::Config(_))
        ));
    }

    #[test]
    fn loss_fires_exactly_at_its_step_and_sets_abort() {
        let d = FaultDriver::new(&loss_script(1, 4), 2, true).unwrap();
        assert_eq!(d.before_step(1, 3), FaultAction::Continue);
        assert!(!d.aborted());
        assert_eq!(d.before_step(1, 4), FaultAction::Lost);
        assert!(d.aborted());
        assert_eq!(d.first_loss(), Some((1, 4)));
        // The surviving rank keeps stepping.
        assert_eq!(d.before_step(0, 4), FaultAction::Continue);
        // An earlier observation wins the record.
        d.before_step(1, 4);
        assert_eq!(d.first_loss(), Some((1, 4)));
    }

    #[test]
    fn healthy_driver_never_aborts() {
        let d = FaultDriver::healthy();
        for step in 0..16 {
            assert_eq!(d.before_step(0, step), FaultAction::Continue);
            d.before_load(step);
        }
        assert!(!d.aborted());
        assert!(d.first_loss().is_none());
    }
}
