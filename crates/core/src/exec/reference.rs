//! Golden sequential blockwise distillation (the mathematical definition,
//! scheduling-free).
//!
//! Every parallel strategy must reproduce these results: the per-block
//! objective depends only on the teacher activations (fixed) and the
//! block's own parameters, so the training trajectory is schedule-
//! independent — the property Pipe-BD exploits.

use pipebd_data::SyntheticImageDataset;
use pipebd_nn::{mse_loss, BlockNet, Layer, Mode, Sgd};
use pipebd_tensor::parallel::{self, ComputePool};
use pipebd_tensor::TensorError;

use super::{ExecError, FuncConfig, FuncOutcome};
use crate::checkpoint::{self, Checkpoint};

/// Trains `student` against `teacher` sequentially: for every step, run
/// the teacher forward once, then train each student block on its boundary
/// pair.
///
/// The whole run executes under a compute pool of `cfg.pool_budget()`
/// lanes (a budget of 1 installs an inline pool, pinning every kernel
/// serial regardless of the process default). By the tensor crate's
/// determinism contract this never changes a single bit of the result —
/// the conformance tests compare outcomes across budgets to prove it.
///
/// # Errors
///
/// Propagates tensor shape errors (which indicate mismatched teacher and
/// student boundary shapes).
pub fn run(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
) -> Result<FuncOutcome, TensorError> {
    let pool = ComputePool::new(cfg.pool_budget());
    parallel::install(&pool, || run_serial_semantics(teacher, student, data, cfg))
}

/// Resumes the sequential semantics from a checkpoint: restores every
/// block's parameters, velocities, and loss history, then trains steps
/// `from.round..cfg.steps`. This is the recovery protocol's last-resort
/// fallback when the threaded executor exhausts its restore budget — a
/// single thread cannot lose a rank.
///
/// Bitwise equivalent to an uninterrupted [`run`]: the restored state is
/// exactly what the uninterrupted run held after `from.round` steps, and
/// the remaining steps replay the same per-index-deterministic batches.
///
/// # Errors
///
/// Returns [`ExecError::Checkpoint`] for a structurally mismatched
/// checkpoint, or [`ExecError::Tensor`] for shape errors.
pub fn resume(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
    from: &Checkpoint,
) -> Result<FuncOutcome, ExecError> {
    from.validate(teacher.num_blocks(), cfg.batch)
        .map_err(ExecError::Checkpoint)?;
    if from.round > cfg.steps {
        return Err(ExecError::Checkpoint(format!(
            "checkpoint round {} beyond the run's {} steps",
            from.round, cfg.steps
        )));
    }
    let pool = ComputePool::new(cfg.pool_budget());
    parallel::install(&pool, || {
        resume_serial_semantics(teacher, student, data, cfg, from)
    })
}

fn run_serial_semantics(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
) -> Result<FuncOutcome, TensorError> {
    let mut teacher = teacher.clone();
    let mut student = student.clone();
    let b = teacher.num_blocks();
    let mut optims: Vec<Sgd> = (0..b)
        .map(|_| Sgd::new(cfg.lr, cfg.momentum, 0.0))
        .collect();
    let mut losses = vec![Vec::with_capacity(cfg.steps); b];
    train_range(
        &mut teacher,
        &mut student,
        &mut optims,
        &mut losses,
        data,
        cfg,
        0,
    )?;

    let params = (0..b)
        .map(|i| pipebd_nn::snapshot_params(student.block_mut(i)))
        .collect();
    Ok(FuncOutcome { params, losses })
}

fn resume_serial_semantics(
    teacher: &BlockNet,
    student: &BlockNet,
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
    from: &Checkpoint,
) -> Result<FuncOutcome, ExecError> {
    let mut teacher = teacher.clone();
    let mut student = student.clone();
    let b = teacher.num_blocks();
    let mut optims: Vec<Sgd> = (0..b)
        .map(|_| Sgd::new(cfg.lr, cfg.momentum, 0.0))
        .collect();
    let mut losses = vec![Vec::with_capacity(cfg.steps); b];
    for i in 0..b {
        let state = from
            .block(i)
            .ok_or_else(|| ExecError::Checkpoint(format!("missing block {i}")))?;
        checkpoint::restore_block(student.block_mut(i), &mut optims[i], state)
            .map_err(ExecError::Checkpoint)?;
        losses[i] = state.losses.clone();
    }
    train_range(
        &mut teacher,
        &mut student,
        &mut optims,
        &mut losses,
        data,
        cfg,
        from.round,
    )?;

    let params = (0..b)
        .map(|i| pipebd_nn::snapshot_params(student.block_mut(i)))
        .collect();
    Ok(FuncOutcome { params, losses })
}

/// The shared training loop: steps `start..cfg.steps` of the sequential
/// semantics (one teacher pass per step, per-block student updates).
fn train_range(
    teacher: &mut BlockNet,
    student: &mut BlockNet,
    optims: &mut [Sgd],
    losses: &mut [Vec<f32>],
    data: &SyntheticImageDataset,
    cfg: &FuncConfig,
    start: usize,
) -> Result<(), TensorError> {
    let b = teacher.num_blocks();
    for step in start..cfg.steps {
        let (x, _labels) = data.batch(step as u64 * cfg.batch as u64, cfg.batch);
        // One teacher pass, tapping every boundary (no redundancy in the
        // math; redundancy is purely a scheduling artifact).
        let boundaries = teacher.forward_collect(&x, Mode::Eval)?;
        for i in 0..b {
            let input = if i == 0 { &x } else { &boundaries[i - 1] };
            let s_out = student.block_mut(i).forward(input, Mode::Train)?;
            let loss = mse_loss(&s_out, &boundaries[i])?;
            student.block_mut(i).backward(&loss.grad)?;
            optims[i].step(student.block_mut(i))?;
            pipebd_nn::zero_grad(student.block_mut(i));
            losses[i].push(loss.loss);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
    use pipebd_tensor::Rng64;

    fn setup() -> (BlockNet, BlockNet, SyntheticImageDataset) {
        let cfg = MiniConfig {
            blocks: 3,
            channels: 6,
            batch_norm: false,
        };
        let mut rng = Rng64::seed_from_u64(42);
        let teacher = mini_teacher(cfg, &mut rng);
        let student = mini_student_dsconv(cfg, &mut rng);
        let data = SyntheticImageDataset::mini(64, 8, 4, 9);
        (teacher, student, data)
    }

    #[test]
    fn losses_decrease_for_every_block() {
        let (teacher, student, data) = setup();
        let cfg = FuncConfig {
            steps: 40,
            batch: 8,
            ..FuncConfig::default()
        };
        let out = run(&teacher, &student, &data, &cfg).unwrap();
        for (i, l) in out.losses.iter().enumerate() {
            let first: f32 = l[..5].iter().sum::<f32>() / 5.0;
            let last: f32 = l[l.len() - 5..].iter().sum::<f32>() / 5.0;
            assert!(
                last < first,
                "block {i} loss did not decrease: {first} -> {last}"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (teacher, student, data) = setup();
        let cfg = FuncConfig {
            steps: 5,
            ..FuncConfig::default()
        };
        let a = run(&teacher, &student, &data, &cfg).unwrap();
        let b = run(&teacher, &student, &data, &cfg).unwrap();
        assert_eq!(a.max_param_diff(&b), 0.0, "reference must be bit-stable");
    }

    #[test]
    fn inputs_are_not_mutated() {
        let (teacher, student, data) = setup();
        let cfg = FuncConfig {
            steps: 2,
            ..FuncConfig::default()
        };
        let mut teacher_clone = teacher.clone();
        let _ = run(&teacher, &student, &data, &cfg).unwrap();
        // Teacher still produces identical outputs afterwards.
        let (x, _) = data.batch(0, 4);
        let before = teacher_clone.forward_collect(&x, Mode::Eval).unwrap();
        let mut teacher_again = teacher.clone();
        let after = teacher_again.forward_collect(&x, Mode::Eval).unwrap();
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a, b);
        }
    }
}
