//! The recovery protocol: checkpoint → replan → resume, with a bounded
//! restore budget — in both directions of membership change.
//!
//! [`RecoveryRunner::run`] drives the threaded executor under a fault
//! script. On [`ExecError::RankLost`] it restores the latest checkpoint
//! from the sink, snapshots the degraded cluster membership at the loss
//! step, asks `pipebd_sched::replan` for a degraded plan over the
//! survivors, projects the fault script onto them, and retries — up to
//! `max_restores` times with a small deterministic backoff. Exhausting
//! the budget degrades gracefully: either to the single-threaded
//! reference executor (which cannot lose a rank) resuming from the last
//! checkpoint, or to a clean [`ExecError::RecoveryExhausted`]. Never a
//! deadlock — every abort path is structured.
//!
//! # Elastic growth
//!
//! The member set can also *grow*. A scripted `HostJoin` ends the
//! current epoch cleanly at the join's round boundary
//! ([`ExecError::MembershipGrow`], with a forced checkpoint at exactly
//! that round); the runner then replans over the **enlarged** member
//! set, projects the script (the admitted join is dropped, later joins
//! stay pending), re-wires the channel graph by starting a fresh epoch,
//! and resumes from the boundary checkpoint. Growth consumes no restore
//! budget — nothing was lost. A join naming a rank of the initial
//! worker set means that host is absent at step 0 and arrives mid-run:
//! the first epoch starts over the step-0 members and the join is
//! renumbered onto a fresh rank beyond them. Rejoin after loss
//! composes from the two primitives: the lost host's *hardware* comes
//! back under a fresh logical rank (`HostJoin` on a new id), since a
//! cancelled worker itself cannot restart.
//!
//! Every epoch's checkpoints carry the plan's structural fingerprint,
//! and restores go through [`CheckpointSink::latest_matching`] against
//! the lineage of every plan this run has used — a checkpoint from a
//! foreign run (or a stale sink) fails loudly instead of silently
//! resuming the wrong model.
//!
//! # Replay equivalence
//!
//! A recovered run trains the *same model* as an uninterrupted one:
//!
//! * **Width-1 plans** — bitwise. The checkpoint restores exactly the
//!   state the uninterrupted run held at its round, remaining steps
//!   replay the same per-index-deterministic batches, and the runner
//!   never substitutes a batch-split plan for a split-free incumbent
//!   (the contiguous fallback preserves width 1), so every float op
//!   recurs in the same order on the same values. Growth keeps this:
//!   the forced boundary checkpoint means the joined rank never
//!   recomputes pre-join steps.
//! * **Batch-split plans** — shard-mean averaging reorders float
//!   summation, so parity carries the usual accumulation-error budget
//!   (the conformance plane's recovery tolerance), not bitwise equality.

use std::sync::Arc;
use std::time::Duration;

use pipebd_data::SyntheticImageDataset;
use pipebd_models::Workload;
use pipebd_nn::BlockNet;
use pipebd_sched::replan::replan;
use pipebd_sched::{DegradedServer, StagePlan};
use pipebd_sim::{FaultEvent, FaultScript, HardwareConfig};
use pipebd_trace::{SpanKind, TraceCollector};

use super::fault::FaultDriver;
use super::threaded::{self, RunHooks};
use super::{reference, ExecError, FuncConfig, FuncOutcome};
use crate::checkpoint::{Checkpoint, CheckpointPolicy, CheckpointSink};

/// Bounds and knobs for the recovery protocol.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Rounds between checkpoints (`0` disables capture — a loss then
    /// restarts training from scratch).
    pub checkpoint_every: usize,
    /// Maximum restore attempts before degrading to the fallback.
    pub max_restores: usize,
    /// Base backoff slept before restore attempt `n` (scaled by `n`,
    /// deterministic — no jitter, nothing result-affecting).
    pub backoff: Duration,
    /// Whether budget exhaustion falls back to the reference executor
    /// (`true`) or surfaces [`ExecError::RecoveryExhausted`] (`false`).
    pub reference_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 2,
            max_restores: 3,
            backoff: Duration::from_millis(1),
            reference_fallback: true,
        }
    }
}

/// What a recovered run did, alongside its outcome.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The trained result (same contract as a healthy run's outcome).
    pub outcome: FuncOutcome,
    /// Restore attempts consumed (0 = the run never lost a rank).
    /// Membership growth does not count here — see `grows`.
    pub restores: usize,
    /// Membership growths performed (scripted joins admitted at a round
    /// boundary). Growth consumes no restore budget.
    pub grows: usize,
    /// The checkpoint round each restore or growth resumed from (0 =
    /// restarted from scratch because no checkpoint had been captured
    /// yet).
    pub resumed_rounds: Vec<usize>,
    /// Replanning passes performed (one per mid-run restore or growth,
    /// plus one when the run starts elastically short-handed).
    pub replans: usize,
    /// Whether the run finished on the reference-executor fallback.
    pub fell_back: bool,
    /// Logical devices of the final (possibly degraded) configuration.
    pub final_devices: usize,
}

/// Orchestrates threaded runs under a fault script with checkpoint
/// /restore recovery (see the [module docs](self)).
pub struct RecoveryRunner<'a> {
    /// Cost-model description of the blocks (drives `replan`'s degraded
    /// search; must describe the same block count as the networks).
    pub workload: &'a Workload,
    /// The fault script to execute under.
    pub script: &'a FaultScript,
    /// Restore budget and checkpoint cadence.
    pub policy: RecoveryPolicy,
    /// Where checkpoints go and restores come from.
    pub sink: Arc<dyn CheckpointSink>,
    /// Optional trace collector: worker spans flow through the threaded
    /// executor's hooks, and the runner itself records control-track
    /// [`SpanKind::Restore`] / [`SpanKind::Replan`] events per attempt.
    pub trace: Option<Arc<TraceCollector>>,
}

impl RecoveryRunner<'_> {
    /// Trains `student` against `teacher` under the fault script,
    /// recovering from rank losses and admitting scripted joins (see
    /// the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Config`] for unrealizable scripts (overlap
    /// violations, loss-before-join orderings, non-decoupled configs,
    /// scripts where every rank joins late),
    /// [`ExecError::RecoveryExhausted`] when the budget runs out with no
    /// fallback configured, [`ExecError::Checkpoint`] when the sink's
    /// checkpoint fails the plan-lineage gate, or any underlying
    /// executor error.
    pub fn run(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
    ) -> Result<RecoveryReport, ExecError> {
        let b = teacher.num_blocks();
        if self.workload.num_blocks() != b {
            return Err(ExecError::Config(format!(
                "workload describes {} blocks, networks have {b}",
                self.workload.num_blocks()
            )));
        }
        let base_plan = match &cfg.plan {
            Some(p) => p.clone(),
            None => StagePlan::contiguous(b, cfg.devices)
                .map_err(|e| ExecError::Config(e.to_string()))?,
        };
        // The replay-equivalence contract: a split-free incumbent must
        // stay split-free through every replan, or bitwise parity dies.
        let preserve_width1 = !base_plan.uses_batch_split();

        let mut cfg = cfg.clone();
        let mut script = self.script.clone();
        let mut resume: Option<Arc<Checkpoint>> = None;
        let mut restores = 0usize;
        let mut grows = 0usize;
        let mut resumed_rounds = Vec::new();
        let mut replans = 0usize;

        // Elastic start: a join naming an in-set rank means that host is
        // absent at step 0 and arrives mid-run. Start the first epoch
        // over the step-0 members — the projection renumbers the join
        // onto a fresh rank beyond them — and let the grow arm below
        // admit it when the join comes due.
        let in_set_join = script
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::HostJoin { rank, .. } if *rank < cfg.devices));
        if in_set_join {
            let total = cfg.devices + script.pending_joins(cfg.devices).len();
            let hw = HardwareConfig::a6000_server(total);
            let server = DegradedServer::at_step(&hw, &script, 0)
                .map_err(|v| ExecError::Config(format!("replan: {v}")))?;
            let members = server.members.clone();
            let m = members.len();
            if m == 0 {
                return Err(ExecError::Config(
                    "fault script leaves no step-0 members: every rank joins later".into(),
                ));
            }
            if m < cfg.devices {
                let decision = replan(self.workload, &server, cfg.batch);
                replans += 1;
                let mut plan = decision.plan;
                let indivisible = plan.stages.iter().any(|s| cfg.batch % s.width() != 0);
                if (preserve_width1 && plan.uses_batch_split()) || indivisible {
                    plan = StagePlan::contiguous(b, m).map_err(|e| {
                        ExecError::Config(format!("no runnable plan for {m} initial members: {e}"))
                    })?;
                }
                script = script.for_survivors(&members);
                cfg.devices = m;
                cfg.plan = Some(plan);
            }
        }

        // The plan fingerprints of every epoch this run has used, newest
        // last — the lineage restores are checked against.
        let mut lineage: Vec<String> = vec![cfg.plan.as_ref().unwrap_or(&base_plan).fingerprint()];

        loop {
            let driver = Arc::new(FaultDriver::new(
                &script,
                cfg.devices,
                cfg.decoupled_updates,
            )?);
            let hooks = RunHooks {
                driver: Some(driver),
                resume: resume.clone(),
                checkpoint: Some((
                    CheckpointPolicy::every(self.policy.checkpoint_every),
                    Arc::clone(&self.sink),
                )),
                trace: self.trace.clone(),
            };
            match threaded::run_hooked(teacher, student, data, &cfg, &hooks) {
                Ok(outcome) => {
                    return Ok(RecoveryReport {
                        outcome,
                        restores,
                        grows,
                        resumed_rounds,
                        replans,
                        fell_back: false,
                        final_devices: cfg.devices,
                    })
                }
                Err(ExecError::RankLost { rank: _, step }) => {
                    restores += 1;
                    if restores > self.policy.max_restores {
                        return self.exhausted(
                            teacher,
                            student,
                            data,
                            &cfg,
                            restores - 1,
                            grows,
                            resumed_rounds,
                            replans,
                        );
                    }
                    // Deterministic bounded backoff before the attempt.
                    std::thread::sleep(self.policy.backoff * restores as u32);

                    // Degraded membership at the loss step, then a fresh
                    // plan search over the survivors. The rank space
                    // includes pending joins so a loss + rejoin compound
                    // script stays valid through the projection.
                    let replan_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    let total = cfg.devices + script.pending_joins(cfg.devices).len();
                    let hw = HardwareConfig::a6000_server(total);
                    let server = DegradedServer::at_step(&hw, &script, step as u32)
                        .map_err(|v| ExecError::Config(format!("replan: {v}")))?;
                    let members = server.members.clone();
                    let m = members.len();
                    let decision = replan(self.workload, &server, cfg.batch);
                    replans += 1;
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), replan_t0) {
                        tc.event(SpanKind::Replan, step as u32, t0, tc.now_ns());
                    }
                    let mut plan = decision.plan;
                    let indivisible = plan.stages.iter().any(|s| cfg.batch % s.width() != 0);
                    if (preserve_width1 && plan.uses_batch_split()) || indivisible {
                        plan = StagePlan::contiguous(b, m).map_err(|e| {
                            ExecError::Config(format!(
                                "no runnable degraded plan for {m} survivors: {e}"
                            ))
                        })?;
                    }
                    script = script.for_survivors(&members);
                    cfg.devices = m;
                    lineage.push(plan.fingerprint());
                    cfg.plan = Some(plan);
                    let restore_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    resume = self
                        .sink
                        .latest_matching(&lineage)
                        .map_err(ExecError::Checkpoint)?
                        .map(Arc::new);
                    resumed_rounds.push(resume.as_ref().map_or(0, |c| c.round));
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), restore_t0) {
                        tc.event(SpanKind::Restore, step as u32, t0, tc.now_ns());
                    }
                }
                Err(ExecError::MembershipGrow { step }) => {
                    // A scripted join came due: the epoch stopped cleanly
                    // at the boundary (with a forced checkpoint there), so
                    // admit the joins and re-wire. Growth consumes no
                    // restore budget — nothing was lost.
                    grows += 1;
                    let replan_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    let total = cfg.devices + script.pending_joins(cfg.devices).len();
                    let hw = HardwareConfig::a6000_server(total);
                    let server = DegradedServer::at_step(&hw, &script, step as u32)
                        .map_err(|v| ExecError::Config(format!("replan: {v}")))?;
                    let members = server.members.clone();
                    let m = members.len();
                    let decision = replan(self.workload, &server, cfg.batch);
                    replans += 1;
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), replan_t0) {
                        tc.event(SpanKind::Replan, step as u32, t0, tc.now_ns());
                    }
                    let mut plan = decision.plan;
                    let indivisible = plan.stages.iter().any(|s| cfg.batch % s.width() != 0);
                    if (preserve_width1 && plan.uses_batch_split()) || indivisible {
                        plan = StagePlan::contiguous(b, m).map_err(|e| {
                            ExecError::Config(format!(
                                "no runnable grown plan for {m} members: {e}"
                            ))
                        })?;
                    }
                    // Projection drops the admitted joins (their ranks are
                    // members now) and keeps later joins pending under
                    // fresh ids, so staggered joins grow epoch by epoch.
                    script = script.for_survivors(&members);
                    cfg.devices = m;
                    lineage.push(plan.fingerprint());
                    cfg.plan = Some(plan);
                    let restore_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    resume = self
                        .sink
                        .latest_matching(&lineage)
                        .map_err(ExecError::Checkpoint)?
                        .map(Arc::new);
                    resumed_rounds.push(resume.as_ref().map_or(0, |c| c.round));
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), restore_t0) {
                        tc.event(SpanKind::Restore, step as u32, t0, tc.now_ns());
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Budget exhausted: reference fallback or a structured error.
    #[allow(clippy::too_many_arguments)]
    fn exhausted(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
        attempts: usize,
        grows: usize,
        mut resumed_rounds: Vec<usize>,
        replans: usize,
    ) -> Result<RecoveryReport, ExecError> {
        if !self.policy.reference_fallback {
            return Err(ExecError::RecoveryExhausted { attempts });
        }
        let latest = self.sink.latest().map_err(ExecError::Checkpoint)?;
        let outcome = match &latest {
            Some(ckpt) => {
                resumed_rounds.push(ckpt.round);
                reference::resume(teacher, student, data, cfg, ckpt)?
            }
            None => {
                resumed_rounds.push(0);
                reference::run(teacher, student, data, cfg)?
            }
        };
        Ok(RecoveryReport {
            outcome,
            restores: attempts,
            grows,
            resumed_rounds,
            replans,
            fell_back: true,
            final_devices: 1,
        })
    }
}
