//! The recovery protocol: checkpoint → replan → resume, with a bounded
//! restore budget.
//!
//! [`RecoveryRunner::run`] drives the threaded executor under a fault
//! script. On [`ExecError::RankLost`] it restores the latest checkpoint
//! from the sink, snapshots the degraded cluster membership at the loss
//! step, asks `pipebd_sched::replan` for a degraded plan over the
//! survivors, projects the fault script onto them, and retries — up to
//! `max_restores` times with a small deterministic backoff. Exhausting
//! the budget degrades gracefully: either to the single-threaded
//! reference executor (which cannot lose a rank) resuming from the last
//! checkpoint, or to a clean [`ExecError::RecoveryExhausted`]. Never a
//! deadlock — every abort path is structured.
//!
//! # Replay equivalence
//!
//! A recovered run trains the *same model* as an uninterrupted one:
//!
//! * **Width-1 plans** — bitwise. The checkpoint restores exactly the
//!   state the uninterrupted run held at its round, remaining steps
//!   replay the same per-index-deterministic batches, and the runner
//!   never substitutes a batch-split plan for a split-free incumbent
//!   (the contiguous fallback preserves width 1), so every float op
//!   recurs in the same order on the same values.
//! * **Batch-split plans** — shard-mean averaging reorders float
//!   summation, so parity carries the usual accumulation-error budget
//!   (the conformance plane's recovery tolerance), not bitwise equality.

use std::sync::Arc;
use std::time::Duration;

use pipebd_data::SyntheticImageDataset;
use pipebd_models::Workload;
use pipebd_nn::BlockNet;
use pipebd_sched::replan::replan;
use pipebd_sched::{DegradedServer, StagePlan};
use pipebd_sim::{FaultScript, HardwareConfig};
use pipebd_trace::{SpanKind, TraceCollector};

use super::fault::FaultDriver;
use super::threaded::{self, RunHooks};
use super::{reference, ExecError, FuncConfig, FuncOutcome};
use crate::checkpoint::{Checkpoint, CheckpointPolicy, CheckpointSink};

/// Bounds and knobs for the recovery protocol.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Rounds between checkpoints (`0` disables capture — a loss then
    /// restarts training from scratch).
    pub checkpoint_every: usize,
    /// Maximum restore attempts before degrading to the fallback.
    pub max_restores: usize,
    /// Base backoff slept before restore attempt `n` (scaled by `n`,
    /// deterministic — no jitter, nothing result-affecting).
    pub backoff: Duration,
    /// Whether budget exhaustion falls back to the reference executor
    /// (`true`) or surfaces [`ExecError::RecoveryExhausted`] (`false`).
    pub reference_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 2,
            max_restores: 3,
            backoff: Duration::from_millis(1),
            reference_fallback: true,
        }
    }
}

/// What a recovered run did, alongside its outcome.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The trained result (same contract as a healthy run's outcome).
    pub outcome: FuncOutcome,
    /// Restore attempts consumed (0 = the run never lost a rank).
    pub restores: usize,
    /// The checkpoint round each restore resumed from (0 = restarted
    /// from scratch because no checkpoint had been captured yet).
    pub resumed_rounds: Vec<usize>,
    /// Replanning passes performed (one per mid-run restore).
    pub replans: usize,
    /// Whether the run finished on the reference-executor fallback.
    pub fell_back: bool,
    /// Logical devices of the final (possibly degraded) configuration.
    pub final_devices: usize,
}

/// Orchestrates threaded runs under a fault script with checkpoint
/// /restore recovery (see the [module docs](self)).
pub struct RecoveryRunner<'a> {
    /// Cost-model description of the blocks (drives `replan`'s degraded
    /// search; must describe the same block count as the networks).
    pub workload: &'a Workload,
    /// The fault script to execute under.
    pub script: &'a FaultScript,
    /// Restore budget and checkpoint cadence.
    pub policy: RecoveryPolicy,
    /// Where checkpoints go and restores come from.
    pub sink: Arc<dyn CheckpointSink>,
    /// Optional trace collector: worker spans flow through the threaded
    /// executor's hooks, and the runner itself records control-track
    /// [`SpanKind::Restore`] / [`SpanKind::Replan`] events per attempt.
    pub trace: Option<Arc<TraceCollector>>,
}

impl RecoveryRunner<'_> {
    /// Trains `student` against `teacher` under the fault script,
    /// recovering from rank losses (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Config`] for unrealizable scripts (host
    /// joins, overlap violations, non-decoupled configs),
    /// [`ExecError::RecoveryExhausted`] when the budget runs out with no
    /// fallback configured, or any underlying executor error.
    pub fn run(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
    ) -> Result<RecoveryReport, ExecError> {
        let b = teacher.num_blocks();
        if self.workload.num_blocks() != b {
            return Err(ExecError::Config(format!(
                "workload describes {} blocks, networks have {b}",
                self.workload.num_blocks()
            )));
        }
        let base_plan = match &cfg.plan {
            Some(p) => p.clone(),
            None => StagePlan::contiguous(b, cfg.devices)
                .map_err(|e| ExecError::Config(e.to_string()))?,
        };
        // The replay-equivalence contract: a split-free incumbent must
        // stay split-free through every replan, or bitwise parity dies.
        let preserve_width1 = !base_plan.uses_batch_split();

        let mut cfg = cfg.clone();
        let mut script = self.script.clone();
        let mut resume: Option<Arc<Checkpoint>> = None;
        let mut restores = 0usize;
        let mut resumed_rounds = Vec::new();
        let mut replans = 0usize;

        loop {
            let driver = Arc::new(FaultDriver::new(
                &script,
                cfg.devices,
                cfg.decoupled_updates,
            )?);
            let hooks = RunHooks {
                driver: Some(driver),
                resume: resume.clone(),
                checkpoint: Some((
                    CheckpointPolicy::every(self.policy.checkpoint_every),
                    Arc::clone(&self.sink),
                )),
                trace: self.trace.clone(),
            };
            match threaded::run_hooked(teacher, student, data, &cfg, &hooks) {
                Ok(outcome) => {
                    return Ok(RecoveryReport {
                        outcome,
                        restores,
                        resumed_rounds,
                        replans,
                        fell_back: false,
                        final_devices: cfg.devices,
                    })
                }
                Err(ExecError::RankLost { rank: _, step }) => {
                    restores += 1;
                    if restores > self.policy.max_restores {
                        return self.exhausted(
                            teacher,
                            student,
                            data,
                            &cfg,
                            restores - 1,
                            resumed_rounds,
                            replans,
                        );
                    }
                    // Deterministic bounded backoff before the attempt.
                    std::thread::sleep(self.policy.backoff * restores as u32);

                    // Degraded membership at the loss step, then a fresh
                    // plan search over the survivors.
                    let replan_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    let hw = HardwareConfig::a6000_server(cfg.devices);
                    let server = DegradedServer::at_step(&hw, &script, step as u32)
                        .map_err(|v| ExecError::Config(format!("replan: {v}")))?;
                    let members = server.members.clone();
                    let m = members.len();
                    let decision = replan(self.workload, &server, cfg.batch);
                    replans += 1;
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), replan_t0) {
                        tc.event(SpanKind::Replan, step as u32, t0, tc.now_ns());
                    }
                    let mut plan = decision.plan;
                    let indivisible = plan.stages.iter().any(|s| cfg.batch % s.width() != 0);
                    if (preserve_width1 && plan.uses_batch_split()) || indivisible {
                        plan = StagePlan::contiguous(b, m).map_err(|e| {
                            ExecError::Config(format!(
                                "no runnable degraded plan for {m} survivors: {e}"
                            ))
                        })?;
                    }
                    script = script.for_survivors(&members);
                    cfg.devices = m;
                    cfg.plan = Some(plan);
                    let restore_t0 = self.trace.as_deref().map(TraceCollector::now_ns);
                    resume = self
                        .sink
                        .latest()
                        .map_err(ExecError::Checkpoint)?
                        .map(Arc::new);
                    resumed_rounds.push(resume.as_ref().map_or(0, |c| c.round));
                    if let (Some(tc), Some(t0)) = (self.trace.as_deref(), restore_t0) {
                        tc.event(SpanKind::Restore, step as u32, t0, tc.now_ns());
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Budget exhausted: reference fallback or a structured error.
    #[allow(clippy::too_many_arguments)]
    fn exhausted(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
        attempts: usize,
        mut resumed_rounds: Vec<usize>,
        replans: usize,
    ) -> Result<RecoveryReport, ExecError> {
        if !self.policy.reference_fallback {
            return Err(ExecError::RecoveryExhausted { attempts });
        }
        let latest = self.sink.latest().map_err(ExecError::Checkpoint)?;
        let outcome = match &latest {
            Some(ckpt) => {
                resumed_rounds.push(ckpt.round);
                reference::resume(teacher, student, data, cfg, ckpt)?
            }
            None => {
                resumed_rounds.push(0);
                reference::run(teacher, student, data, cfg)?
            }
        };
        Ok(RecoveryReport {
            outcome,
            restores: attempts,
            resumed_rounds,
            replans,
            fell_back: true,
            final_devices: 1,
        })
    }
}
