//! The dynamic device-thread registry: worker threads as an *epoch*.
//!
//! PR 8's executor spawned a fixed thread set and tore the whole run
//! down on any membership change. The registry splits that lifecycle
//! into explicit pieces so the recovery plane can run a sequence of
//! epochs over a *changing* member set:
//!
//! * [`wire_roles`] builds one epoch's channel fabric — the relay
//!   senders/receivers between adjacent stages and the leader-based
//!   grad-share channels within widened stages — from a [`StagePlan`].
//!   Re-wiring after a membership change is simply wiring the next
//!   epoch's fabric from the replanned incumbent; channels are never
//!   mutated mid-epoch.
//! * [`DeviceRegistry`] spawns device workers into the epoch (recording
//!   a `worker_spawn` trace event per rank) and retires them at the
//!   epoch's end (`worker_retire`), joining threads, converting panics
//!   to structured errors, and folding the workers' kernel-pool
//!   counters into the trace metrics registry.
//!
//! An epoch ends in one of three ways, all at a round boundary: the run
//! completes, a rank is lost (`ExecError::RankLost`), or a scripted
//! join comes due (`ExecError::MembershipGrow`) and the member set must
//! grow. In every case `retire` returns each worker's structured
//! result; the recovery protocol (`exec::recovery`) decides whether a
//! next epoch follows and over which members.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use pipebd_nn::{Block, BlockNet};
use pipebd_sched::StagePlan;
use pipebd_tensor::parallel::{self, ComputePool};
use pipebd_tensor::{SharedTensor, Tensor};
use pipebd_trace::{SpanKind, TraceCollector};

use super::ExecError;

/// A relayed activation: the sending member's index and its batch shard,
/// shared by handle (sending is a refcount bump, not a copy).
pub(crate) type Shard = (usize, SharedTensor);
/// Gradient-gather payload: sender member index, flattened per-block
/// gradients (moved out of the sender's params — ownership transfer, no
/// copies), and per-block shard losses.
pub(crate) type GradMsg = (usize, Vec<Vec<Tensor>>, Vec<f32>);
/// Averaged bundle the leader broadcasts: per-block per-param averaged
/// gradients behind shared handles, plus averaged losses. Cloning the
/// bundle clones handles, not buffers.
pub(crate) type GradBundle = (Vec<Vec<SharedTensor>>, Vec<f32>);
/// One worker's result rows: `(block, member, params, losses)`.
pub(crate) type WorkerOut = Vec<(usize, usize, Vec<Tensor>, Vec<f32>)>;

/// Everything one device worker needs of the epoch's channel fabric.
pub(crate) struct DeviceRole {
    pub device: usize,
    pub stage_index: usize,
    pub member: usize,
    pub width: usize,
    /// Width of the previous stage (0 for stage 0).
    pub prev_width: usize,
    pub first_block: usize,
    pub teacher_blocks: Vec<Block>,
    pub student_blocks: Vec<Block>,
    /// Receivers for the previous stage's shards (empty for stage 0).
    pub input_rx: Option<Receiver<Shard>>,
    /// Senders to every member of the next stage (empty for the last).
    pub output_tx: Vec<Sender<Shard>>,
    /// Gradient sharing within the stage (leader-based averaging).
    pub grad_to_leader: Option<Sender<GradMsg>>,
    pub grad_from_members: Option<Receiver<GradMsg>>,
    pub grad_broadcast_tx: Vec<Sender<GradBundle>>,
    pub grad_broadcast_rx: Option<Receiver<GradBundle>>,
}

/// Builds one epoch's channel fabric for `plan`: per-stage relay
/// channels, leader gather/broadcast channels for widened stages, and a
/// [`DeviceRole`] per device rank holding its model blocks and channel
/// endpoints.
pub(crate) fn wire_roles(
    plan: &StagePlan,
    teacher: &BlockNet,
    student: &BlockNet,
) -> Vec<DeviceRole> {
    let num_stages = plan.stages.len();
    let mut roles: Vec<DeviceRole> = Vec::with_capacity(plan.num_devices);
    // Input receivers for each stage's members; pre-created so the
    // previous stage's senders can be wired while visiting it.
    let mut stage_rx: Vec<Vec<(Sender<Shard>, Receiver<Shard>)>> = Vec::new();
    for s in &plan.stages {
        stage_rx.push((0..s.width()).map(|_| unbounded()).collect());
    }

    for (si, stage) in plan.stages.iter().enumerate() {
        // Gradient-sharing fabric for this stage (width > 1).
        let width = stage.width();
        let (leader_tx, leader_rx) = unbounded::<GradMsg>();
        let broadcast: Vec<(Sender<GradBundle>, Receiver<GradBundle>)> =
            (0..width).map(|_| unbounded()).collect();

        for (member, &device) in stage.devices.iter().enumerate() {
            let teacher_blocks: Vec<Block> =
                stage.blocks().map(|i| teacher.block(i).clone()).collect();
            let student_blocks: Vec<Block> =
                stage.blocks().map(|i| student.block(i).clone()).collect();
            let output_tx = if si + 1 < num_stages {
                stage_rx[si + 1].iter().map(|(tx, _)| tx.clone()).collect()
            } else {
                Vec::new()
            };
            roles.push(DeviceRole {
                device,
                stage_index: si,
                member,
                width,
                prev_width: if si == 0 {
                    0
                } else {
                    plan.stages[si - 1].width()
                },
                first_block: stage.first_block,
                teacher_blocks,
                student_blocks,
                input_rx: if si == 0 {
                    None
                } else {
                    Some(stage_rx[si][member].1.clone())
                },
                output_tx,
                grad_to_leader: (width > 1).then(|| leader_tx.clone()),
                grad_from_members: (width > 1 && member == 0).then(|| leader_rx.clone()),
                grad_broadcast_tx: if width > 1 && member == 0 {
                    broadcast.iter().map(|(tx, _)| tx.clone()).collect()
                } else {
                    Vec::new()
                },
                grad_broadcast_rx: (width > 1).then(|| broadcast[member].1.clone()),
            });
        }
    }
    roles
}

/// One epoch's live worker threads. Spawn workers in, retire the epoch
/// at a round boundary; the next epoch (if any) opens a fresh registry
/// over a freshly wired fabric.
pub(crate) struct DeviceRegistry {
    handles: Vec<(usize, JoinHandle<Result<WorkerOut, ExecError>>)>,
    /// Kernel pools, retained (handle clones) in `full` trace mode so
    /// retire can snapshot their steal/park/wake counters after the join.
    pools: Vec<ComputePool>,
    trace: Option<Arc<TraceCollector>>,
    /// First round the epoch's workers participate in.
    epoch_start: usize,
    /// First round past the epoch (the run's step count).
    epoch_end: usize,
}

impl DeviceRegistry {
    /// Opens an empty epoch covering rounds `[epoch_start, epoch_end)`.
    pub fn open(trace: Option<Arc<TraceCollector>>, epoch_start: usize, epoch_end: usize) -> Self {
        DeviceRegistry {
            handles: Vec::new(),
            pools: Vec::new(),
            trace,
            epoch_start,
            epoch_end,
        }
    }

    /// Spawns one device worker into the epoch. The worker body runs
    /// with `pool` installed as its kernel compute pool; a
    /// `worker_spawn` trace event is recorded at the epoch's first
    /// round.
    pub fn spawn(
        &mut self,
        device: usize,
        pool: ComputePool,
        body: impl FnOnce() -> Result<WorkerOut, ExecError> + Send + 'static,
    ) {
        if let Some(tc) = &self.trace {
            if tc.full() {
                self.pools.push(pool.clone());
            }
            let t = tc.now_ns();
            tc.event(SpanKind::WorkerSpawn, self.epoch_start as u32, t, t);
        }
        self.handles.push((
            device,
            std::thread::spawn(move || parallel::install(&pool, body)),
        ));
    }

    /// Retires the epoch: joins every worker (spawn order), records a
    /// `worker_retire` trace event per rank (at the loss/grow step for
    /// structurally stopped workers, the epoch end otherwise), folds the
    /// retained kernel-pool counters into the metrics registry, and
    /// returns each worker's structured result.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WorkerPanic`] if a worker thread panicked.
    pub fn retire(self) -> Result<Vec<Result<WorkerOut, ExecError>>, ExecError> {
        let DeviceRegistry {
            handles,
            pools,
            trace,
            epoch_end,
            ..
        } = self;
        let mut results = Vec::with_capacity(handles.len());
        for (_device, h) in handles {
            let r = h
                .join()
                .map_err(|p| ExecError::WorkerPanic(format!("{p:?}")))?;
            if let Some(tc) = &trace {
                let retired = match &r {
                    Err(ExecError::RankLost { step, .. })
                    | Err(ExecError::MembershipGrow { step }) => *step,
                    _ => epoch_end,
                };
                let t = tc.now_ns();
                tc.event(SpanKind::WorkerRetire, retired as u32, t, t);
            }
            results.push(r);
        }
        // With every worker joined the pool counters are final.
        if let Some(tc) = &trace {
            let m = tc.metrics();
            for pool in &pools {
                let st = pool.stats();
                m.counter("pool.steals").add(st.steals);
                m.counter("pool.parks").add(st.parks);
                m.counter("pool.wakes").add(st.wakes);
            }
        }
        Ok(results)
    }
}
