//! The functional executors: Algorithm 1 of the paper, with OS threads as
//! devices and channels as the PCIe relays.
//!
//! # Reference vs. threaded equivalence
//!
//! This module exists to demonstrate the paper's Section VII-D claim
//! mechanically: Pipe-BD reschedules *when* things execute but never
//! changes *what* is computed, so every strategy reaches the same trained
//! student. The [`mod@reference`] module provides the golden sequential
//! semantics; [`threaded`] runs the real multi-threaded pipeline; the
//! parity tests compare final parameters. The guarantees, in decreasing
//! strength:
//!
//! * **Bitwise** — any plan whose stages all have width 1 (pure teacher
//!   relaying, with or without decoupled updates) produces parameters and
//!   losses bit-identical to [`reference::run`], because every float op
//!   happens in the same order on the same values.
//! * **Near-exact** — plans with widened stages (AHD batch splitting)
//!   average shard gradients, which reorders float summation; parity is
//!   then bounded by accumulation error (the tests use `1e-4`), not
//!   scheduling. Caveat: this bound assumes per-sample layers. A
//!   batch-statistics layer (`BatchNorm2d` in `Mode::Train`) normalizes
//!   each shard by *shard* statistics where the reference uses
//!   full-batch statistics — a systematic difference, not rounding — so
//!   widened plans over batch-norm students trade exactness for
//!   parallelism (width-1 plans remain bitwise even with batch norm).
//!
//! Both executors are also exposed behind the [`Executor`] trait
//! ([`ReferenceExecutor`], [`ThreadedExecutor`]) so harness code can be
//! generic over the strategy under test.
//!
//! # Zero-copy data plane
//!
//! The threaded executor relays activations and broadcasts averaged
//! gradients as [`SharedTensor`] handles (`Arc`-backed, see
//! [`pipebd_tensor::SharedTensor`]): once a tensor is produced it is
//! immutable, and every hop — boundary caching, cross-stage relay sends,
//! gradient broadcast — transfers a reference-count bump instead of a
//! buffer. The invariants:
//!
//! * a relayed activation is never mutated after it is wrapped in a
//!   [`SharedTensor`]; mutation would require the copy-on-write
//!   [`SharedTensor::make_mut`], which the executor never calls on relayed
//!   data;
//! * the gradient gather *moves* each member's gradient buffers to the
//!   stage leader (ownership transfer through the channel, no copies), and
//!   the leader folds the average into the first contribution's buffers
//!   rather than allocating accumulators;
//! * averaged gradients are written back as *shared* handles
//!   (`Param::set_shared_grad`, a refcount bump per param) that the
//!   optimizer consumes in place, so the sharing path is copy-free end
//!   to end; per-step copies remain only where the batch genuinely
//!   changes shape (stage width transitions re-split the batch). See
//!   `ARCHITECTURE.md` for the full copy audit.
//!
//! [`SharedTensor`]: pipebd_tensor::SharedTensor
//! [`SharedTensor::make_mut`]: pipebd_tensor::SharedTensor::make_mut

pub mod fault;
pub mod recovery;
pub mod reference;
pub(crate) mod registry;
pub mod threaded;

use pipebd_data::SyntheticImageDataset;
use pipebd_nn::BlockNet;
use pipebd_sched::StagePlan;
use pipebd_tensor::TensorError;
use serde::{Deserialize, Serialize};

/// Error raised by an executor.
#[derive(Debug)]
pub enum ExecError {
    /// Configuration cannot be executed (plan/batch mismatch, …).
    Config(String),
    /// A tensor operation failed inside a device thread.
    Tensor(TensorError),
    /// A device thread panicked.
    WorkerPanic(String),
    /// Stage replicas diverged (would indicate a gradient-sharing bug).
    ReplicaDivergence {
        /// Block whose replicas differ.
        block: usize,
        /// Maximum absolute difference observed.
        diff: f32,
    },
    /// A rank was cancelled mid-run by the fault driver. Structured —
    /// never a hang: every surviving worker unblocks and surfaces this.
    RankLost {
        /// The lost GPU rank (logical device index of the failed run).
        rank: usize,
        /// The training step at which the rank died.
        step: usize,
    },
    /// The device set must grow: a scripted [`HostJoin`] came due, so
    /// the epoch stopped cleanly at a round boundary for the registry to
    /// re-wire the channel graph over the enlarged member set. Like
    /// [`ExecError::RankLost`], structured and never a hang — every
    /// incumbent worker stops at exactly this step.
    ///
    /// [`HostJoin`]: pipebd_sim::FaultEvent::HostJoin
    MembershipGrow {
        /// The first training step the joined rank participates in.
        step: usize,
    },
    /// The recovery protocol exhausted its restore budget (and no
    /// reference fallback was configured).
    RecoveryExhausted {
        /// Restore attempts consumed before giving up.
        attempts: usize,
    },
    /// Checkpoint capture, persistence, or restore failed.
    Checkpoint(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Config(m) => write!(f, "bad executor config: {m}"),
            ExecError::Tensor(e) => write!(f, "tensor error in worker: {e}"),
            ExecError::WorkerPanic(m) => write!(f, "device thread panicked: {m}"),
            ExecError::ReplicaDivergence { block, diff } => {
                write!(f, "replicas of block {block} diverged by {diff}")
            }
            ExecError::RankLost { rank, step } => {
                write!(f, "rank {rank} lost at step {step}")
            }
            ExecError::MembershipGrow { step } => {
                write!(f, "membership grows at step {step}")
            }
            ExecError::RecoveryExhausted { attempts } => {
                write!(f, "recovery exhausted after {attempts} restore attempts")
            }
            ExecError::Checkpoint(m) => write!(f, "checkpoint failure: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TensorError> for ExecError {
    fn from(e: TensorError) -> Self {
        ExecError::Tensor(e)
    }
}

/// Functional training configuration.
#[derive(Debug, Clone)]
pub struct FuncConfig {
    /// Number of device threads.
    pub devices: usize,
    /// Optimizer steps to run.
    pub steps: usize,
    /// Global batch size (must be divisible by any stage width used).
    pub batch: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Stage plan for the threaded executor (defaults to contiguous).
    pub plan: Option<StagePlan>,
    /// Whether updates are decoupled (no inter-device barrier). Changes
    /// scheduling only; parity tests verify results are unchanged.
    pub decoupled_updates: bool,
    /// Host compute-lane budget for intra-stage kernel parallelism.
    /// The reference executor installs one pool of this size; the
    /// threaded executor divides it across device ranks
    /// ([`StagePlan::intra_pool_widths`]) so stage concurrency and
    /// kernel parallelism share one budget. `None` falls back to
    /// [`pipebd_tensor::parallel::default_pool_size`] (`PIPEBD_POOL` or
    /// the machine width); `Some(1)` pins every kernel serial. The
    /// tensor determinism contract keeps results bitwise identical
    /// across budgets.
    pub pool_size: Option<usize>,
}

impl Default for FuncConfig {
    fn default() -> Self {
        FuncConfig {
            devices: 2,
            steps: 4,
            batch: 8,
            lr: 0.05,
            momentum: 0.9,
            plan: None,
            decoupled_updates: true,
            pool_size: None,
        }
    }
}

impl FuncConfig {
    /// The resolved host compute-lane budget: `pool_size` if set, else
    /// the process default (`PIPEBD_POOL` or the machine width).
    pub fn pool_budget(&self) -> usize {
        self.pool_size
            .unwrap_or_else(pipebd_tensor::parallel::default_pool_size)
            .max(1)
    }
}

/// The outcome of functional training.
#[derive(Debug, Clone)]
pub struct FuncOutcome {
    /// Final student parameters, per block, in block order.
    pub params: Vec<Vec<pipebd_tensor::Tensor>>,
    /// Distillation loss per block per step.
    pub losses: Vec<Vec<f32>>,
}

impl FuncOutcome {
    /// Maximum absolute parameter difference against another outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcomes have different block/parameter structure.
    pub fn max_param_diff(&self, other: &FuncOutcome) -> f32 {
        assert_eq!(self.params.len(), other.params.len(), "block count differs");
        let mut max = 0.0f32;
        for (a, b) in self.params.iter().zip(other.params.iter()) {
            assert_eq!(a.len(), b.len(), "param count differs");
            for (ta, tb) in a.iter().zip(b.iter()) {
                max = max.max(ta.max_abs_diff(tb).expect("same shapes"));
            }
        }
        max
    }

    /// Maximum absolute per-step loss difference against another outcome
    /// (the conformance plane's loss-agreement metric; parameter agreement
    /// alone would miss a divergence that happens to cancel by the final
    /// step).
    ///
    /// # Panics
    ///
    /// Panics if the outcomes have different block/step structure.
    pub fn max_loss_diff(&self, other: &FuncOutcome) -> f32 {
        assert_eq!(self.losses.len(), other.losses.len(), "block count differs");
        let mut max = 0.0f32;
        for (a, b) in self.losses.iter().zip(other.losses.iter()) {
            assert_eq!(a.len(), b.len(), "step count differs");
            for (la, lb) in a.iter().zip(b.iter()) {
                max = max.max((la - lb).abs());
            }
        }
        max
    }

    /// Final loss of each block (last recorded step).
    pub fn final_losses(&self) -> Vec<f32> {
        self.losses
            .iter()
            .map(|l| l.last().copied().unwrap_or(f32::NAN))
            .collect()
    }
}

/// A blockwise-distillation training strategy.
///
/// Implementations take the same inputs and must produce the same trained
/// student (see the module docs for the exact equivalence guarantees), so
/// harness code — parity tests, benches, the `Experiment` facade — can be
/// generic over *how* the schedule executes.
pub trait Executor {
    /// Short strategy name for reports and traces.
    fn name(&self) -> &'static str;

    /// Trains `student` against `teacher` on `data` under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] for invalid configurations, tensor failures,
    /// worker panics, or replica divergence.
    fn run(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
    ) -> Result<FuncOutcome, ExecError>;
}

/// [`Executor`] running the golden sequential semantics
/// ([`reference::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceExecutor;

impl Executor for ReferenceExecutor {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn run(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
    ) -> Result<FuncOutcome, ExecError> {
        reference::run(teacher, student, data, cfg).map_err(ExecError::from)
    }
}

/// [`Executor`] running the multi-threaded Pipe-BD pipeline
/// ([`threaded::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedExecutor;

impl Executor for ThreadedExecutor {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(
        &self,
        teacher: &BlockNet,
        student: &BlockNet,
        data: &SyntheticImageDataset,
        cfg: &FuncConfig,
    ) -> Result<FuncOutcome, ExecError> {
        threaded::run(teacher, student, data, cfg)
    }
}

/// Which [`Executor`] implementation drives functional runs — the
/// `Experiment` facade's executor-selection knob, recorded in every
/// persisted [`RunReport`](crate::RunReport) so an artifact names the
/// execution engine behind its numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutorChoice {
    /// Golden sequential semantics ([`ReferenceExecutor`]).
    Reference,
    /// Real multi-threaded pipeline ([`ThreadedExecutor`]); the default.
    #[default]
    Threaded,
}

impl ExecutorChoice {
    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorChoice::Reference => "reference",
            ExecutorChoice::Threaded => "threaded",
        }
    }

    /// Constructs the chosen executor.
    pub fn executor(&self) -> Box<dyn Executor> {
        match self {
            ExecutorChoice::Reference => Box::new(ReferenceExecutor),
            ExecutorChoice::Threaded => Box::new(ThreadedExecutor),
        }
    }
}

impl std::fmt::Display for ExecutorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExecutorChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "reference" => Ok(ExecutorChoice::Reference),
            "threaded" => Ok(ExecutorChoice::Threaded),
            other => Err(format!(
                "unknown executor `{other}` (expected `reference` or `threaded`)"
            )),
        }
    }
}
