//! The threaded functional executor: Algorithm 1 of the paper, with OS
//! threads as devices and channels as the PCIe relays.
//!
//! This module exists to demonstrate the paper's Section VII-D claim
//! mechanically: Pipe-BD reschedules *when* things execute but never
//! changes *what* is computed, so every strategy reaches the same trained
//! student. The [`mod@reference`] module provides the golden sequential
//! semantics; [`threaded`] runs the real multi-threaded pipeline; the
//! parity tests compare final parameters.

pub mod reference;
pub mod threaded;

use pipebd_sched::StagePlan;

/// Functional training configuration.
#[derive(Debug, Clone)]
pub struct FuncConfig {
    /// Number of device threads.
    pub devices: usize,
    /// Optimizer steps to run.
    pub steps: usize,
    /// Global batch size (must be divisible by any stage width used).
    pub batch: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Stage plan for the threaded executor (defaults to contiguous).
    pub plan: Option<StagePlan>,
    /// Whether updates are decoupled (no inter-device barrier). Changes
    /// scheduling only; parity tests verify results are unchanged.
    pub decoupled_updates: bool,
}

impl Default for FuncConfig {
    fn default() -> Self {
        FuncConfig {
            devices: 2,
            steps: 4,
            batch: 8,
            lr: 0.05,
            momentum: 0.9,
            plan: None,
            decoupled_updates: true,
        }
    }
}

/// The outcome of functional training.
#[derive(Debug, Clone)]
pub struct FuncOutcome {
    /// Final student parameters, per block, in block order.
    pub params: Vec<Vec<pipebd_tensor::Tensor>>,
    /// Distillation loss per block per step.
    pub losses: Vec<Vec<f32>>,
}

impl FuncOutcome {
    /// Maximum absolute parameter difference against another outcome.
    ///
    /// # Panics
    ///
    /// Panics if the outcomes have different block/parameter structure.
    pub fn max_param_diff(&self, other: &FuncOutcome) -> f32 {
        assert_eq!(self.params.len(), other.params.len(), "block count differs");
        let mut max = 0.0f32;
        for (a, b) in self.params.iter().zip(other.params.iter()) {
            assert_eq!(a.len(), b.len(), "param count differs");
            for (ta, tb) in a.iter().zip(b.iter()) {
                max = max.max(ta.max_abs_diff(tb).expect("same shapes"));
            }
        }
        max
    }

    /// Final loss of each block (last recorded step).
    pub fn final_losses(&self) -> Vec<f32> {
        self.losses
            .iter()
            .map(|l| l.last().copied().unwrap_or(f32::NAN))
            .collect()
    }
}
