//! Per-rank peak memory accounting (the paper's Fig. 7).
//!
//! The accounting is analytic, mirroring how a framework's allocator peaks
//! during blockwise distillation:
//!
//! * resident weights: teacher parameters (fp32) of every teacher block the
//!   rank executes, plus student weights + gradients + momentum;
//! * live activations: the input boundary of every owned block is retained
//!   from the teacher pass until the student backward, plus the largest
//!   transient teacher/student activation footprint among owned blocks;
//! * decoupled update keeps one extra in-flight input buffer (the next
//!   round's activation arrives while the current one is still training).

use pipebd_models::Workload;
use pipebd_sched::{LsAssignment, StagePlan};

use crate::strategy::Strategy;

/// Fixed per-rank framework footprint: CUDA context, cuDNN workspaces, and
/// allocator cache. Every strategy pays it on every active rank, which is
/// why small (CIFAR-scale) workloads show modest *relative* memory
/// overheads in the paper despite large relative activation differences.
pub const FRAMEWORK_BYTES: u64 = 700 * (1 << 20);

fn teacher_weight_bytes(w: &Workload, blocks: impl Iterator<Item = usize>) -> u64 {
    blocks
        .map(|b| w.model.blocks[b].teacher_weight_bytes())
        .sum()
}

fn student_state_bytes(w: &Workload, blocks: impl Iterator<Item = usize>) -> u64 {
    blocks
        .map(|b| w.model.blocks[b].student_state_bytes())
        .sum()
}

/// Input boundaries retained for every owned block, at batch `n`.
fn retained_inputs(w: &Workload, blocks: &[usize], n: usize) -> u64 {
    blocks
        .iter()
        .map(|&b| 4 * n as u64 * w.model.blocks[b].in_shape.elems())
        .sum()
}

/// Largest transient activation (teacher fwd + student fwd/bwd) among the
/// owned blocks, at batch `n`.
fn peak_transient(w: &Workload, blocks: &[usize], n: usize) -> u64 {
    blocks
        .iter()
        .map(|&b| {
            let blk = &w.model.blocks[b];
            4 * n as u64 * (blk.teacher_peak_act_elems + blk.student_peak_act_elems)
        })
        .max()
        .unwrap_or(0)
}

fn relay_rank_bytes(w: &Workload, blocks: &[usize], n: usize, dpu_extra: bool) -> u64 {
    let mut bytes = teacher_weight_bytes(w, blocks.iter().copied())
        + student_state_bytes(w, blocks.iter().copied())
        + retained_inputs(w, blocks, n)
        + peak_transient(w, blocks, n);
    if dpu_extra {
        if let Some(&first) = blocks.first() {
            bytes += 4 * n as u64 * w.model.blocks[first].in_shape.elems();
        }
    }
    bytes
}

/// Computes per-rank peak memory in bytes for a strategy.
///
/// `plan` must be provided for relay-family strategies and `ls` for the
/// layerwise baseline (both as produced by the lowering).
pub fn memory_per_rank(
    strategy: Strategy,
    workload: &Workload,
    num_gpus: usize,
    global_batch: usize,
    plan: Option<&StagePlan>,
    ls: Option<&LsAssignment>,
) -> Vec<u64> {
    let w = workload;
    let b = w.num_blocks();
    let shard = global_batch.div_ceil(num_gpus);
    let mut ranks = raw_memory_per_rank(strategy, w, b, num_gpus, global_batch, shard, plan, ls);
    for r in &mut ranks {
        if *r > 0 {
            *r += FRAMEWORK_BYTES;
        }
    }
    ranks
}

#[allow(clippy::too_many_arguments)]
fn raw_memory_per_rank(
    strategy: Strategy,
    w: &Workload,
    b: usize,
    num_gpus: usize,
    global_batch: usize,
    shard: usize,
    plan: Option<&StagePlan>,
    ls: Option<&LsAssignment>,
) -> Vec<u64> {
    match strategy {
        Strategy::DataParallel => {
            // Peak over phases: phase i holds teacher prefix 0..=i and
            // student i at the shard batch.
            let peak = (0..b)
                .map(|i| {
                    let blocks: Vec<usize> = vec![i];
                    teacher_weight_bytes(w, 0..=i)
                        + student_state_bytes(w, std::iter::once(i))
                        + retained_inputs(w, &blocks, shard)
                        + peak_transient_prefix(w, i, shard)
                })
                .max()
                .unwrap_or(0);
            vec![peak; num_gpus]
        }
        Strategy::LayerwiseScheduling => {
            let ls = ls.expect("LS memory accounting needs the assignment");
            (0..num_gpus)
                .map(|d| {
                    let blocks = &ls.device_blocks[d];
                    if blocks.is_empty() {
                        return 0;
                    }
                    let max_block = *blocks.iter().max().expect("nonempty");
                    teacher_weight_bytes(w, 0..=max_block)
                        + student_state_bytes(w, blocks.iter().copied())
                        + retained_inputs(w, blocks, global_batch)
                        + peak_transient_prefix(w, max_block, global_batch)
                })
                .collect()
        }
        Strategy::TeacherRelaying | Strategy::TrDpu | Strategy::PipeBd => {
            let plan = plan.expect("relay memory accounting needs the plan");
            let dpu = strategy != Strategy::TeacherRelaying;
            (0..num_gpus)
                .map(|d| {
                    let Some(stage) = plan.stage_of_device(d) else {
                        return 0;
                    };
                    let blocks: Vec<usize> = stage.blocks().collect();
                    let n = stage.device_batch(global_batch);
                    let mut bytes = relay_rank_bytes(w, &blocks, n, dpu);
                    if stage.width() > 1 {
                        // Gradient-sharing staging buffer.
                        bytes += blocks
                            .iter()
                            .map(|&bk| 4 * w.model.blocks[bk].student_params)
                            .sum::<u64>();
                    }
                    bytes
                })
                .collect()
        }
        Strategy::TrIr => {
            let blocks: Vec<usize> = (0..b).collect();
            let per = teacher_weight_bytes(w, 0..b)
                + student_state_bytes(w, 0..b)
                + retained_inputs(w, &blocks, shard)
                + peak_transient(w, &blocks, shard);
            vec![per; num_gpus]
        }
    }
}

/// Peak transient of executing the teacher prefix `0..=i` plus student `i`.
fn peak_transient_prefix(w: &Workload, i: usize, n: usize) -> u64 {
    let teacher_peak = (0..=i)
        .map(|k| 4 * n as u64 * w.model.blocks[k].teacher_peak_act_elems)
        .max()
        .unwrap_or(0);
    let student = 4 * n as u64 * w.model.blocks[i].student_peak_act_elems;
    teacher_peak + student
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_sched::StagePlan;

    const GIB: f64 = (1u64 << 30) as f64;

    fn nas_imagenet_memory(strategy: Strategy, plan: Option<&StagePlan>) -> Vec<u64> {
        let w = Workload::nas_imagenet();
        memory_per_rank(strategy, &w, 4, 256, plan, None)
    }

    #[test]
    fn tr_rank0_dominates_on_imagenet() {
        // Fig. 7b: TR/TR+DPU memory peaks on rank 0 (early blocks carry
        // the big feature maps at full batch).
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let mem = nas_imagenet_memory(Strategy::TrDpu, Some(&plan));
        assert!(
            mem[0] > mem[1] && mem[0] > mem[2] && mem[0] > mem[3],
            "{mem:?}"
        );
    }

    #[test]
    fn dp_is_flat_across_ranks() {
        let mem = nas_imagenet_memory(Strategy::DataParallel, None);
        assert!(mem.iter().all(|&m| m == mem[0]));
    }

    #[test]
    fn ahd_flattens_rank0_versus_tr() {
        // Fig. 7: batch-splitting the early blocks reduces rank-0 memory.
        let tr_plan = StagePlan::contiguous(6, 4).unwrap();
        let tr = nas_imagenet_memory(Strategy::TrDpu, Some(&tr_plan));
        let ahd_plan = StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap();
        let ahd = nas_imagenet_memory(Strategy::PipeBd, Some(&ahd_plan));
        assert!(
            ahd[0] < tr[0],
            "AHD rank0 {:.2} GiB !< TR rank0 {:.2} GiB",
            ahd[0] as f64 / GIB,
            tr[0] as f64 / GIB
        );
    }

    #[test]
    fn magnitudes_are_plausible() {
        // Sanity: ImageNet NAS peaks land in single-to-tens of GiB, like
        // Fig. 7b (max ~20 GB).
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let mem = nas_imagenet_memory(Strategy::TrDpu, Some(&plan));
        let max = *mem.iter().max().unwrap() as f64 / GIB;
        assert!((1.0..64.0).contains(&max), "rank0 peak {max} GiB");
    }

    #[test]
    fn dpu_adds_an_input_buffer_over_tr() {
        let w = Workload::nas_imagenet();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let tr = memory_per_rank(Strategy::TeacherRelaying, &w, 4, 256, Some(&plan), None);
        let dpu = memory_per_rank(Strategy::TrDpu, &w, 4, 256, Some(&plan), None);
        assert!(dpu[0] > tr[0]);
    }

    #[test]
    fn ir_replicates_everything() {
        let w = Workload::nas_cifar10();
        let ir = memory_per_rank(Strategy::TrIr, &w, 4, 256, None, None);
        let dp = memory_per_rank(Strategy::DataParallel, &w, 4, 256, None, None);
        // IR holds all teacher+student state on every rank; DP holds only
        // the current phase's student. IR weights strictly larger.
        assert!(ir[0] > dp[0]);
    }
}
