//! Run reports: the measured outcome of one strategy on one workload.

use pipebd_sched::{LsAssignment, StagePlan};
use pipebd_sim::{Breakdown, SimTime};
use serde::{Deserialize, Serialize};

use crate::exec::ExecutorChoice;
use crate::strategy::Strategy;

/// The outcome of simulating one strategy.
///
/// Persisted as a schema-tagged JSON artifact by the artifact plane
/// (`pipebd_artifact`); every field round-trips exactly (times are integer
/// nanoseconds), so a reloaded report compares equal to the original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which strategy ran.
    pub strategy: Strategy,
    /// Which functional executor the experiment was configured with.
    pub executor: ExecutorChoice,
    /// Workload identifier (e.g. `"NAS/cifar10"`).
    pub workload: String,
    /// Hardware identifier (e.g. `"4x RTX A6000"`).
    pub hardware: String,
    /// Global batch size.
    pub global_batch: usize,
    /// Rounds actually simulated.
    pub simulated_rounds: u32,
    /// Rounds in a real epoch (`steps_per_epoch × rounds_per_step`).
    pub epoch_rounds: u64,
    /// Makespan of the simulated span.
    pub sim_makespan: SimTime,
    /// Extrapolated one-epoch time.
    pub epoch_time: SimTime,
    /// Per-rank time breakdown of the simulated span.
    pub breakdown: Breakdown,
    /// Per-rank peak memory in bytes.
    pub memory_per_rank: Vec<u64>,
    /// Stage plan (relay-family strategies).
    pub plan: Option<StagePlan>,
    /// Block assignment (LS baseline).
    pub ls_blocks: Option<Vec<Vec<usize>>>,
}

impl RunReport {
    /// Extrapolated epoch time in seconds.
    pub fn epoch_time_s(&self) -> f64 {
        self.epoch_time.as_secs_f64()
    }

    /// Speedup of `self` over a baseline report (ratio of epoch times).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        baseline.epoch_time_s() / self.epoch_time_s().max(f64::MIN_POSITIVE)
    }

    /// Peak memory over all ranks, in bytes.
    pub fn peak_memory(&self) -> u64 {
        self.memory_per_rank.iter().copied().max().unwrap_or(0)
    }

    /// Mean memory overhead of this run relative to a baseline, as a
    /// fraction (the paper reports Pipe-BD at +8.7% / +21.3% over DP).
    pub fn memory_overhead_over(&self, baseline: &RunReport) -> f64 {
        let own: f64 = self.memory_per_rank.iter().map(|&b| b as f64).sum();
        let base: f64 = baseline.memory_per_rank.iter().map(|&b| b as f64).sum();
        if base == 0.0 {
            return 0.0;
        }
        own / base - 1.0
    }

    /// Formats the Fig. 2 style breakdown row for one rank:
    /// `(data loading, teacher, student, idle)` in seconds, scaled to a
    /// full epoch.
    pub fn epoch_breakdown_row(&self, rank: usize) -> (f64, f64, f64, f64) {
        let scale = self.epoch_scale();
        let r = &self.breakdown.ranks[rank];
        (
            r.data_loading().as_secs_f64() * scale,
            r.teacher.as_secs_f64() * scale,
            r.student_total().as_secs_f64() * scale,
            r.idle.as_secs_f64() * scale,
        )
    }

    /// The multiplier from simulated span to one epoch.
    pub fn epoch_scale(&self) -> f64 {
        self.epoch_rounds as f64 / self.simulated_rounds.max(1) as f64
    }

    /// Record of the LS assignment, if this was an LS run.
    pub fn set_ls(&mut self, ls: &LsAssignment) {
        self.ls_blocks = Some(ls.device_blocks.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(strategy: Strategy, epoch_s: f64, mem: Vec<u64>) -> RunReport {
        RunReport {
            strategy,
            executor: ExecutorChoice::default(),
            workload: "test".into(),
            hardware: "test".into(),
            global_batch: 256,
            simulated_rounds: 10,
            epoch_rounds: 100,
            sim_makespan: SimTime::from_secs_f64(epoch_s / 10.0),
            epoch_time: SimTime::from_secs_f64(epoch_s),
            breakdown: Breakdown::default(),
            memory_per_rank: mem,
            plan: None,
            ls_blocks: None,
        }
    }

    #[test]
    fn speedup_ratio() {
        let dp = dummy(Strategy::DataParallel, 30.0, vec![100; 4]);
        let pb = dummy(Strategy::PipeBd, 10.0, vec![110; 4]);
        assert!((pb.speedup_over(&dp) - 3.0).abs() < 1e-9);
        assert!((dp.speedup_over(&dp) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_overhead_fraction() {
        let dp = dummy(Strategy::DataParallel, 30.0, vec![100; 4]);
        let pb = dummy(Strategy::PipeBd, 10.0, vec![110; 4]);
        assert!((pb.memory_overhead_over(&dp) - 0.1).abs() < 1e-9);
        assert_eq!(pb.peak_memory(), 110);
    }

    #[test]
    fn epoch_scale_multiplier() {
        let r = dummy(Strategy::TrDpu, 20.0, vec![1]);
        assert!((r.epoch_scale() - 10.0).abs() < 1e-12);
    }
}
