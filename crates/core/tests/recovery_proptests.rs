//! Property-based tests for the recovery plane: checkpoints round-trip
//! bitwise through JSON under *any* strategy and pool size, restore
//! attempts never exceed the configured budget, and a healthy fault
//! script never triggers the recovery machinery at all.

use std::sync::Arc;

use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
use pipebd_core::exec::threaded::{self, RunHooks};
use pipebd_core::exec::{reference, FuncConfig};
use pipebd_core::{Checkpoint, CheckpointPolicy, CheckpointSink, MemorySink};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sched::StagePlan;
use pipebd_sim::{FaultEvent, FaultScript};
use pipebd_tensor::Rng64;
use proptest::prelude::*;

const BLOCKS: usize = 4;
const BATCH: usize = 8;

fn nets(
    seed: u64,
) -> (
    pipebd_nn::BlockNet,
    pipebd_nn::BlockNet,
    SyntheticImageDataset,
) {
    let cfg = MiniConfig {
        blocks: BLOCKS,
        channels: 4,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(seed);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, BATCH, 4, seed.rotate_left(17));
    (teacher, student, data)
}

/// Any valid hybrid plan for 4 blocks on up to 4 devices whose widths
/// divide the batch — the full strategy space (TR, DPU, IR, hybrids).
fn plan_strategy() -> impl Strategy<Value = StagePlan> {
    let all: Vec<StagePlan> = pipebd_sched::enumerate_hybrid_plans(BLOCKS, 4)
        .into_iter()
        .filter(|p| p.stages.iter().all(|s| BATCH % s.width() == 0))
        .collect();
    let len = all.len();
    (0..len).prop_map(move |i| all[i].clone())
}

proptest! {
    // Every case trains at least one model; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any strategy, pool size, and update mode, a captured
    /// checkpoint survives the JSON round-trip bit for bit.
    #[test]
    fn checkpoint_roundtrips_bitwise_across_strategies_and_pools(
        plan in plan_strategy(),
        pool_idx in 0usize..3,
        dpu in any::<bool>(),
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let devices = plan.num_devices;
        let cfg = FuncConfig {
            devices,
            steps: 5,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan),
            decoupled_updates: dpu,
            pool_size: [None, Some(1), Some(2)][pool_idx],
        };
        let sink = Arc::new(MemorySink::default());
        let hooks = RunHooks {
            driver: None,
            resume: None,
            checkpoint: Some((
                CheckpointPolicy::every(2),
                Arc::clone(&sink) as Arc<dyn CheckpointSink>,
            )),
            trace: None,
        };
        threaded::run_hooked(&teacher, &student, &data, &cfg, &hooks).unwrap();

        let ckpt = sink.latest().unwrap().expect("a 5-step run checkpoints at round 4");
        prop_assert_eq!(ckpt.round, 4);
        prop_assert!(ckpt.validate(BLOCKS, BATCH).is_ok());

        let text = pipebd_json::to_string_pretty(&pipebd_json::to_value(&ckpt).unwrap()).unwrap();
        let back: Checkpoint = pipebd_json::from_value(&pipebd_json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, ckpt, "JSON round-trip must be bitwise");
    }

    /// The restore budget is a hard bound: however the script kills
    /// ranks, the report never records more restores than `max_restores`
    /// (exhaustion degrades to the reference fallback instead).
    #[test]
    fn restores_never_exceed_the_configured_bound(
        lost_rank in 0usize..2,
        loss_step in 1u32..5,
        max_restores in 0usize..3,
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let workload = Workload::synthetic(BLOCKS, false);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss { rank: lost_rank, at_step: loss_step }],
        };
        let cfg = FuncConfig {
            devices: 2,
            steps: 6,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: None,
            decoupled_updates: true,
            pool_size: Some(1),
        };
        let runner = RecoveryRunner {
            workload: &workload,
            script: &script,
            policy: RecoveryPolicy {
                max_restores,
                ..RecoveryPolicy::default()
            },
            sink: Arc::new(MemorySink::default()),
            trace: None,
        };
        let report = runner.run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert!(
            report.restores <= max_restores,
            "{} restores exceed the budget of {max_restores}",
            report.restores
        );
        prop_assert!(
            report.restores >= 1 || report.fell_back,
            "a mid-run host loss must trigger at least one restore or the fallback"
        );
        prop_assert_eq!(report.outcome.losses[0].len(), 6, "the run must still complete");
    }

    /// A healthy script never touches the recovery machinery — zero
    /// restores, zero replans, no fallback — and trains the same model
    /// as the undriven executor (slowdown pauses are wall-clock-only,
    /// and a healthy script has none).
    #[test]
    fn healthy_script_never_triggers_a_restore(
        plan in plan_strategy(),
        dpu in any::<bool>(),
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let workload = Workload::synthetic(BLOCKS, false);
        let script = FaultScript::healthy();
        let cfg = FuncConfig {
            devices: plan.num_devices,
            steps: 4,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan.clone()),
            decoupled_updates: dpu,
            pool_size: Some(1),
        };
        let runner = RecoveryRunner {
            workload: &workload,
            script: &script,
            policy: RecoveryPolicy::default(),
            sink: Arc::new(MemorySink::default()),
            trace: None,
        };
        let report = runner.run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert_eq!(report.restores, 0);
        prop_assert_eq!(report.replans, 0);
        prop_assert!(!report.fell_back);

        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        let diff = report.outcome.max_param_diff(&golden);
        let tolerance = if plan.uses_batch_split() { 1e-4 } else { 0.0 };
        prop_assert!(diff <= tolerance, "plan {}: diff {diff} > {tolerance}", plan);
    }
}
