//! Property-based tests for the recovery plane: checkpoints round-trip
//! bitwise through JSON under *any* strategy and pool size, restore
//! attempts never exceed the configured budget, a healthy fault script
//! never triggers the recovery machinery at all, the plan-lineage gate
//! keeps "torn sink" and "foreign checkpoint" failures distinct, and
//! elastic join → loss → rejoin compounds always terminate.

use std::sync::Arc;

use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
use pipebd_core::exec::threaded::{self, RunHooks};
use pipebd_core::exec::{reference, FuncConfig};
use pipebd_core::{Checkpoint, CheckpointPolicy, CheckpointSink, MemorySink};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sched::StagePlan;
use pipebd_sim::{FaultEvent, FaultScript};
use pipebd_tensor::Rng64;
use proptest::prelude::*;

const BLOCKS: usize = 4;
const BATCH: usize = 8;

fn nets(
    seed: u64,
) -> (
    pipebd_nn::BlockNet,
    pipebd_nn::BlockNet,
    SyntheticImageDataset,
) {
    let cfg = MiniConfig {
        blocks: BLOCKS,
        channels: 4,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(seed);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, BATCH, 4, seed.rotate_left(17));
    (teacher, student, data)
}

/// A sink whose persisted envelope is unreadable — the artifact store's
/// "torn file" failure mode, modeled at the trait level.
#[derive(Debug)]
struct TornSink;

impl CheckpointSink for TornSink {
    fn store(&self, _: &Checkpoint) -> Result<(), String> {
        Ok(())
    }

    fn latest(&self) -> Result<Option<Checkpoint>, String> {
        Err("checkpoint `ckpt`: parse error at byte 12".into())
    }
}

/// Any valid hybrid plan for 4 blocks on up to 4 devices whose widths
/// divide the batch — the full strategy space (TR, DPU, IR, hybrids).
fn plan_strategy() -> impl Strategy<Value = StagePlan> {
    let all: Vec<StagePlan> = pipebd_sched::enumerate_hybrid_plans(BLOCKS, 4)
        .into_iter()
        .filter(|p| p.stages.iter().all(|s| BATCH % s.width() == 0))
        .collect();
    let len = all.len();
    (0..len).prop_map(move |i| all[i].clone())
}

proptest! {
    // Every case trains at least one model; keep the counts moderate.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any strategy, pool size, and update mode, a captured
    /// checkpoint survives the JSON round-trip bit for bit.
    #[test]
    fn checkpoint_roundtrips_bitwise_across_strategies_and_pools(
        plan in plan_strategy(),
        pool_idx in 0usize..3,
        dpu in any::<bool>(),
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let devices = plan.num_devices;
        let cfg = FuncConfig {
            devices,
            steps: 5,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan),
            decoupled_updates: dpu,
            pool_size: [None, Some(1), Some(2)][pool_idx],
        };
        let sink = Arc::new(MemorySink::default());
        let hooks = RunHooks {
            driver: None,
            resume: None,
            checkpoint: Some((
                CheckpointPolicy::every(2),
                Arc::clone(&sink) as Arc<dyn CheckpointSink>,
            )),
            trace: None,
        };
        threaded::run_hooked(&teacher, &student, &data, &cfg, &hooks).unwrap();

        let ckpt = sink.latest().unwrap().expect("a 5-step run checkpoints at round 4");
        prop_assert_eq!(ckpt.round, 4);
        prop_assert!(ckpt.validate(BLOCKS, BATCH).is_ok());

        let text = pipebd_json::to_string_pretty(&pipebd_json::to_value(&ckpt).unwrap()).unwrap();
        let back: Checkpoint = pipebd_json::from_value(&pipebd_json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, ckpt, "JSON round-trip must be bitwise");
    }

    /// The restore budget is a hard bound: however the script kills
    /// ranks, the report never records more restores than `max_restores`
    /// (exhaustion degrades to the reference fallback instead).
    #[test]
    fn restores_never_exceed_the_configured_bound(
        lost_rank in 0usize..2,
        loss_step in 1u32..5,
        max_restores in 0usize..3,
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let workload = Workload::synthetic(BLOCKS, false);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss { rank: lost_rank, at_step: loss_step }],
        };
        let cfg = FuncConfig {
            devices: 2,
            steps: 6,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: None,
            decoupled_updates: true,
            pool_size: Some(1),
        };
        let runner = RecoveryRunner {
            workload: &workload,
            script: &script,
            policy: RecoveryPolicy {
                max_restores,
                ..RecoveryPolicy::default()
            },
            sink: Arc::new(MemorySink::default()),
            trace: None,
        };
        let report = runner.run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert!(
            report.restores <= max_restores,
            "{} restores exceed the budget of {max_restores}",
            report.restores
        );
        prop_assert!(
            report.restores >= 1 || report.fell_back,
            "a mid-run host loss must trigger at least one restore or the fallback"
        );
        prop_assert_eq!(report.outcome.losses[0].len(), 6, "the run must still complete");
    }

    /// A healthy script never touches the recovery machinery — zero
    /// restores, zero replans, no fallback — and trains the same model
    /// as the undriven executor (slowdown pauses are wall-clock-only,
    /// and a healthy script has none).
    #[test]
    fn healthy_script_never_triggers_a_restore(
        plan in plan_strategy(),
        dpu in any::<bool>(),
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let workload = Workload::synthetic(BLOCKS, false);
        let script = FaultScript::healthy();
        let cfg = FuncConfig {
            devices: plan.num_devices,
            steps: 4,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan.clone()),
            decoupled_updates: dpu,
            pool_size: Some(1),
        };
        let runner = RecoveryRunner {
            workload: &workload,
            script: &script,
            policy: RecoveryPolicy::default(),
            sink: Arc::new(MemorySink::default()),
            trace: None,
        };
        let report = runner.run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert_eq!(report.restores, 0);
        prop_assert_eq!(report.replans, 0);
        prop_assert!(!report.fell_back);

        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        let diff = report.outcome.max_param_diff(&golden);
        let tolerance = if plan.uses_batch_split() { 1e-4 } else { 0.0 };
        prop_assert!(diff <= tolerance, "plan {}: diff {diff} > {tolerance}", plan);
    }

    /// The plan-lineage gate keeps the two restore failure modes
    /// distinct for any plan: a checkpoint whose fingerprint is outside
    /// the run's lineage fails with the structured mismatch error (and
    /// names both sides), an in-lineage checkpoint resumes, and a torn
    /// sink propagates its own read error verbatim — never conflated
    /// with a mismatch.
    #[test]
    fn torn_and_mismatched_checkpoints_stay_distinct(
        plan in plan_strategy(),
        seed in 0u64..100,
    ) {
        let (teacher, student, data) = nets(seed);
        let cfg = FuncConfig {
            devices: plan.num_devices,
            steps: 5,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan.clone()),
            decoupled_updates: true,
            pool_size: Some(1),
        };
        let sink = Arc::new(MemorySink::default());
        let hooks = RunHooks {
            driver: None,
            resume: None,
            checkpoint: Some((
                CheckpointPolicy::every(2),
                Arc::clone(&sink) as Arc<dyn CheckpointSink>,
            )),
            trace: None,
        };
        threaded::run_hooked(&teacher, &student, &data, &cfg, &hooks).unwrap();

        // In-lineage resumes; every checkpoint carries the plan's stamp.
        let own = plan.fingerprint();
        let ckpt = sink
            .latest_matching(std::slice::from_ref(&own))
            .unwrap()
            .expect("a 5-step run checkpoints");
        prop_assert_eq!(&ckpt.plan_fingerprint, &own);

        // Foreign lineage is the structured mismatch, naming both sides.
        let foreign = "9x9:0000000000000bad".to_string();
        let err = sink
            .latest_matching(std::slice::from_ref(&foreign))
            .expect_err("a checkpoint from another plan must be refused");
        prop_assert!(err.contains("plan fingerprint mismatch"), "got: {err}");
        prop_assert!(err.contains(&own), "mismatch must name the stored stamp: {err}");
        prop_assert!(err.contains(&foreign), "mismatch must name the lineage: {err}");

        // A torn sink is a read failure, not a mismatch.
        let torn_err = TornSink
            .latest_matching(std::slice::from_ref(&own))
            .expect_err("a torn sink must fail loudly");
        prop_assert!(torn_err.contains("parse error"), "got: {torn_err}");
        prop_assert!(
            !torn_err.contains("mismatch"),
            "torn and mismatched must stay distinct: {torn_err}"
        );
    }

    /// An elastic join, a later host loss, and a still-later rejoin —
    /// the full grow/shrink/grow compound — always terminates with a
    /// complete run (never a deadlock, never a panic), stays within the
    /// restore budget, counts both growths, and replays bitwise for the
    /// width-1 incumbents the contiguous default produces.
    #[test]
    fn join_then_loss_then_rejoin_never_deadlocks(
        join_step in 1u32..4,
        loss_gap in 1u32..3,
        rejoin_gap in 1u32..3,
        lost_rank in 0usize..3,
        seed in 0u64..100,
    ) {
        let loss_step = join_step + loss_gap;
        let rejoin_step = loss_step + rejoin_gap;
        let (teacher, student, data) = nets(seed);
        let workload = Workload::synthetic(BLOCKS, false);
        // Rank 2 joins the 2-rank set mid-run, `lost_rank` (possibly the
        // joined rank itself) dies later, and fresh rank 3 rejoins last.
        let script = FaultScript {
            events: vec![
                FaultEvent::HostJoin { rank: 2, at_step: join_step },
                FaultEvent::HostLoss { rank: lost_rank, at_step: loss_step },
                FaultEvent::HostJoin { rank: 3, at_step: rejoin_step },
            ],
        };
        let cfg = FuncConfig {
            devices: 2,
            steps: 8,
            batch: BATCH,
            lr: 0.05,
            momentum: 0.9,
            plan: None,
            decoupled_updates: true,
            pool_size: Some(1),
        };
        let runner = RecoveryRunner {
            workload: &workload,
            script: &script,
            policy: RecoveryPolicy::default(),
            sink: Arc::new(MemorySink::default()),
            trace: None,
        };
        let report = runner.run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert_eq!(report.grows, 2, "both joins must grow the member set");
        prop_assert!(
            report.restores >= 1 || report.fell_back,
            "the loss must trigger the restore path"
        );
        prop_assert!(report.restores <= runner.policy.max_restores);
        prop_assert_eq!(report.outcome.losses[0].len(), 8, "the run must complete");

        let golden = reference::run(&teacher, &student, &data, &cfg).unwrap();
        prop_assert_eq!(
            report.outcome.max_param_diff(&golden),
            0.0,
            "width-1 grow/shrink/grow must replay bitwise"
        );
    }
}
