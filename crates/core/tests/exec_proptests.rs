//! Property-based tests for the threaded executor: for *any* valid stage
//! plan, real multi-threaded Pipe-BD training must match the sequential
//! definition — the strongest form of the paper's Section VII-D claim.

use pipebd_core::exec::{reference, threaded, FuncConfig};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipebd_sched::StagePlan;
use pipebd_tensor::Rng64;
use proptest::prelude::*;

/// Generates a random valid plan for `blocks` blocks on up to 4 devices
/// whose stage widths all divide `batch`.
fn plan_strategy(blocks: usize, batch: usize) -> impl Strategy<Value = StagePlan> {
    let all: Vec<StagePlan> = pipebd_sched::enumerate_hybrid_plans(blocks, 4)
        .into_iter()
        .filter(|p| p.stages.iter().all(|s| batch % s.width() == 0))
        .collect();
    let len = all.len();
    (0..len).prop_map(move |i| all[i].clone())
}

proptest! {
    // Each case trains two models; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn any_plan_matches_reference(
        plan in plan_strategy(4, 8),
        dpu in any::<bool>(),
        seed in 0u64..100,
    ) {
        let cfg = MiniConfig {
            blocks: 4,
            channels: 4,
            batch_norm: false,
        };
        let mut rng = Rng64::seed_from_u64(seed);
        let teacher = mini_teacher(cfg, &mut rng);
        let student = mini_student_dsconv(cfg, &mut rng);
        let data = SyntheticImageDataset::mini(64, 8, 4, seed);
        let func = FuncConfig {
            devices: 4,
            steps: 3,
            batch: 8,
            lr: 0.05,
            momentum: 0.9,
            plan: Some(plan.clone()),
            decoupled_updates: dpu,
            pool_size: None,
        };
        let golden = reference::run(&teacher, &student, &data, &func).unwrap();
        let parallel = threaded::run(&teacher, &student, &data, &func).unwrap();
        let diff = parallel.max_param_diff(&golden);
        // Width-1-only plans must be bitwise identical; batch-split plans
        // may reassociate float sums in the gradient average.
        let tolerance = if plan.uses_batch_split() { 1e-4 } else { 0.0 };
        prop_assert!(
            diff <= tolerance,
            "plan {plan} (dpu={dpu}): diff {diff} > {tolerance}"
        );
    }
}
