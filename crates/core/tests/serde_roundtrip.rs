//! Derive-level round-trip guarantees for the persisted report types: a
//! `RunReport` / `StagePlan` serialized to JSON and deserialized back
//! reproduces the original value exactly (all times are integer
//! nanoseconds, so equality is bitwise, not approximate).

use pipebd_core::{ExecutorChoice, ExperimentBuilder, RunReport, Strategy};
use pipebd_models::Workload;
use pipebd_sched::{enumerate_hybrid_plans, StagePlan};
use pipebd_sim::HardwareConfig;

fn real_report(strategy: Strategy) -> RunReport {
    ExperimentBuilder::new(Workload::synthetic(6, false))
        .hardware(HardwareConfig::a6000_server(4))
        .batch_size(64)
        .sim_rounds(4)
        .executor(ExecutorChoice::Reference)
        .build()
        .expect("valid experiment")
        .run(strategy)
        .expect("strategy lowers")
}

#[test]
fn run_report_roundtrips_exactly_for_every_strategy() {
    for strategy in Strategy::ALL {
        let report = real_report(strategy);
        let text = pipebd_json::to_string(&report).expect("serializes");
        let back: RunReport = pipebd_json::from_str(&text).expect("deserializes");
        assert_eq!(back, report, "round-trip drift for {strategy}");

        // Pretty text round-trips identically too.
        let pretty = pipebd_json::to_string_pretty(&report).expect("serializes pretty");
        let back: RunReport = pipebd_json::from_str(&pretty).expect("deserializes pretty");
        assert_eq!(back, report, "pretty round-trip drift for {strategy}");
    }
}

#[test]
fn run_report_json_shape_is_externally_tagged_and_field_named() {
    let report = real_report(Strategy::PipeBd);
    let value = pipebd_json::to_value(&report).expect("to_value");
    // Spot-check the concrete JSON layout the artifact plane relies on.
    assert_eq!(
        value.get("strategy").and_then(|v| v.as_str()),
        Some("PipeBd")
    );
    assert_eq!(
        value.get("executor").and_then(|v| v.as_str()),
        Some("Reference")
    );
    assert_eq!(value.get("global_batch").and_then(|v| v.as_u64()), Some(64));
    assert!(value.get("plan").is_some_and(|p| p.get("stages").is_some()));
    // Value-level round-trip as well: text -> Value -> text.
    let text = pipebd_json::to_string(&report).expect("to_string");
    assert_eq!(pipebd_json::parse(&text).expect("parses"), value);
}

#[test]
fn stage_plans_roundtrip_across_the_whole_enumeration() {
    for plan in enumerate_hybrid_plans(6, 4) {
        let text = pipebd_json::to_string(&plan).expect("serializes");
        let back: StagePlan = pipebd_json::from_str(&text).expect("deserializes");
        assert_eq!(back, plan);
        back.validate().expect("reloaded plan still valid");
    }
}

#[test]
fn unknown_fields_are_skipped_missing_fields_error() {
    let plan = StagePlan::contiguous(6, 4).expect("plan");
    let text = pipebd_json::to_string(&plan).expect("serializes");
    // Splice an unknown field into the object: forward-compatible loads.
    let with_extra = text.replacen('{', "{\"future_field\":[1,2,{}],", 1);
    let back: StagePlan = pipebd_json::from_str(&with_extra).expect("unknown field skipped");
    assert_eq!(back, plan);
    // Dropping a required field is an error, not a default.
    let without = text.replace("\"num_blocks\":", "\"nom_blocks\":");
    let err = pipebd_json::from_str::<StagePlan>(&without).unwrap_err();
    assert!(
        err.to_string().contains("missing field"),
        "unexpected error: {err}"
    );
}
