//! Executor-equivalence suite: the reference and threaded executors,
//! addressed uniformly through the [`Executor`] trait, must produce
//! identical training trajectories — losses at every step and final
//! parameters, bit for bit on width-1 plans. A single-step run with zero
//! momentum additionally pins the *gradients* (the parameter delta is
//! exactly `-lr * grad`), so a relay or aggregation bug that perturbed
//! gradients without changing the loss curve would still be caught.

use pipebd_core::exec::{Executor, FuncConfig, ReferenceExecutor, ThreadedExecutor};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipebd_nn::BlockNet;
use pipebd_tensor::Rng64;

fn setup(blocks: usize) -> (BlockNet, BlockNet, SyntheticImageDataset) {
    let cfg = MiniConfig {
        blocks,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(2024);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 11);
    (teacher, student, data)
}

#[test]
fn losses_and_params_are_bitwise_identical_across_executors() {
    let (teacher, student, data) = setup(4);
    let cfg = FuncConfig {
        devices: 4,
        steps: 8,
        batch: 8,
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    let executors: [&dyn Executor; 2] = [&ReferenceExecutor, &ThreadedExecutor];
    let outcomes: Vec<_> = executors
        .iter()
        .map(|e| {
            (
                e.name(),
                e.run(&teacher, &student, &data, &cfg)
                    .expect("executor runs"),
            )
        })
        .collect();
    let (_, golden) = &outcomes[0];
    for (name, outcome) in &outcomes[1..] {
        assert_eq!(
            outcome.max_param_diff(golden),
            0.0,
            "{name}: final parameters diverged from reference"
        );
        assert_eq!(
            outcome.losses, golden.losses,
            "{name}: per-step loss trajectory diverged from reference"
        );
    }
}

#[test]
fn single_step_gradients_are_bitwise_identical() {
    // One step, zero momentum: params move by exactly -lr * grad, so
    // bitwise-equal parameters here mean bitwise-equal gradients.
    let (teacher, student, data) = setup(4);
    let cfg = FuncConfig {
        devices: 4,
        steps: 1,
        batch: 8,
        momentum: 0.0,
        decoupled_updates: false,
        ..FuncConfig::default()
    };
    let golden = ReferenceExecutor
        .run(&teacher, &student, &data, &cfg)
        .expect("reference runs");
    let threaded = ThreadedExecutor
        .run(&teacher, &student, &data, &cfg)
        .expect("threaded runs");
    assert_eq!(
        threaded.max_param_diff(&golden),
        0.0,
        "first-step gradients diverged between executors"
    );
    assert_eq!(threaded.losses, golden.losses);
}

#[test]
fn executor_names_are_distinct() {
    assert_ne!(ReferenceExecutor.name(), ThreadedExecutor.name());
}
