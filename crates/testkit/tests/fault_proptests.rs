//! Fault-plane structural laws, checked across random fault scripts.
//!
//! Two properties the per-scenario ratio gates cannot express:
//!
//! 1. **Slowdown monotonicity** — making any host slower never makes the
//!    predicted *or* simulated steady-state period faster. The estimator
//!    side is exact (scaling a member's chain is monotone in the factor);
//!    the simulator side holds because per-resource FIFO dispatch keeps
//!    every finish time monotone in task durations, so only the settled
//!    tail window needs a hair of slack for transient alignment.
//! 2. **Replanning never loses** — on a membership-preserving script, the
//!    replanned schedule's steady tail period is never worse than the
//!    static schedule's (beyond a small transient slack). At estimator
//!    level this is exact: the incumbent plan is itself a candidate of
//!    the replan search, so the chosen plan's degraded estimate is a
//!    lower envelope. The tail window starts after every script settles
//!    and after the last splice, so the one-off `replan_overhead` is
//!    excluded — the law is about steady state, not the transition.

use pipebd_core::lower::fault::lower_faulted;
use pipebd_core::lower::Lowering;
use pipebd_models::Workload;
use pipebd_sched::replan::{degraded_estimate, replan, DegradedServer};
use pipebd_sched::{ahd, CostModel, Profiler, StagePlan};
use pipebd_sim::{simulate_faulted, FaultEvent, FaultScript, HardwareConfig, SimTime};
use pipebd_testkit::{round_period_of, FAULT_ROUNDS, FAULT_TAIL};
use proptest::prelude::*;

fn workload(index: usize) -> Workload {
    match index {
        0 => Workload::nas_cifar10(),
        1 => Workload::synthetic(6, true),
        _ => Workload::synthetic(6, false),
    }
}

fn incumbent(w: &Workload, hw: &HardwareConfig, batch: usize) -> StagePlan {
    let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, batch, hw.num_gpus);
    ahd::search(w, &table, hw, batch).plan
}

/// Persistent single-host slowdown from step 3 onward.
fn slow_script(rank: usize, factor: f64) -> FaultScript {
    FaultScript {
        events: vec![FaultEvent::Slowdown {
            rank,
            factor,
            start_step: 3,
            end_step: u32::MAX,
        }],
    }
}

/// Steady tail period of `graph` simulated under `script`.
fn tail_period(graph: &pipebd_sim::TaskGraph, script: &FaultScript) -> SimTime {
    let sim = simulate_faulted(graph, script).expect("valid fault simulation");
    round_period_of(graph, &sim.run, FAULT_ROUNDS, FAULT_TAIL)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn period_is_monotone_in_any_hosts_slowdown(
        wi in 0usize..3,
        ranks_i in 0usize..2,
        rank_pick in 0usize..4,
        base in 1.0f64..4.0,
        delta in 0.25f64..3.0,
    ) {
        let w = workload(wi);
        let ranks = [2usize, 4][ranks_i];
        let rank = rank_pick % ranks;
        let hw = HardwareConfig::a6000_server(ranks);
        let batch = 256usize;
        let plan = incumbent(&w, &hw, batch);
        let (f1, f2) = (base, base + delta);

        // Estimator: the degraded period never shrinks as the factor grows.
        let est = |f: f64| {
            let server = DegradedServer::at_step(&hw, &slow_script(rank, f), FAULT_ROUNDS - 1)
                .expect("slowdown scripts are valid");
            degraded_estimate(&plan, &server, &w, batch)
        };
        let (e1, e2) = (est(f1), est(f2));
        prop_assert!(
            e1 <= e2,
            "{} r{ranks} rank{rank}: estimate {e1} at {f1:.2}x > {e2} at {f2:.2}x",
            w.label()
        );

        // Simulator: same static schedule, two degradations of it.
        let l = Lowering::new(&w, &hw, batch, FAULT_ROUNDS);
        let lowered = lower_faulted(&l, &plan, &slow_script(rank, f1), false)
            .expect("static lowering under a slowdown");
        let (p1, p2) = (
            tail_period(&lowered.graph, &slow_script(rank, f1)),
            tail_period(&lowered.graph, &slow_script(rank, f2)),
        );
        prop_assert!(
            p1.as_secs_f64() <= p2.as_secs_f64() * 1.01,
            "{} r{ranks} rank{rank}: simulated tail {p1} at {f1:.2}x > {p2} at {f2:.2}x",
            w.label()
        );
    }

    #[test]
    fn replanning_never_worsens_the_steady_period(
        wi in 0usize..3,
        ranks_i in 0usize..2,
        rank_pick in 0usize..4,
        factor in 1.5f64..6.0,
        start in 2u32..8,
    ) {
        let w = workload(wi);
        let ranks = [2usize, 4][ranks_i];
        let rank = rank_pick % ranks;
        let hw = HardwareConfig::a6000_server(ranks);
        let batch = 256usize;
        let plan = incumbent(&w, &hw, batch);
        let script = FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank,
                factor,
                start_step: start,
                end_step: u32::MAX,
            }],
        };

        // Estimator level: exact — the incumbent is in the search space.
        let server = DegradedServer::at_step(&hw, &script, FAULT_ROUNDS - 1)
            .expect("slowdown scripts are valid");
        let decision = replan(&w, &server, batch);
        let incumbent_est = degraded_estimate(&plan, &server, &w, batch);
        prop_assert!(
            decision.estimate <= incumbent_est,
            "{} r{ranks}: replanned estimate {} > incumbent {incumbent_est} at {factor:.2}x",
            w.label(),
            decision.estimate
        );

        // Simulator level: the replanned schedule's settled tail is never
        // worse than the static schedule's (small slack for the refill
        // transient after the splice).
        let l = Lowering::new(&w, &hw, batch, FAULT_ROUNDS);
        let with = lower_faulted(&l, &plan, &script, true).expect("replanned lowering");
        let without = lower_faulted(&l, &plan, &script, false).expect("static lowering");
        let (pw, po) = (
            tail_period(&with.graph, &script),
            tail_period(&without.graph, &script),
        );
        prop_assert!(
            pw.as_secs_f64() <= po.as_secs_f64() * 1.05,
            "{} r{ranks} rank{rank} {factor:.2}x from {start}: replanned tail {pw} > static {po}",
            w.label()
        );
    }
}
