//! Estimator-vs-simulator monotonicity properties.
//!
//! Two structural laws the conformance plane pins beyond per-scenario
//! ratio checks:
//!
//! 1. **DP scaling** — adding ranks never increases the *predicted* DP
//!    makespan, and the event simulator agrees. Scoped to rank counts
//!    that divide the global batch: with a non-divisor count the
//!    ceiling-rounded shard genuinely adds total work (6 ranks × ⌈128/6⌉
//!    = 132 samples), so the law does not — and should not — hold there.
//! 2. **Pipeline fill** — the analytic fill time of a contiguous plan
//!    grows strictly with pipeline depth (every extra stage adds a relay
//!    hop and moves teacher work ahead of the last stage), and the
//!    simulated arrival of the last stage's first input tracks it.

use pipebd_core::lower::{lower, relay, Lowering};
use pipebd_core::Strategy;
use pipebd_models::Workload;
use pipebd_sched::{dp_makespan, fill_time, CostModel, Profiler, StagePlan};
use pipebd_sim::{simulate, HardwareConfig, Resource, SimTime, TaskKind};
use proptest::prelude::*;

fn workload(index: usize) -> Workload {
    match index {
        0 => Workload::nas_cifar10(),
        1 => Workload::compression_cifar10(),
        2 => Workload::nas_imagenet(),
        _ => Workload::synthetic(6, index % 2 == 0),
    }
}

/// Simulated time at which the last stage of a plan receives its first
/// input: the earliest start of a last-stage GPU task in round 0.
fn simulated_fill(l: &Lowering<'_>, plan: &StagePlan) -> SimTime {
    let lowered = relay::lower_plan(l, plan, true);
    let run = simulate(&lowered.graph);
    let last = plan.stages.last().expect("plans are nonempty");
    lowered
        .graph
        .iter()
        .filter(|(_, t)| {
            t.step == 0
                && t.kind == TaskKind::Teacher
                && matches!(t.resource, Resource::Gpu(d) if last.devices.contains(&d))
        })
        .map(|(id, _)| run.start_of(id))
        .min()
        .expect("last stage runs teachers in round 0")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn dp_makespan_never_increases_with_divisor_ranks(
        wi in 0usize..4,
        bi in 0usize..3,
    ) {
        let w = workload(wi);
        let batch = [128usize, 256, 512][bi];
        let mut prev_est = f64::INFINITY;
        let mut prev_sim = f64::INFINITY;
        for ranks in [1usize, 2, 4, 8] {
            let hw = HardwareConfig::a6000_server(ranks);
            let table = Profiler::new(CostModel::new(hw.gpu.clone()))
                .profile(&w.model, batch, ranks);
            let est = dp_makespan(&table, &w, &hw, batch, ranks, 2).as_secs_f64();
            prop_assert!(
                est <= prev_est * (1.0 + 1e-9),
                "estimator: {} b{batch}: {ranks} ranks predicts {est:.6}s > fewer-rank {prev_est:.6}s",
                w.label()
            );
            let l = Lowering::new(&w, &hw, batch, 2);
            let sim = simulate(&lower(&l, Strategy::DataParallel).unwrap().graph)
                .makespan
                .as_secs_f64();
            prop_assert!(
                sim <= prev_sim * (1.0 + 1e-9),
                "simulator: {} b{batch}: {ranks} ranks takes {sim:.6}s > fewer-rank {prev_sim:.6}s",
                w.label()
            );
            prev_est = est;
            prev_sim = sim;
        }
    }

    #[test]
    fn pipeline_fill_grows_with_depth(
        wi in 0usize..4,
        bi in 0usize..3,
    ) {
        let w = workload(wi);
        let batch = [128usize, 256, 512][bi];
        let max_stages = w.num_blocks().min(4);
        let hw = HardwareConfig::a6000_server(max_stages);
        let table = Profiler::new(CostModel::new(hw.gpu.clone()))
            .profile(&w.model, batch, max_stages);
        let l = Lowering::new(&w, &hw, batch, 2);
        let mut prev_est = SimTime::ZERO;
        let mut prev_sim = SimTime::ZERO;
        for stages in 1..=max_stages {
            // Contiguous plans with unused trailing ranks idle: rebuild the
            // plan at exactly `stages` devices so depth is the only axis.
            let plan = StagePlan::contiguous(w.num_blocks(), stages).unwrap();
            let est = fill_time(&plan, &table, &w, &hw, batch);
            prop_assert!(
                est > prev_est,
                "estimator: {} b{batch}: {stages}-stage fill {est} !> {prev_est}",
                w.label()
            );
            prev_est = est;
            if stages > 1 {
                // A 1-stage "pipeline" has no relay; compare from 2 up.
                let sim = simulated_fill(&l, &plan);
                prop_assert!(
                    sim >= prev_sim,
                    "simulator: {} b{batch}: {stages}-stage fill {sim} < {prev_sim}",
                    w.label()
                );
                prev_sim = sim;
            }
        }
    }
}
