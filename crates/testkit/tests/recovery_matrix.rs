//! The recovery slice of the conformance matrix, run in-test: one
//! kill-and-restore scenario per fault class in debug mode, so tier-1
//! always exercises the full recovery protocol (fault driver → rank loss
//! → checkpoint restore → replan → resume → replay-equivalence check),
//! plus the structured rejection of the one fault class the executor
//! cannot realize (elastic host joins).
//!
//! Recovery scenarios declare the blocked kernel policy; under the naive
//! CI leg these tests legitimately no-op (the release-mode
//! `regression_gate` lane sweeps the slice under its declared policy).

use std::sync::Arc;

use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
use pipebd_core::exec::{ExecError, FuncConfig};
use pipebd_core::MemorySink;
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sim::{FaultEvent, FaultScript};
use pipebd_tensor::Rng64;
use pipebd_testkit::{
    enumerate, run_scenario, ConformanceStrategy, FaultClass, Scenario, ToleranceBook,
};

/// The recovery scenarios, when the ambient kernel policy matches their
/// declared one (empty under the naive leg).
fn recovery_scenarios() -> Vec<Scenario> {
    let ambient = pipebd_tensor::kernel_policy().to_string();
    enumerate()
        .into_iter()
        .filter(|s| s.kernel_policy == ambient && s.fault.as_ref().is_some_and(|f| f.exec_recovery))
        .collect()
}

#[test]
fn one_kill_and_restore_scenario_per_class_conforms() {
    let scenarios = recovery_scenarios();
    if scenarios.is_empty() {
        return;
    }
    let book = ToleranceBook::gate_default();
    for class in [FaultClass::Slowdown, FaultClass::Loss, FaultClass::Compound] {
        let s = scenarios
            .iter()
            .find(|s| s.fault.as_ref().is_some_and(|f| f.class == class))
            .unwrap_or_else(|| panic!("no recovery scenario for {class:?}"));
        let outcome = run_scenario(s, &book);
        assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        assert!(outcome.recovery_checked, "{}: recovery did not run", s.id);
        match class {
            // Pure slowdowns stretch wall-clock only: no restore, and the
            // paused run still trains the identical model.
            FaultClass::Slowdown => {
                assert_eq!(outcome.restores, 0, "{}: slowdown restored", s.id);
            }
            // Host losses must genuinely kill and restore.
            _ => assert!(
                outcome.restores >= 1 || outcome.fell_back,
                "{}: loss script never exercised the protocol",
                s.id
            ),
        }
    }
}

#[test]
fn killed_width1_run_replays_bitwise() {
    // The tentpole claim at its strongest: a threaded run killed
    // mid-training by a host loss, restored from its checkpoint, and
    // replanned over the survivors trains *bitwise* identical parameters
    // to a run that was never interrupted.
    let Some(s) = recovery_scenarios().into_iter().find(|s| {
        s.strategy == ConformanceStrategy::TrDpu
            && s.fault
                .as_ref()
                .is_some_and(|f| f.class == FaultClass::Loss)
    }) else {
        return;
    };
    let outcome = run_scenario(&s, &ToleranceBook::gate_default());
    assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
    assert!(
        outcome.restores >= 1 || outcome.fell_back,
        "{}: the kill never fired",
        s.id
    );
    assert_eq!(outcome.exec_tolerance, 0.0, "width-1 asserts bitwise");
    assert_eq!(
        outcome.max_param_diff, 0.0,
        "{}: recovered width-1 run must replay bitwise",
        s.id
    );
}

#[test]
fn killed_batch_split_run_stays_within_the_recovery_budget() {
    let Some(s) = recovery_scenarios().into_iter().find(|s| {
        s.strategy == ConformanceStrategy::Hybrid
            && s.fault
                .as_ref()
                .is_some_and(|f| f.class == FaultClass::Loss)
    }) else {
        return;
    };
    let outcome = run_scenario(&s, &ToleranceBook::gate_default());
    assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
    assert!(
        outcome.exec_tolerance > 0.0,
        "batch-split incumbents carry the loss-parity budget"
    );
}

#[test]
fn join_scripts_are_rejected_structurally() {
    // The executor spawns a fixed thread set, so elastic joins are
    // unrealizable at the executor level — the recovery runner must say
    // so in a structured error, never hang or panic.
    let cfg = MiniConfig {
        blocks: 4,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(7);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 11);
    let workload = Workload::synthetic(4, false);
    let script = FaultScript {
        events: vec![FaultEvent::HostJoin {
            rank: 1,
            at_step: 3,
        }],
    };
    let func = FuncConfig {
        devices: 2,
        steps: 4,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: Some(1),
    };
    let runner = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let err = runner
        .run(&teacher, &student, &data, &func)
        .expect_err("host joins must be rejected");
    match err {
        ExecError::Config(msg) => {
            assert!(msg.contains("join"), "rejection must name the join: {msg}");
        }
        other => panic!("expected a structured Config rejection, got {other}"),
    }
}
