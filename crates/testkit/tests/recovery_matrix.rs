//! The recovery slice of the conformance matrix, run in-test: one
//! kill-and-restore scenario per fault class in debug mode, so tier-1
//! always exercises the full recovery protocol (fault driver → rank loss
//! → checkpoint restore → replan → resume → replay-equivalence check),
//! plus the elastic-growth paths: a host joining mid-run grows the
//! member set at a round boundary, and a lost host's hardware can rejoin
//! under a fresh rank — both replaying bitwise for width-1 incumbents.
//!
//! Recovery scenarios declare the blocked kernel policy; under the naive
//! CI leg these tests legitimately no-op (the release-mode
//! `regression_gate` lane sweeps the slice under its declared policy).

use std::sync::Arc;

use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
use pipebd_core::exec::{reference, FuncConfig};
use pipebd_core::MemorySink;
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig, Workload};
use pipebd_sim::{FaultEvent, FaultScript};
use pipebd_tensor::Rng64;
use pipebd_testkit::{
    enumerate, run_scenario, ConformanceStrategy, FaultClass, Scenario, ToleranceBook,
};

/// The recovery scenarios, when the ambient kernel policy matches their
/// declared one (empty under the naive leg).
fn recovery_scenarios() -> Vec<Scenario> {
    let ambient = pipebd_tensor::kernel_policy().to_string();
    enumerate()
        .into_iter()
        .filter(|s| s.kernel_policy == ambient && s.fault.as_ref().is_some_and(|f| f.exec_recovery))
        .collect()
}

#[test]
fn one_kill_and_restore_scenario_per_class_conforms() {
    let scenarios = recovery_scenarios();
    if scenarios.is_empty() {
        return;
    }
    let book = ToleranceBook::gate_default();
    for class in FaultClass::ALL {
        let s = scenarios
            .iter()
            .find(|s| s.fault.as_ref().is_some_and(|f| f.class == class))
            .unwrap_or_else(|| panic!("no recovery scenario for {class:?}"));
        let outcome = run_scenario(s, &book);
        assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        assert!(outcome.recovery_checked, "{}: recovery did not run", s.id);
        match class {
            // Pure slowdowns stretch wall-clock only: no restore, and the
            // paused run still trains the identical model.
            FaultClass::Slowdown => {
                assert_eq!(outcome.restores, 0, "{}: slowdown restored", s.id);
            }
            // Elastic joins grow the member set without spending any
            // restore budget.
            FaultClass::Join => {
                assert_eq!(outcome.restores, 0, "{}: join restored", s.id);
                assert!(outcome.grows >= 1, "{}: join grew nothing", s.id);
            }
            // Host losses must genuinely kill and restore.
            _ => assert!(
                outcome.restores >= 1 || outcome.fell_back,
                "{}: loss script never exercised the protocol",
                s.id
            ),
        }
    }
}

#[test]
fn killed_width1_run_replays_bitwise() {
    // The tentpole claim at its strongest: a threaded run killed
    // mid-training by a host loss, restored from its checkpoint, and
    // replanned over the survivors trains *bitwise* identical parameters
    // to a run that was never interrupted.
    let Some(s) = recovery_scenarios().into_iter().find(|s| {
        s.strategy == ConformanceStrategy::TrDpu
            && s.fault
                .as_ref()
                .is_some_and(|f| f.class == FaultClass::Loss)
    }) else {
        return;
    };
    let outcome = run_scenario(&s, &ToleranceBook::gate_default());
    assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
    assert!(
        outcome.restores >= 1 || outcome.fell_back,
        "{}: the kill never fired",
        s.id
    );
    assert_eq!(outcome.exec_tolerance, 0.0, "width-1 asserts bitwise");
    assert_eq!(
        outcome.max_param_diff, 0.0,
        "{}: recovered width-1 run must replay bitwise",
        s.id
    );
}

#[test]
fn killed_batch_split_run_stays_within_the_recovery_budget() {
    let Some(s) = recovery_scenarios().into_iter().find(|s| {
        s.strategy == ConformanceStrategy::Hybrid
            && s.fault
                .as_ref()
                .is_some_and(|f| f.class == FaultClass::Loss)
    }) else {
        return;
    };
    let outcome = run_scenario(&s, &ToleranceBook::gate_default());
    assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
    assert!(
        outcome.exec_tolerance > 0.0,
        "batch-split incumbents carry the loss-parity budget"
    );
}

/// Shared fixture for the elastic-growth tests: 4 blocks, 2 logical
/// devices, width-1 plans throughout (so replay equivalence is bitwise).
fn growth_fixture() -> (
    pipebd_nn::BlockNet,
    pipebd_nn::BlockNet,
    SyntheticImageDataset,
    Workload,
) {
    let cfg = MiniConfig {
        blocks: 4,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(7);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, 11);
    let workload = Workload::synthetic(4, false);
    (teacher, student, data, workload)
}

#[test]
fn join_scripts_complete_end_to_end_bitwise() {
    // ISSUE 10's tentpole claim: this exact script used to return
    // `ExecError::Config` ("the executor spawns a fixed thread set").
    // With the device-thread registry the host is simply absent at step
    // 0, the first epoch runs short-handed, and the join grows the
    // member set at its round boundary — training bitwise the same
    // model as a never-elastic run.
    let (teacher, student, data, workload) = growth_fixture();
    let script = FaultScript {
        events: vec![FaultEvent::HostJoin {
            rank: 1,
            at_step: 3,
        }],
    };
    let func = FuncConfig {
        devices: 2,
        steps: 4,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: Some(1),
    };
    let runner = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let report = runner
        .run(&teacher, &student, &data, &func)
        .expect("a join script must now complete end to end");
    assert_eq!(report.grows, 1, "the join must grow the member set");
    assert_eq!(report.restores, 0, "growth must not consume restore budget");
    assert!(!report.fell_back);
    assert_eq!(report.final_devices, 2, "the joined rank must be a member");
    let golden = reference::run(&teacher, &student, &data, &func).unwrap();
    assert_eq!(
        report.outcome.max_param_diff(&golden),
        0.0,
        "width-1 growth must replay bitwise"
    );
}

#[test]
fn killed_rank_rejoining_two_rounds_later_replays_bitwise() {
    // Loss + rejoin compound: rank 1 dies at step 3 and its hardware
    // comes back two rounds later under the fresh logical rank 2 (a
    // cancelled worker cannot restart, so rejoin is always a fresh id).
    // The run shrinks to one device, grows back to two, and still
    // trains bitwise the uninterrupted model.
    let (teacher, student, data, workload) = growth_fixture();
    let script = FaultScript {
        events: vec![
            FaultEvent::HostLoss {
                rank: 1,
                at_step: 3,
            },
            FaultEvent::HostJoin {
                rank: 2,
                at_step: 5,
            },
        ],
    };
    let func = FuncConfig {
        devices: 2,
        steps: 8,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: Some(1),
    };
    let runner = RecoveryRunner {
        workload: &workload,
        script: &script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let report = runner
        .run(&teacher, &student, &data, &func)
        .expect("loss + rejoin must complete end to end");
    assert!(report.restores >= 1, "the kill must fire");
    assert_eq!(report.grows, 1, "the rejoin must grow the member set");
    assert!(!report.fell_back);
    assert_eq!(
        report.final_devices, 2,
        "the rejoined rank must be a member"
    );
    let golden = reference::run(&teacher, &student, &data, &func).unwrap();
    assert_eq!(
        report.outcome.max_param_diff(&golden),
        0.0,
        "width-1 loss + rejoin must replay bitwise"
    );
}
