//! The conformance matrix, run in-test.
//!
//! Kernel policy discipline: these tests never touch the process-global
//! kernel policy — they run the scenarios whose declared policy matches
//! the ambient one (`PIPEBD_KERNEL_POLICY`), so the default CI leg covers
//! the blocked half of the matrix and the `PIPEBD_KERNEL_POLICY=naive`
//! leg covers the naive half, with no cross-test races. The full
//! both-policy sweep runs in the release-mode `regression_gate` CI lane.
//!
//! The default test samples the matrix (debug-mode budget); the exhaustive
//! ambient-policy sweep is `#[ignore]`d for on-demand runs:
//! `cargo test -p pipebd_testkit --test conformance -- --ignored`.

use pipebd_artifact::ArtifactStore;
use pipebd_testkit::{
    enumerate, run_scenario, ConformanceReport, Scenario, ScenarioSet, ToleranceBook,
};

/// Scenarios whose declared kernel policy matches the ambient one.
fn ambient_scenarios() -> Vec<Scenario> {
    let ambient = pipebd_tensor::kernel_policy().to_string();
    enumerate()
        .into_iter()
        .filter(|s| s.kernel_policy == ambient)
        .collect()
}

fn assert_all_pass(scenarios: impl Iterator<Item = Scenario>) {
    let book = ToleranceBook::gate_default();
    let mut ran = 0usize;
    for s in scenarios {
        let outcome = run_scenario(&s, &book);
        assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        ran += 1;
    }
    assert!(ran > 0, "no scenarios matched the ambient kernel policy");
}

#[test]
fn sampled_matrix_conforms_under_ambient_policy() {
    // Every 25th scenario: cheap enough for the debug-mode tier-1 run,
    // still touching every strategy — and the fault slice at the end of
    // the ordering — over the whole matrix.
    assert_all_pass(ambient_scenarios().into_iter().step_by(25));
}

#[test]
fn one_fault_scenario_per_class_conforms() {
    // The debug-mode fault smoke: the cheapest workload's fault slice,
    // one replanned scenario per fault class, so tier-1 exercises the
    // whole splice path even if sampling were to shift.
    let mut picked = Vec::new();
    for class in pipebd_testkit::FaultClass::ALL {
        let s = ambient_scenarios()
            .into_iter()
            .find(|s| {
                s.sim_workload == pipebd_testkit::SimWorkload::Synthetic
                    && s.ranks == 4
                    && s.fault
                        .as_ref()
                        .is_some_and(|f| f.class == class && f.replan)
            })
            .unwrap_or_else(|| panic!("no replanned {class:?} scenario at 4 ranks"));
        picked.push(s);
    }
    assert_all_pass(picked.into_iter());
}

#[test]
fn pooled_bitwise_scenarios_conform() {
    // The pool slice's strongest claim, run for real in tier-1: width-1
    // plans under a genuine kernel-parallelism budget must reproduce the
    // serial reference *bitwise* (the tensor determinism contract, end
    // to end through the executors). Pool scenarios declare the blocked
    // policy, so the naive CI leg legitimately has none.
    let pooled: Vec<Scenario> = ambient_scenarios()
        .into_iter()
        .filter(|s| s.pool_size > 1 && s.strategy == pipebd_testkit::ConformanceStrategy::TrDpu)
        .collect();
    if pooled.is_empty() {
        return;
    }
    let book = ToleranceBook::gate_default();
    for s in pooled {
        let outcome = run_scenario(&s, &book);
        assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        assert_eq!(
            outcome.max_param_diff, 0.0,
            "{}: pooled width-1 plan must be bitwise",
            outcome.id
        );
    }
}

#[test]
#[ignore = "exhaustive ambient-policy sweep (~minutes in debug); the release-mode regression_gate CI lane covers the full matrix"]
fn full_matrix_conforms_under_ambient_policy() {
    assert_all_pass(ambient_scenarios().into_iter());
}

#[test]
fn scenario_artifacts_roundtrip_through_the_store() {
    let root = std::env::temp_dir().join(format!("pipebd_testkit_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ArtifactStore::at(root);

    let set = ScenarioSet {
        description: "roundtrip".into(),
        scenarios: enumerate(),
    };
    store.save("CONFORMANCE_scenarios", &set).expect("save set");
    let back: ScenarioSet = store.load("CONFORMANCE_scenarios").expect("load set");
    assert_eq!(back, set);

    // One genuinely-run outcome survives persistence bit-for-bit.
    let book = ToleranceBook::gate_default();
    let ambient = pipebd_tensor::kernel_policy().to_string();
    let scenario = set
        .scenarios
        .iter()
        .find(|s| s.blocks == 3 && s.ranks == 2 && s.kernel_policy == ambient)
        .expect("small scenario exists");
    let outcome = run_scenario(scenario, &book);
    let report = ConformanceReport {
        scenarios: 1,
        failures: usize::from(!outcome.pass),
        outcomes: vec![outcome],
    };
    store
        .save("CONFORMANCE_report", &report)
        .expect("save report");
    let back: ConformanceReport = store.load("CONFORMANCE_report").expect("load report");
    assert_eq!(back, report);
}

#[test]
fn matrix_meets_the_declared_floor() {
    let all = enumerate();
    assert!(
        all.len() >= 400,
        "conformance matrix shrank to {} scenarios",
        all.len()
    );
    // Both CI policy legs must see a non-trivial share of the matrix.
    let naive = all.iter().filter(|s| s.kernel_policy == "naive").count();
    let blocked = all.iter().filter(|s| s.kernel_policy == "blocked").count();
    assert!(naive >= 20, "naive leg covers only {naive} scenarios");
    assert!(blocked >= 20, "blocked leg covers only {blocked} scenarios");
    // The fault and batch-norm slices must stay substantial.
    let faults = all.iter().filter(|s| s.fault.is_some()).count();
    assert!(faults >= 150, "fault slice shrank to {faults} scenarios");
    let bn = all.iter().filter(|s| s.batch_norm).count();
    assert!(bn >= 40, "batch-norm slice shrank to {bn} scenarios");
    let pooled = all.iter().filter(|s| s.pool_size > 1).count();
    assert!(pooled >= 30, "pool slice shrank to {pooled} scenarios");
}
