//! Executor equivalence under the naive kernel path, pinned explicitly.
//!
//! The CI matrix runs the whole tier-1 suite once per kernel policy
//! (`PIPEBD_KERNEL_POLICY=naive` leg), which keeps the naive oracle green
//! environment-wide; this test additionally pins the property *inside* a
//! default run, so a local `cargo test` cannot pass while the naive path
//! breaks executor parity.
//!
//! This file deliberately contains a single `#[test]`: it flips the
//! process-global kernel policy, and being alone in its test binary means
//! no concurrently-running test can observe the flip (other test binaries
//! are separate processes).

use pipebd_core::ExecutorChoice;
use pipebd_tensor::{kernel_policy, set_kernel_policy, KernelPolicy};
use pipebd_testkit::{enumerate, run_scenario, ConformanceStrategy, ToleranceBook};

#[test]
fn executor_equivalence_holds_under_naive_kernels() {
    let before = kernel_policy();
    set_kernel_policy(KernelPolicy::Naive);
    let result = std::panic::catch_unwind(|| {
        let book = ToleranceBook::gate_default();
        let all = enumerate();
        // One bitwise pipeline scenario and one gradient-averaging
        // scenario, both declared naive, smallest shapes in the matrix.
        for (strategy, blocks, ranks) in [
            (ConformanceStrategy::TrDpu, 3, 2),
            (ConformanceStrategy::TrIr, 3, 2),
        ] {
            let s = all
                .iter()
                .find(|s| {
                    s.strategy == strategy
                        && s.blocks == blocks
                        && s.ranks == ranks
                        && s.kernel_policy == "naive"
                        && s.subject == ExecutorChoice::Threaded
                })
                .expect("matrix covers the naive scenarios");
            let outcome = run_scenario(s, &book);
            assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        }
    });
    set_kernel_policy(before);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
