//! The trace differential, asserted: instrumented threaded runs agree
//! with the measured-profile estimator and simulator on
//! the acceptance strategies, and tracing never changes the math.

use std::sync::Arc;

use pipebd_core::exec::threaded::{self, RunHooks};
use pipebd_core::exec::FuncConfig;
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipebd_tensor::Rng64;
use pipebd_testkit::{run_trace_scenario, trace_scenarios, ToleranceBook, TRACE_TAIL};
use pipebd_trace::{TraceCollector, TraceMode};

#[test]
fn trace_differential_passes_on_acceptance_strategies() {
    let book = ToleranceBook::gate_default();
    let scenarios = trace_scenarios();
    assert_eq!(scenarios.len(), 3, "TR+DPU, hybrid, AHD");
    for s in &scenarios {
        let run = run_trace_scenario(s, &book).unwrap_or_else(|e| panic!("{}: {e}", s.id));
        let d = &run.differential;
        assert!(
            d.pass,
            "{}: {} (measured {}ns, predicted {}ns, simulated {}ns, \
             ratios {:.3}/{:.3}, lanes {})",
            s.id,
            d.detail,
            d.measured_period_ns,
            d.predicted_period_ns,
            d.simulated_period_ns,
            d.predicted_ratio,
            d.simulated_ratio,
            d.lanes
        );
        // The instrumented run must have drained complete rings: a
        // dropped span would silently bias the measured profile.
        assert_eq!(run.summary.dropped, 0, "{}: spans dropped", s.id);
        assert!(run.summary.spans > 0);
        assert_eq!(run.summary.tail, TRACE_TAIL);
        // Full mode also snapshots the pool counters.
        assert!(
            run.report.metrics.counter("pool.steals").is_some(),
            "{}: pool counters missing from full-mode metrics",
            s.id
        );
    }
}

#[test]
fn tracing_never_changes_the_math() {
    // PIPEBD_TRACE=off (no collector) vs full instrumentation: bitwise
    // identical parameters and losses — the overhead contract, asserted
    // at the strongest possible level.
    let s = &trace_scenarios()[0];
    let cfg = MiniConfig {
        blocks: s.blocks,
        channels: 6,
        batch_norm: s.batch_norm,
    };
    let build = || {
        let mut rng = Rng64::seed_from_u64(s.seed);
        let teacher = mini_teacher(cfg, &mut rng);
        let student = mini_student_dsconv(cfg, &mut rng);
        (teacher, student)
    };
    let data = SyntheticImageDataset::mini(64, 8, 4, s.seed.rotate_left(17));
    let (plan, dpu) = s.exec_plan().unwrap();
    let func = FuncConfig {
        devices: s.ranks,
        steps: s.exec_steps,
        batch: s.exec_batch,
        lr: 0.05,
        momentum: 0.9,
        plan: Some(plan),
        decoupled_updates: dpu,
        pool_size: Some(s.pool_size),
    };

    let (teacher, student) = build();
    let plain = threaded::run(&teacher, &student, &data, &func).unwrap();

    let (teacher, student) = build();
    let collector = TraceCollector::new(TraceMode::Full);
    let hooks = RunHooks {
        trace: Some(Arc::clone(&collector)),
        ..RunHooks::default()
    };
    let traced = threaded::run_hooked(&teacher, &student, &data, &func, &hooks).unwrap();
    let report = collector.drain();

    assert_eq!(
        traced.max_param_diff(&plain),
        0.0,
        "instrumentation changed trained parameters"
    );
    assert_eq!(
        traced.max_loss_diff(&plain),
        0.0,
        "instrumentation changed the loss trajectory"
    );
    assert!(report.span_count() > 0, "the traced run recorded nothing");
}
