//! The trace differential: an *instrumented* threaded run against the
//! analytic estimator and the event simulator, on the executor's own
//! measured block times.
//!
//! The conformance plane's other differentials compare models against
//! models (estimator vs simulator) or semantics against semantics
//! (executors bitwise). This one closes the last gap the paper's
//! reproduction leaves open: does the *wall clock* of the real threaded
//! executor behave the way the planning stack predicts? The harness runs
//! one instrumented scenario, builds a [`ProfileTable`] from the measured
//! spans ([`pipebd_trace::measured_profile`]), feeds it to both
//! predictors, and checks the measured steady-state period and bottleneck
//! stage against them under [`ToleranceBook::trace`].
//!
//! # Why max-stage-time transfers to a timesharing host
//!
//! `sched::estimate` and the simulator assume each device rank is real
//! parallel hardware; the threaded executor's "devices" are threads
//! timesharing whatever cores the host offers. That gap closes itself:
//! a span's wall duration *includes* the time its thread sat descheduled
//! while peers ran, so on an oversubscribed host every measured block
//! time is already inflated by exactly the contention the run
//! experienced. Feeding those inflated times back into the estimator,
//! the heaviest stage's thread spends nearly the whole wall period
//! inside work spans, so `max(stage_time)` over the measured profile
//! approximates the wall period on *any* core count — the measured
//! profile self-calibrates, and no explicit core folding is sound (a
//! `total_work / lanes` fold would count the same contention twice).
//! [`compute_lanes`] is recorded in the verdict so runs from hosts with
//! different lane counts are never compared to each other.
//!
//! # Calibration
//!
//! Relays and gradient shares between threads are refcount bumps and
//! shared-memory sums — effectively free next to the modeled PCIe. The
//! comparison hardware therefore zeroes the interconnect (near-infinite
//! bandwidth, zero latency) and derives the host collate cost from the
//! measured stage-0 load spans, so both predictors describe the machine
//! the run actually happened on.

use std::sync::Arc;

use pipebd_core::exec::threaded::{self, RunHooks};
use pipebd_core::exec::FuncConfig;
use pipebd_core::lower::{relay, Lowering};
use pipebd_core::ExecutorChoice;
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipebd_sched::{bottleneck_stage, estimate_period, StagePlan};
use pipebd_sim::{busy_per_gpu, simulate, SimRun, SimTime, TaskGraph};
use pipebd_tensor::Rng64;
use pipebd_trace::{
    measured_profile, summarize, SpanKind, TraceCollector, TraceDifferential, TraceMode,
    TraceReport, TraceSummary,
};

use crate::differential::round_period_of;
use crate::{ConformanceStrategy, Scenario, SimWorkload, ToleranceBook};

/// Steps the trace differential trains for (enough that the tail window
/// sits past pipeline fill and first-touch warm-up).
pub const TRACE_STEPS: usize = 12;
/// Tail steps averaged for the measured steady-state period.
pub const TRACE_TAIL: u32 = 4;

/// Everything one trace differential produced, for reporting and export.
pub struct TraceRun {
    /// The scenario that ran.
    pub scenario_id: String,
    /// The drained span/metrics report of the instrumented run.
    pub report: TraceReport,
    /// The measured timeline summary.
    pub summary: TraceSummary,
    /// The measured-vs-predicted verdict.
    pub differential: TraceDifferential,
    /// The simulator graph lowered from the measured profile (shares
    /// track naming with the report in the Chrome export).
    pub graph: TaskGraph,
    /// The simulated run of that graph.
    pub sim_run: SimRun,
}

/// Compute lanes the host actually offers `ranks` device threads.
pub fn compute_lanes(ranks: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(ranks.max(1))
}

/// One trace scenario per acceptance strategy: TR+DPU, the fixed hybrid
/// plan, and the AHD search winner — the strategies whose steady-state
/// story the paper's figures rest on.
pub fn trace_scenarios() -> Vec<Scenario> {
    [
        ConformanceStrategy::TrDpu,
        ConformanceStrategy::Hybrid,
        ConformanceStrategy::Ahd,
    ]
    .into_iter()
    .map(|strategy| {
        let id = format!("trace-{}-r4", strategy.label());
        Scenario {
            seed: fnv1a(&id),
            id,
            blocks: 4,
            heavy_first: false,
            sim_workload: SimWorkload::Synthetic,
            supernet: false,
            ranks: 4,
            sim_batch: 256,
            exec_batch: 16,
            exec_steps: TRACE_STEPS,
            strategy,
            subject: ExecutorChoice::Threaded,
            kernel_policy: "blocked".into(),
            pool_size: 1,
            batch_norm: false,
            fault: None,
        }
    })
    .collect()
}

/// FNV-1a over a string — same id→seed derivation as the enumerator.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mean duration of the warm stage-0 load spans, in nanoseconds.
fn measured_load_ns(report: &TraceReport) -> Option<u64> {
    let mut sum = 0u64;
    let mut n = 0u64;
    for track in report.tracks.iter().filter(|t| t.stage == 0) {
        for span in &track.spans {
            if span.kind == SpanKind::Load && span.step >= 1 {
                sum += span.dur_ns();
                n += 1;
            }
        }
    }
    (n > 0).then(|| sum / n)
}

/// The simulated hardware calibrated to the instrumented run: the real
/// GPU model is irrelevant (all block times come from the measured
/// profile), the interconnect is zeroed (thread relays are refcount
/// bumps), and the collate cost reproduces the measured stage-0 load.
fn calibrated_hardware(s: &Scenario, load_ns: u64, db0: usize) -> pipebd_sim::HardwareConfig {
    let mut hw = s.hardware();
    hw.pcie.bandwidth = 1e18;
    hw.pcie.latency = SimTime::ZERO;
    hw.host.collate_us_per_sample = load_ns as f64 / 1000.0 / db0.max(1) as f64;
    hw
}

/// Stage index owning device rank `d` under `plan`.
fn stage_of_device(plan: &StagePlan, d: usize) -> usize {
    plan.stages
        .iter()
        .position(|st| st.devices.contains(&d))
        .unwrap_or(0)
}

/// Runs one instrumented scenario and judges the measured timeline
/// against the analytic and simulated predictions on the run's own
/// measured profile.
///
/// # Errors
///
/// Returns a message when the scenario cannot be planned, the run fails,
/// or the trace is too sparse to summarize.
pub fn run_trace_scenario(s: &Scenario, book: &ToleranceBook) -> Result<TraceRun, String> {
    let cfg = MiniConfig {
        blocks: s.blocks,
        channels: 6,
        batch_norm: s.batch_norm,
    };
    let mut rng = Rng64::seed_from_u64(s.seed);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(64, 8, 4, s.seed.rotate_left(17));
    let (plan, dpu) = s.exec_plan()?;
    let func = FuncConfig {
        devices: s.ranks,
        steps: s.exec_steps,
        batch: s.exec_batch,
        lr: 0.05,
        momentum: 0.9,
        plan: Some(plan.clone()),
        decoupled_updates: dpu,
        pool_size: Some(s.pool_size),
    };

    let collector = TraceCollector::new(TraceMode::Full);
    let hooks = RunHooks {
        trace: Some(Arc::clone(&collector)),
        ..RunHooks::default()
    };
    threaded::run_hooked(&teacher, &student, &data, &func, &hooks)
        .map_err(|e| format!("instrumented run failed: {e}"))?;
    let report = collector.drain();
    let summary = summarize(&report, s.exec_steps as u32, TRACE_TAIL)?;

    // Measured per-block profile + calibrated hardware → both predictors
    // describe the machine the run happened on.
    let table = measured_profile(&report, &plan, s.exec_batch)?;
    let load_ns = measured_load_ns(&report).ok_or("no stage-0 load spans")?;
    let db0 = plan.stages[0].device_batch(s.exec_batch);
    let w = s.workload();
    let hw = calibrated_hardware(s, load_ns, db0);

    let analytic = estimate_period(&plan, &table, &w, &hw, s.exec_batch);
    let (predicted_stage, predicted_margin) =
        bottleneck_stage(&plan, &table, &w, &hw, s.exec_batch);

    let rounds = s.exec_steps as u32;
    let l = Lowering::new(&w, &hw, s.exec_batch, rounds).with_profile(&table);
    let lowered = relay::lower_plan(&l, &plan, dpu);
    let sim_run = simulate(&lowered.graph);
    let simulated = round_period_of(&lowered.graph, &sim_run, rounds, TRACE_TAIL);

    // No core folding: the measured block times already carry the host's
    // timesharing contention (see the module docs), so the max-stage-time
    // predictions compare directly against the wall period.
    let lanes = compute_lanes(s.ranks);
    let predicted_period_ns = analytic.as_ns();
    let simulated_period_ns = simulated.as_ns();

    let measured = summary.measured_period_ns;
    let ratio = |p: u64| {
        if p == 0 {
            f64::INFINITY
        } else {
            measured as f64 / p as f64
        }
    };
    let predicted_ratio = ratio(predicted_period_ns);
    let simulated_ratio = ratio(simulated_period_ns);
    let budget = book.trace;

    // Bottleneck agreement: only asserted when both the estimator and the
    // measurement call their winner decisively — near ties legitimately
    // flip under scheduler noise.
    let busy = busy_per_gpu(&lowered.graph);
    let sim_busiest = busy
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| **t)
        .map_or(0, |(d, _)| d);
    let bottleneck_simulated = stage_of_device(&plan, sim_busiest);
    let bottleneck_checked = plan.stages.len() >= 2
        && predicted_margin >= book.bottleneck_margin
        && summary.bottleneck_margin >= book.bottleneck_margin;
    let bottleneck_ok = !bottleneck_checked
        || (summary.bottleneck_stage == predicted_stage && bottleneck_simulated == predicted_stage);

    let period_ok = budget.contains(predicted_ratio) && budget.contains(simulated_ratio);
    let pass = period_ok && bottleneck_ok;
    let detail = if pass {
        String::new()
    } else if !period_ok {
        format!(
            "measured {measured}ns vs predicted {predicted_period_ns}ns / simulated \
             {simulated_period_ns}ns (ratios {predicted_ratio:.3}/{simulated_ratio:.3}, \
             budget {:.2}..{:.2})",
            budget.lo, budget.hi
        )
    } else {
        format!(
            "bottleneck disagrees: measured stage {} vs predicted {predicted_stage} \
             (simulated {bottleneck_simulated})",
            summary.bottleneck_stage
        )
    };

    let differential = TraceDifferential {
        strategy: s.strategy.label().to_string(),
        lanes,
        measured_period_ns: measured,
        predicted_period_ns,
        simulated_period_ns,
        predicted_ratio,
        simulated_ratio,
        ratio_lo: budget.lo,
        ratio_hi: budget.hi,
        bottleneck_measured: summary.bottleneck_stage,
        bottleneck_predicted: predicted_stage,
        bottleneck_simulated,
        bottleneck_checked,
        bottleneck_ok,
        pass,
        detail,
    };
    Ok(TraceRun {
        scenario_id: s.id.clone(),
        report,
        summary,
        differential,
        graph: lowered.graph,
        sim_run,
    })
}
