//! The differential harness: per scenario, run the executor parity check
//! and the simulator-vs-estimator check, judged against the declared
//! [`ToleranceBook`].
//!
//! Every check records what it measured (not just pass/fail): a
//! [`ScenarioOutcome`] carries the observed parameter/loss differences,
//! the simulated/analytic ratio, and the budgets they were judged
//! against, and a [`ConformanceReport`] bundling a whole sweep is a
//! persistable artifact — the regression gate's auditable record.

use std::sync::Arc;

use pipebd_core::exec::recovery::{RecoveryPolicy, RecoveryRunner};
use pipebd_core::exec::{reference, threaded, FuncConfig, FuncOutcome};
use pipebd_core::lower::fault::lower_faulted;
use pipebd_core::lower::{lower, relay, Lowering};
use pipebd_core::{ExecutorChoice, MemorySink, Strategy};
use pipebd_data::SyntheticImageDataset;
use pipebd_models::{mini_student_dsconv, mini_student_supernet, mini_teacher, MiniConfig};
use pipebd_sched::replan::degraded_estimate;
use pipebd_sched::{
    barrier_period, bottleneck_stage, dp_phase_period, estimate_period, ls, ls_round_period,
    CostModel, DegradedServer, Profiler, StagePlan,
};
use pipebd_sim::{busy_per_gpu, simulate, simulate_faulted, SimRun, SimTime, TaskGraph};
use pipebd_tensor::Rng64;
use serde::{Deserialize, Serialize};

use crate::{ConformanceStrategy, FaultCase, Scenario, ToleranceBook};
use pipebd_artifact::ArtifactPayload;

/// Rounds the fault differential lowers (long enough that the last fault
/// variant settles well before the tail window).
pub const FAULT_ROUNDS: u32 = 24;
/// Tail rounds the fault differential averages for its steady period.
pub const FAULT_TAIL: u32 = 6;

/// What one scenario measured, with the budgets it was judged against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario id this outcome belongs to.
    pub id: String,
    /// Maximum absolute parameter difference, subject vs reference.
    pub max_param_diff: f64,
    /// Maximum absolute per-step loss difference, subject vs reference.
    pub max_loss_diff: f64,
    /// The executor tolerance asserted (`0.0` = bitwise).
    pub exec_tolerance: f64,
    /// Whether the executor differential passed.
    pub exec_ok: bool,
    /// Simulated / analytic steady-state period ratio.
    pub sim_ratio: f64,
    /// Lower bound of the asserted ratio budget.
    pub ratio_lo: f64,
    /// Upper bound of the asserted ratio budget.
    pub ratio_hi: f64,
    /// Whether the simulator-vs-estimator check passed.
    pub sim_ok: bool,
    /// Whether the bottleneck-stage agreement check was asserted (only
    /// when the estimator's margin is decisive on a multi-stage plan).
    pub bottleneck_checked: bool,
    /// Whether the simulator's busiest rank sat in the estimator's
    /// predicted bottleneck stage (`true` when unchecked).
    pub bottleneck_ok: bool,
    /// Fault class label for fault scenarios, empty otherwise.
    pub fault_class: String,
    /// Whether online replanning was enabled (fault scenarios only).
    pub replan: bool,
    /// Total replanning overhead charged by the spliced lowering, in ns.
    pub replan_overhead_ns: u64,
    /// Plan segments the fault lowering spliced (`0` for non-fault
    /// scenarios, `1` when no splice happened).
    pub fault_segments: usize,
    /// Whether the executor-recovery differential ran (fault scenarios
    /// with `exec_recovery` only).
    pub recovery_checked: bool,
    /// Checkpoint restores the recovery protocol performed.
    pub restores: usize,
    /// Replanning passes the recovery protocol performed (executor-level;
    /// distinct from the sim lowering's `fault_segments`).
    pub exec_replans: usize,
    /// Membership growths the recovery protocol performed (elastic joins
    /// admitted at a round boundary; growth consumes no restore budget).
    pub grows: usize,
    /// Whether the recovered run finished on the reference-executor
    /// fallback after exhausting its restore budget.
    pub fell_back: bool,
    /// Overall verdict.
    pub pass: bool,
    /// Failure detail, empty on pass.
    pub detail: String,
}

/// A persisted conformance sweep: every scenario's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// Scenarios run.
    pub scenarios: usize,
    /// Scenarios that failed any check.
    pub failures: usize,
    /// Per-scenario outcomes, in sweep order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ArtifactPayload for ConformanceReport {
    const SCHEMA: &'static str = "pipebd.conformance_report";
    // V2: outcomes carry the fault fields (class, replan, overhead,
    // segment count).
    // V3: outcomes carry the executor-recovery fields (recovery_checked,
    // restores, exec_replans, fell_back).
    // V4: outcomes carry the elastic-growth count (`grows`).
    const VERSION: u32 = 4;
}

/// Steady-state period of a simulated task graph: the spread of the last
/// `tail` per-step completion times, averaged. `steps` is the total number
/// of `step` tags the graph was emitted with; the window must sit inside
/// one steady regime (for DP: within the last phase).
///
/// # Panics
///
/// Panics if `tail >= steps`.
pub fn simulated_round_period(graph: &TaskGraph, steps: u32, tail: u32) -> SimTime {
    round_period_of(graph, &simulate(graph), steps, tail)
}

/// [`simulated_round_period`] over an already-simulated run (the fault
/// differential simulates through `simulate_faulted`, which owns the
/// perturbed graph).
///
/// # Panics
///
/// Panics if `tail >= steps`.
pub fn round_period_of(graph: &TaskGraph, run: &SimRun, steps: u32, tail: u32) -> SimTime {
    assert!(tail < steps, "tail window must leave a base step");
    let mut end = vec![SimTime::ZERO; steps as usize];
    for (id, task) in graph.iter() {
        let f = run.finish[id.index()];
        let s = task.step as usize;
        if f > end[s] {
            end[s] = f;
        }
    }
    let last = end[steps as usize - 1];
    let base = end[steps as usize - 1 - tail as usize];
    SimTime::from_ns((last.as_ns() - base.as_ns()) / u64::from(tail))
}

/// The executor differential: reference semantics vs the scenario's
/// subject executor on real miniature models.
fn exec_differential(s: &Scenario) -> Result<(f64, f64), String> {
    let cfg = MiniConfig {
        blocks: s.blocks,
        channels: 6,
        batch_norm: s.batch_norm,
    };
    let mut rng = Rng64::seed_from_u64(s.seed);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = if s.supernet {
        mini_student_supernet(cfg, &mut rng)
    } else {
        mini_student_dsconv(cfg, &mut rng)
    };
    let data = SyntheticImageDataset::mini(64, 8, 4, s.seed.rotate_left(17));
    let (plan, dpu) = s.exec_plan()?;
    let func = FuncConfig {
        devices: s.ranks,
        steps: s.exec_steps,
        batch: s.exec_batch,
        lr: 0.05,
        momentum: 0.9,
        plan: Some(plan),
        decoupled_updates: dpu,
        // Both runs get the scenario's lane budget: the reference
        // installs one pool of this size, the threaded executor divides
        // it across device ranks. The determinism contract makes the
        // parity assertion independent of the budget — which is exactly
        // what the pool slice exists to prove.
        pool_size: Some(s.pool_size),
    };
    let golden = reference::run(&teacher, &student, &data, &func)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let subject: FuncOutcome = match s.subject {
        ExecutorChoice::Reference => reference::run(&teacher, &student, &data, &func)
            .map_err(|e| format!("second reference run failed: {e}"))?,
        ExecutorChoice::Threaded => threaded::run(&teacher, &student, &data, &func)
            .map_err(|e| format!("threaded run failed: {e}"))?,
    };
    Ok((
        f64::from(subject.max_param_diff(&golden)),
        f64::from(subject.max_loss_diff(&golden)),
    ))
}

/// The simulator-vs-estimator differential: lower the scenario's schedule
/// into the event simulator and compare its steady-state period against
/// the analytic prediction. Returns `(ratio, bottleneck_checked,
/// bottleneck_ok)`.
fn sim_differential(s: &Scenario, book: &ToleranceBook) -> Result<(f64, bool, bool), String> {
    let w = s.workload();
    let hw = s.hardware();
    let table =
        Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, s.sim_batch, s.ranks);
    match s.strategy {
        ConformanceStrategy::Dp => {
            let rounds = 6u32;
            let l = Lowering::new(&w, &hw, s.sim_batch, rounds);
            let lowered =
                lower(&l, Strategy::DataParallel).map_err(|e| format!("DP lowering: {e}"))?;
            let blocks = w.num_blocks();
            let steps = blocks as u32 * rounds;
            let simulated = simulated_round_period(&lowered.graph, steps, 3);
            let analytic = dp_phase_period(blocks - 1, &table, &w, &hw, s.sim_batch, s.ranks);
            Ok((ratio(simulated, analytic), false, true))
        }
        ConformanceStrategy::Ls => {
            let rounds = 8u32;
            let l = Lowering::new(&w, &hw, s.sim_batch, rounds);
            let lowered = lower(&l, Strategy::LayerwiseScheduling)
                .map_err(|e| format!("LS lowering: {e}"))?;
            let simulated = simulated_round_period(&lowered.graph, rounds, 4);
            let assignment = ls::pack(&w, &table, s.ranks, s.sim_batch);
            let analytic = ls_round_period(&assignment, &table, &w, &hw, s.sim_batch);
            Ok((ratio(simulated, analytic), false, true))
        }
        _ => {
            let (plan, dpu) = s
                .sim_plan()?
                .ok_or_else(|| "plan strategies carry a plan".to_string())?;
            let rounds = 16u32;
            let l = Lowering::new(&w, &hw, s.sim_batch, rounds);
            // Lower once; the same graph serves the steady-state period
            // measurement and the bottleneck busy-time check.
            let lowered = relay::lower_plan(&l, &plan, dpu);
            let simulated = simulated_round_period(&lowered.graph, rounds, 6);
            let analytic = if dpu {
                estimate_period(&plan, &table, &w, &hw, s.sim_batch)
            } else {
                barrier_period(&plan, &table, &w, &hw, s.sim_batch)
            };
            let (checked, ok) =
                bottleneck_agreement(&plan, &lowered.graph, &table, &w, &hw, s, book);
            Ok((ratio(simulated, analytic), checked, ok))
        }
    }
}

/// What the fault differential measured for one scenario.
struct FaultMeasurement {
    /// Simulated tail period / degraded analytic period.
    ratio: f64,
    /// Total replanning overhead the spliced lowering charged.
    overhead_ns: u64,
    /// Plan segments the lowering emitted.
    segments: usize,
}

/// The fault differential: lower the incumbent under the scenario's fault
/// script (replanning at cluster changes when enabled), degrade and
/// simulate the result, and compare the steady-state tail period against
/// the degraded-hardware analytic estimate of the plan in force at the
/// end of the schedule.
fn fault_differential(s: &Scenario, fault: &FaultCase) -> Result<FaultMeasurement, String> {
    let w = s.workload();
    let hw = s.hardware();
    let (plan, dpu) = s
        .sim_plan()?
        .ok_or_else(|| "fault scenarios need a stage-plan incumbent".to_string())?;
    if !dpu {
        return Err("fault scenarios require a DPU incumbent (the splice is DPU-only)".into());
    }
    let l = Lowering::new(&w, &hw, s.sim_batch, FAULT_ROUNDS);
    let lowered = lower_faulted(&l, &plan, &fault.script, fault.replan)
        .map_err(|e| format!("fault lowering: {e}"))?;
    let sim = simulate_faulted(&lowered.graph, &fault.script)
        .map_err(|e| format!("degraded simulation: {e}"))?;
    let simulated = round_period_of(&lowered.graph, &sim.run, FAULT_ROUNDS, FAULT_TAIL);
    // Every script settles before the tail window, so the cluster state at
    // the last round is the steady state the final segment planned for.
    let server = DegradedServer::at_step(&hw, &fault.script, FAULT_ROUNDS - 1)
        .map_err(|e| format!("degraded snapshot: {e}"))?;
    let analytic = degraded_estimate(&lowered.final_segment().plan, &server, &w, s.sim_batch);
    Ok(FaultMeasurement {
        ratio: ratio(simulated, analytic),
        overhead_ns: lowered.total_overhead.as_ns(),
        segments: lowered.segments.len(),
    })
}

/// What the executor-recovery differential measured for one scenario.
struct RecoveryMeasurement {
    /// Recovered vs uninterrupted-reference parameter drift.
    param_diff: f64,
    /// Recovered vs uninterrupted-reference loss drift.
    loss_diff: f64,
    /// Checkpoint restores the protocol performed.
    restores: usize,
    /// Executor-level replanning passes.
    replans: usize,
    /// Membership growths the protocol performed.
    grows: usize,
    /// Whether the run finished on the reference fallback.
    fell_back: bool,
}

/// The executor-recovery differential: drive the scenario's fault script
/// against the real threaded executor through the recovery protocol
/// (kill → restore latest checkpoint → replan over survivors → resume)
/// and compare the recovered parameters against an *uninterrupted*
/// reference run — the replay-equivalence claim, executed.
fn recovery_differential(s: &Scenario, fault: &FaultCase) -> Result<RecoveryMeasurement, String> {
    let cfg = MiniConfig {
        blocks: s.blocks,
        channels: 6,
        batch_norm: s.batch_norm,
    };
    let mut rng = Rng64::seed_from_u64(s.seed);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = if s.supernet {
        mini_student_supernet(cfg, &mut rng)
    } else {
        mini_student_dsconv(cfg, &mut rng)
    };
    let data = SyntheticImageDataset::mini(64, 8, 4, s.seed.rotate_left(17));
    let (plan, dpu) = s.exec_plan()?;
    let func = FuncConfig {
        devices: s.ranks,
        steps: s.exec_steps,
        batch: s.exec_batch,
        lr: 0.05,
        momentum: 0.9,
        plan: Some(plan),
        decoupled_updates: dpu,
        pool_size: Some(s.pool_size),
    };
    let golden = reference::run(&teacher, &student, &data, &func)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let workload = pipebd_models::Workload::synthetic(s.blocks, s.heavy_first);
    let runner = RecoveryRunner {
        workload: &workload,
        script: &fault.script,
        policy: RecoveryPolicy::default(),
        sink: Arc::new(MemorySink::default()),
        trace: None,
    };
    let report = runner
        .run(&teacher, &student, &data, &func)
        .map_err(|e| format!("recovery run failed: {e}"))?;
    Ok(RecoveryMeasurement {
        param_diff: f64::from(report.outcome.max_param_diff(&golden)),
        loss_diff: f64::from(report.outcome.max_loss_diff(&golden)),
        restores: report.restores,
        replans: report.replans,
        grows: report.grows,
        fell_back: report.fell_back,
    })
}

fn ratio(simulated: SimTime, analytic: SimTime) -> f64 {
    let a = analytic.as_secs_f64();
    if a <= 0.0 {
        return f64::INFINITY;
    }
    simulated.as_secs_f64() / a
}

/// When the estimator's bottleneck margin is decisive, the simulator's
/// busiest rank must sit in the predicted bottleneck stage. `graph` is
/// the plan's already-lowered task graph.
#[allow(clippy::too_many_arguments)]
fn bottleneck_agreement(
    plan: &StagePlan,
    graph: &TaskGraph,
    table: &pipebd_sched::ProfileTable,
    w: &pipebd_models::Workload,
    hw: &pipebd_sim::HardwareConfig,
    s: &Scenario,
    book: &ToleranceBook,
) -> (bool, bool) {
    if plan.stages.len() < 2 {
        return (false, true);
    }
    let (idx, margin) = bottleneck_stage(plan, table, w, hw, s.sim_batch);
    if margin < book.bottleneck_margin {
        return (false, true);
    }
    let busy = busy_per_gpu(graph);
    let busiest = busy
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| **t)
        .map(|(d, _)| d)
        .unwrap_or(0);
    (true, plan.stages[idx].devices.contains(&busiest))
}

/// Runs both differential checks for one scenario under the given
/// tolerance book.
///
/// The caller owns the process-global kernel policy: the regression gate
/// sets it per scenario (it sweeps sequentially), while in-test sweeps
/// filter scenarios to the ambient policy so parallel tests never touch
/// global state.
pub fn run_scenario(s: &Scenario, book: &ToleranceBook) -> ScenarioOutcome {
    let budget = match &s.fault {
        Some(f) => book.fault_budget(f.class),
        None => book.sim_budget(s.strategy),
    };
    let mut outcome = ScenarioOutcome {
        id: s.id.clone(),
        max_param_diff: f64::NAN,
        max_loss_diff: f64::NAN,
        exec_tolerance: f64::NAN,
        exec_ok: false,
        sim_ratio: f64::NAN,
        ratio_lo: budget.lo,
        ratio_hi: budget.hi,
        sim_ok: false,
        bottleneck_checked: false,
        bottleneck_ok: false,
        fault_class: s
            .fault
            .as_ref()
            .map(|f| f.class.label().to_string())
            .unwrap_or_default(),
        replan: s.fault.as_ref().is_some_and(|f| f.replan),
        replan_overhead_ns: 0,
        fault_segments: 0,
        recovery_checked: false,
        restores: 0,
        exec_replans: 0,
        grows: 0,
        fell_back: false,
        pass: false,
        detail: String::new(),
    };
    let mut failures: Vec<String> = Vec::new();

    if let Some(fault) = &s.fault {
        outcome.bottleneck_ok = true;
        if fault.exec_recovery {
            // The executor direction runs the recovery protocol: kill
            // mid-training, restore, replan, resume — and the recovered
            // model must match an uninterrupted reference run.
            outcome.recovery_checked = true;
            match (s.recovery_tolerance(), recovery_differential(s, fault)) {
                (Ok(tol), Ok(m)) => {
                    outcome.exec_tolerance = f64::from(tol);
                    outcome.max_param_diff = m.param_diff;
                    outcome.max_loss_diff = m.loss_diff;
                    outcome.restores = m.restores;
                    outcome.exec_replans = m.replans;
                    outcome.grows = m.grows;
                    outcome.fell_back = m.fell_back;
                    let worst = m.param_diff.max(m.loss_diff);
                    outcome.exec_ok = if tol == 0.0 {
                        worst == 0.0
                    } else {
                        worst < f64::from(tol)
                    };
                    if !outcome.exec_ok {
                        failures.push(format!(
                            "recovered-run drift: param {:.3e} / loss {:.3e} vs tolerance {tol:.0e}",
                            m.param_diff, m.loss_diff
                        ));
                    }
                    // A script that kills a rank mid-run must actually
                    // exercise the protocol; a membership-preserving one
                    // must never touch it.
                    let kills = fault.script.events.iter().any(|e| {
                        matches!(e, pipebd_sim::FaultEvent::HostLoss { at_step, .. }
                            if (*at_step as usize) < s.exec_steps)
                    });
                    if kills && m.restores == 0 && !m.fell_back {
                        failures.push("host-loss script triggered no restore".into());
                    }
                    if !kills && (m.restores > 0 || m.fell_back) {
                        failures.push(format!(
                            "membership-preserving script triggered {} restores",
                            m.restores
                        ));
                    }
                    // The same cross-check for elastic joins: a script
                    // whose join fires inside the run must grow the
                    // member set (growth, not restores — growing consumes
                    // no restore budget), and a join-free script must
                    // never grow it.
                    let joins = fault.script.events.iter().any(|e| {
                        matches!(e, pipebd_sim::FaultEvent::HostJoin { at_step, .. }
                            if *at_step > 0 && (*at_step as usize) < s.exec_steps)
                    });
                    if joins && m.grows == 0 {
                        failures.push("elastic-join script grew nothing".into());
                    }
                    if !joins && m.grows > 0 {
                        failures.push(format!(
                            "join-free script recorded {} membership growths",
                            m.grows
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => failures.push(e),
            }
        } else {
            // Timing-plane-only fault scenarios: faults change *when*
            // things run, never what is computed, and the healthy matrix
            // already pins the functional side of every incumbent.
            outcome.max_param_diff = 0.0;
            outcome.max_loss_diff = 0.0;
            outcome.exec_tolerance = 0.0;
            outcome.exec_ok = true;
        }
        match fault_differential(s, fault) {
            Ok(m) => {
                outcome.sim_ratio = m.ratio;
                outcome.sim_ok = budget.contains(m.ratio);
                outcome.replan_overhead_ns = m.overhead_ns;
                outcome.fault_segments = m.segments;
                if !outcome.sim_ok {
                    failures.push(format!(
                        "degraded sim/estimate ratio {:.3} outside [{:.2}, {:.2}] ({} budget)",
                        m.ratio,
                        budget.lo,
                        budget.hi,
                        fault.class.label()
                    ));
                }
            }
            Err(e) => failures.push(e),
        }
        outcome.pass = failures.is_empty();
        outcome.detail = failures.join("; ");
        return outcome;
    }

    match s.exec_tolerance() {
        Ok(tol) => {
            outcome.exec_tolerance = f64::from(tol);
            match exec_differential(s) {
                Ok((param_diff, loss_diff)) => {
                    outcome.max_param_diff = param_diff;
                    outcome.max_loss_diff = loss_diff;
                    let worst = param_diff.max(loss_diff);
                    outcome.exec_ok = if tol == 0.0 {
                        worst == 0.0
                    } else {
                        worst < f64::from(tol)
                    };
                    if !outcome.exec_ok {
                        failures.push(format!(
                            "executor drift: param {param_diff:.3e} / loss {loss_diff:.3e} vs tolerance {tol:.0e}"
                        ));
                    }
                }
                Err(e) => failures.push(e),
            }
        }
        Err(e) => failures.push(e),
    }

    match sim_differential(s, book) {
        Ok((r, checked, ok)) => {
            outcome.sim_ratio = r;
            outcome.sim_ok = budget.contains(r);
            outcome.bottleneck_checked = checked;
            outcome.bottleneck_ok = ok;
            if !outcome.sim_ok {
                failures.push(format!(
                    "sim/estimate ratio {r:.3} outside [{:.2}, {:.2}]",
                    budget.lo, budget.hi
                ));
            }
            if checked && !ok {
                failures.push("bottleneck stage disagreement".to_string());
            }
        }
        Err(e) => failures.push(e),
    }

    outcome.pass = failures.is_empty();
    outcome.detail = failures.join("; ");
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_sim::{Resource, TaskKind};

    #[test]
    fn simulated_round_period_measures_a_uniform_pipeline() {
        // 1 GPU, 10 steps of a single 10 µs task each: the steady period
        // is exactly 10 µs regardless of the tail length.
        let mut g = TaskGraph::new(1);
        let mut prev = None;
        for step in 0..10u32 {
            let t = g.add_tagged(
                Resource::Gpu(0),
                TaskKind::Teacher,
                SimTime::from_us(10.0),
                prev.into_iter().collect(),
                None,
                step,
            );
            prev = Some(t);
        }
        for tail in [1, 4, 8] {
            assert_eq!(simulated_round_period(&g, 10, tail), SimTime::from_us(10.0));
        }
    }

    #[test]
    #[should_panic(expected = "tail window")]
    fn simulated_round_period_rejects_degenerate_tail() {
        let g = TaskGraph::new(1);
        let _ = simulated_round_period(&g, 4, 4);
    }

    #[test]
    fn one_scenario_passes_end_to_end() {
        // The cheapest scenario in the matrix, run for real: a 3-block
        // 2-rank TR+DPU pipeline under the ambient kernel policy.
        let book = ToleranceBook::gate_default();
        let all = crate::enumerate();
        let ambient = pipebd_tensor::kernel_policy().to_string();
        let s = all
            .iter()
            .find(|s| {
                s.blocks == 3
                    && s.ranks == 2
                    && s.strategy == ConformanceStrategy::TrDpu
                    && s.kernel_policy == ambient
                    && s.subject == ExecutorChoice::Threaded
            })
            .expect("matrix covers the smoke scenario");
        let outcome = run_scenario(s, &book);
        assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
        assert_eq!(outcome.max_param_diff, 0.0, "width-1 plan is bitwise");
    }
}
