//! Deterministic scenario enumeration: the cross-product the conformance
//! plane sweeps.
//!
//! A [`Scenario`] pins every axis that can change what the three planes
//! compute: the model shape (block count, imbalance, student family), the
//! scheduling strategy, the subject executor, the kernel policy, and the
//! batch/rank configuration. Enumeration is pure — no clocks, no ambient
//! RNG — so a scenario id names the same work on every machine, and the
//! per-scenario seed is derived from the id (FNV-1a), not from state.
//!
//! # Strategy → executor-plan mapping
//!
//! The functional executors run *stage plans*; the two paper baselines do
//! not have one, but their computation does (the paper's whole Section
//! VII-D point is that every strategy computes the same training):
//!
//! * **DP** trains every block data-parallel over all ranks with averaged
//!   shard gradients — numerically the internal-relaying plan (all blocks
//!   on all ranks, batch split), so DP scenarios run that plan.
//! * **LS** trains each block independently at the full batch —
//!   numerically the width-1 relayed pipeline, so LS scenarios run the
//!   contiguous plan (bitwise tolerance: no gradient averaging anywhere).
//!
//! The sim-vs-estimator direction keeps the real DP/LS schedules: those
//! scenarios lower the actual baseline task graphs and check them against
//! the dedicated analytic estimators (`dp_phase_period`,
//! `ls_round_period`).

use pipebd_core::ExecutorChoice;
use pipebd_models::Workload;
use pipebd_sched::{ahd, CostModel, HeteroServer, Profiler, StagePlan};
use pipebd_sim::{FaultEvent, FaultScript, GpuModel, HardwareConfig};
use pipebd_tensor::KernelPolicy;
use serde::{Deserialize, Serialize};

use crate::ToleranceBook;
use pipebd_artifact::ArtifactPayload;

/// The strategy axis of the conformance matrix.
///
/// Covers the paper's two baselines, the three relay-family schedules, an
/// explicit hybrid plan, and both plan searches (homogeneous AHD and the
/// heterogeneous extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConformanceStrategy {
    /// Block-by-block data parallelism (Fig. 3a).
    Dp,
    /// Layerwise bin-packing (Blakeney et al.).
    Ls,
    /// Plain teacher relaying with the per-round barrier (Fig. 3b).
    Tr,
    /// Teacher relaying with decoupled parameter update (Fig. 3c).
    TrDpu,
    /// Internal relaying: one all-rank stage over every block.
    TrIr,
    /// A fixed hybrid plan (first block batch-split, rest pipelined).
    Hybrid,
    /// The plan chosen by the homogeneous AHD search (Fig. 3d).
    Ahd,
    /// The plan chosen by the heterogeneous AHD search on a mixed
    /// A6000/2080 Ti server.
    HeteroAhd,
}

impl ConformanceStrategy {
    /// Every strategy, in matrix order.
    pub const ALL: [ConformanceStrategy; 8] = [
        ConformanceStrategy::Dp,
        ConformanceStrategy::Ls,
        ConformanceStrategy::Tr,
        ConformanceStrategy::TrDpu,
        ConformanceStrategy::TrIr,
        ConformanceStrategy::Hybrid,
        ConformanceStrategy::Ahd,
        ConformanceStrategy::HeteroAhd,
    ];

    /// Short label used in scenario ids and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ConformanceStrategy::Dp => "dp",
            ConformanceStrategy::Ls => "ls",
            ConformanceStrategy::Tr => "tr",
            ConformanceStrategy::TrDpu => "dpu",
            ConformanceStrategy::TrIr => "ir",
            ConformanceStrategy::Hybrid => "hybrid",
            ConformanceStrategy::Ahd => "ahd",
            ConformanceStrategy::HeteroAhd => "hetero",
        }
    }
}

impl std::fmt::Display for ConformanceStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The workload the simulator/estimator direction runs on.
///
/// `Synthetic` scenarios lower the *same* plan the executor differential
/// runs (uniform heavy blocks: agreement is near exact, pinning the
/// estimator bit-for-bit against the simulator). The paper-workload
/// scenarios exercise the estimators in the regime where loading, relays,
/// and block imbalance genuinely matter — the fidelity BaPipe warns
/// about — at that workload's real block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimWorkload {
    /// `Workload::synthetic(blocks, heavy_first)` — mirrors the executor
    /// differential's miniature models.
    Synthetic,
    /// NAS on CIFAR-10 (6 blocks, MobileNetV2 → ProxylessNAS).
    NasCifar10,
    /// Model compression on CIFAR-10 (13 blocks, VGG-16 → DS-Conv).
    CompressionCifar10,
}

impl SimWorkload {
    /// Short tag used in scenario ids.
    pub fn tag(&self) -> &'static str {
        match self {
            SimWorkload::Synthetic => "syn",
            SimWorkload::NasCifar10 => "nas",
            SimWorkload::CompressionCifar10 => "vgg",
        }
    }
}

/// The class of a fault scenario's script — each class gets its own ratio
/// budget in the [`ToleranceBook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Host or loader-pool slowdowns only (membership preserved).
    Slowdown,
    /// One or more hosts drop out.
    Loss,
    /// A host joins mid-run (elastic scale-up).
    Join,
    /// Slowdown combined with a membership change.
    Compound,
}

impl FaultClass {
    /// Every class, in matrix order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::Slowdown,
        FaultClass::Loss,
        FaultClass::Join,
        FaultClass::Compound,
    ];

    /// Short label used in scenario ids and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Slowdown => "slowdown",
            FaultClass::Loss => "loss",
            FaultClass::Join => "join",
            FaultClass::Compound => "compound",
        }
    }
}

/// The fault axis of a scenario: a deterministic script plus whether the
/// lowering replans at each cluster change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCase {
    /// The fault class (selects the tolerance budget).
    pub class: FaultClass,
    /// Whether online replanning is enabled (`false` is only valid for
    /// membership-preserving scripts — a static schedule cannot place
    /// work on a missing rank).
    pub replan: bool,
    /// Whether the *executor* direction runs too: the script is driven
    /// against the real threaded executor through the recovery protocol
    /// (checkpoint → replan → resume), and the recovered parameters are
    /// checked against an uninterrupted reference run — bitwise for
    /// width-1 incumbents, within the recovery budget for batch-split
    /// ones. `false` keeps the scenario timing-plane only.
    pub exec_recovery: bool,
    /// The injected event list.
    pub script: FaultScript,
}

/// One point of the conformance matrix: everything needed to replay both
/// differential checks, serializable so sweeps leave an auditable record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Unique, human-readable id (also the artifact lookup key), e.g.
    /// `"syn4h-r4-ahd-blocked-threaded"`.
    pub id: String,
    /// Deterministic RNG seed for model init and data (FNV-1a of `id`).
    pub seed: u64,
    /// Block count of the executor differential's mini models (and of the
    /// synthetic sim workload when `sim_workload` is `Synthetic`).
    pub blocks: usize,
    /// Whether the synthetic workload's block 0 is ~8× heavier (the
    /// ImageNet imbalance shape).
    pub heavy_first: bool,
    /// Which workload the simulator/estimator direction runs on.
    pub sim_workload: SimWorkload,
    /// Whether the executor differential trains the NAS supernet student
    /// (with architecture parameters) instead of the DS-Conv student.
    pub supernet: bool,
    /// Device count (threads for the executors, GPUs for the simulator).
    pub ranks: usize,
    /// Global batch for the simulator/estimator direction.
    pub sim_batch: usize,
    /// Global batch for the functional executors (divisible by every
    /// stage width the plan space can produce).
    pub exec_batch: usize,
    /// Optimizer steps the executor differential trains for.
    pub exec_steps: usize,
    /// The scheduling strategy under test.
    pub strategy: ConformanceStrategy,
    /// The subject executor compared against the reference semantics
    /// (`Reference` makes the scenario a determinism check).
    pub subject: ExecutorChoice,
    /// Kernel policy label (`"naive"` or `"blocked"`); see
    /// [`Scenario::kernel_policy`].
    pub kernel_policy: String,
    /// Host compute-lane budget for intra-stage kernel parallelism
    /// (`FuncConfig::pool_size`). `1` pins every kernel serial — the
    /// default for the classic slices, so their numbers cannot depend on
    /// the machine. The pool slice sweeps `{2, 4}` and asserts the
    /// tensor determinism contract end to end: pooled kernels must
    /// reproduce the serial reference bitwise on width-1 plans.
    pub pool_size: usize,
    /// Whether the executor differential's miniature models use batch
    /// norm (widened plans then assert the shard-statistics budget).
    pub batch_norm: bool,
    /// The fault axis: `Some` makes this a fault-injection scenario —
    /// the simulator/estimator direction runs the degraded differential
    /// and the executor direction is skipped (faults do not change *what*
    /// is computed, only *when*; the healthy matrix pins the former).
    pub fault: Option<FaultCase>,
}

/// FNV-1a over a string — the id→seed derivation (no ambient state).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Scenario {
    /// The typed kernel policy (the serialized field is a label because
    /// `KernelPolicy` lives below the serde boundary).
    pub fn kernel_policy(&self) -> KernelPolicy {
        if self.kernel_policy == "naive" {
            KernelPolicy::Naive
        } else {
            KernelPolicy::Blocked
        }
    }

    /// The workload of the simulator/estimator direction.
    pub fn workload(&self) -> Workload {
        match self.sim_workload {
            SimWorkload::Synthetic => Workload::synthetic(self.blocks, self.heavy_first),
            SimWorkload::NasCifar10 => Workload::nas_cifar10(),
            SimWorkload::CompressionCifar10 => Workload::compression_cifar10(),
        }
    }

    /// The simulated homogeneous server the plan is checked on.
    pub fn hardware(&self) -> HardwareConfig {
        HardwareConfig::a6000_server(self.ranks)
    }

    /// The strategy's stage plan for an arbitrary workload (`None` for DP
    /// and LS, which have no stage plan — their simulator direction uses
    /// the genuine baseline lowering, their executor direction the
    /// numerically-equivalent plans of [`Scenario::exec_plan`]).
    fn strategy_plan(&self, w: &Workload) -> Result<Option<(StagePlan, bool)>, String> {
        let b = w.num_blocks();
        let contiguous = || StagePlan::contiguous(b, self.ranks).map_err(|e| e.to_string());
        match self.strategy {
            ConformanceStrategy::Dp | ConformanceStrategy::Ls => Ok(None),
            ConformanceStrategy::Tr => Ok(Some((contiguous()?, false))),
            ConformanceStrategy::TrDpu => Ok(Some((contiguous()?, true))),
            ConformanceStrategy::TrIr => {
                Ok(Some((StagePlan::internal_relaying(b, self.ranks), true)))
            }
            ConformanceStrategy::Hybrid => {
                let half = self.ranks / 2;
                let plan =
                    StagePlan::from_widths(&[(1, half), (b - 1, self.ranks - half)], b, self.ranks)
                        .map_err(|e| e.to_string())?;
                Ok(Some((plan, true)))
            }
            ConformanceStrategy::Ahd => {
                let hw = self.hardware();
                let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(
                    &w.model,
                    self.sim_batch,
                    self.ranks,
                );
                Ok(Some((
                    ahd::search(w, &table, &hw, self.sim_batch).plan,
                    true,
                )))
            }
            ConformanceStrategy::HeteroAhd => {
                let gpus = (0..self.ranks)
                    .map(|r| {
                        if r % 2 == 0 {
                            GpuModel::a6000()
                        } else {
                            GpuModel::rtx2080ti()
                        }
                    })
                    .collect();
                let server = HeteroServer::new(gpus);
                Ok(Some((
                    pipebd_sched::hetero::search(w, &server, self.sim_batch).plan,
                    true,
                )))
            }
        }
    }

    /// The stage plan the *simulator/estimator* direction lowers, plus
    /// whether updates are decoupled; `None` for DP and LS.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration cannot be laid out (plain
    /// TR with fewer blocks than ranks — the enumerator never emits it).
    pub fn sim_plan(&self) -> Result<Option<(StagePlan, bool)>, String> {
        self.strategy_plan(&self.workload())
    }

    /// The plan the *executor differential* runs on the miniature models
    /// (always at `self.blocks`; the numerically equivalent plan for
    /// DP/LS, see the module docs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::sim_plan`].
    pub fn exec_plan(&self) -> Result<(StagePlan, bool), String> {
        match self.strategy {
            ConformanceStrategy::Dp => {
                Ok((StagePlan::internal_relaying(self.blocks, self.ranks), true))
            }
            ConformanceStrategy::Ls => Ok((
                StagePlan::contiguous(self.blocks, self.ranks).map_err(|e| e.to_string())?,
                true,
            )),
            _ => self
                .strategy_plan(&Workload::synthetic(self.blocks, self.heavy_first))?
                .ok_or_else(|| "plan strategies always carry a plan".to_string()),
        }
    }

    /// The executor-differential tolerance this scenario asserts: bitwise
    /// (`0.0`) when the executed plan has no batch splitting, the
    /// float-reassociation bound otherwise (averaging shard gradients
    /// reorders float sums).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::sim_plan`].
    pub fn exec_tolerance(&self) -> Result<f32, String> {
        let (plan, _) = self.exec_plan()?;
        Ok(ToleranceBook::exec_tolerance(
            plan.uses_batch_split(),
            self.batch_norm,
        ))
    }

    /// The recovery-differential tolerance (executor-recovery fault
    /// scenarios): bitwise when the incumbent plan is split-free — the
    /// recovery protocol preserves width-1 through every replan — and the
    /// recovery budget otherwise.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::sim_plan`].
    pub fn recovery_tolerance(&self) -> Result<f32, String> {
        let (plan, _) = self.exec_plan()?;
        Ok(ToleranceBook::recovery_tolerance(plan.uses_batch_split()))
    }
}

/// A persisted scenario sweep (the enumeration a gate run covered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSet {
    /// One-line description of the sweep.
    pub description: String,
    /// All scenarios, in enumeration order.
    pub scenarios: Vec<Scenario>,
}

impl ArtifactPayload for ScenarioSet {
    const SCHEMA: &'static str = "pipebd.scenario_set";
    // V2: scenarios carry the fault axis (`fault`) and `batch_norm`.
    // V3: scenarios carry the kernel-parallelism axis (`pool_size`).
    // V4: fault cases carry the executor-recovery axis (`exec_recovery`).
    // V5: the rejoin slice — elastic join/rejoin scripts driven through
    // the executor-recovery protocol.
    const VERSION: u32 = 5;
}

/// The model-shape axis: `(blocks, heavy_first, supernet_student)`.
const SHAPES: [(usize, bool, bool); 4] = [
    (3, false, false),
    (4, false, false),
    (4, true, true),
    (6, false, false),
];

/// The rank axis with each rank count's executor batch (divisible by
/// every stage width ≤ ranks, so any searched plan is runnable).
const RANKS: [(usize, usize); 2] = [(2, 8), (4, 12)];

/// Whether a strategy needs a contiguous plan (and therefore at least as
/// many blocks as ranks).
fn needs_contiguous(strategy: ConformanceStrategy) -> bool {
    matches!(
        strategy,
        ConformanceStrategy::Ls | ConformanceStrategy::Tr | ConformanceStrategy::TrDpu
    )
}

/// The fault-variant axis: deterministic scripts parameterized by the rank
/// count. Each entry is `(tag, class, static_ok, script)` where
/// `static_ok` marks membership-preserving scripts that also get a
/// replanning-disabled twin (a static schedule cannot survive a loss or
/// exploit a join). Every script settles by step 10, so the fault
/// differential's tail window (rounds 18–23 of 24) measures one steady
/// regime.
fn fault_variants(ranks: usize) -> Vec<(&'static str, FaultClass, bool, FaultScript)> {
    use FaultEvent::{HostJoin, HostLoss, LoaderSlowdown, Slowdown};
    let last = ranks - 1;
    let script = |events: Vec<FaultEvent>| FaultScript { events };
    let mut out = vec![
        (
            "slow15",
            FaultClass::Slowdown,
            true,
            script(vec![Slowdown {
                rank: 0,
                factor: 1.5,
                start_step: 4,
                end_step: u32::MAX,
            }]),
        ),
        (
            "slow3",
            FaultClass::Slowdown,
            true,
            script(vec![Slowdown {
                rank: last,
                factor: 3.0,
                start_step: 2,
                end_step: u32::MAX,
            }]),
        ),
        (
            "slowwin",
            FaultClass::Slowdown,
            true,
            script(vec![Slowdown {
                rank: 0,
                factor: 4.0,
                start_step: 3,
                end_step: 9,
            }]),
        ),
        (
            "slowall",
            FaultClass::Slowdown,
            true,
            script(
                (0..ranks)
                    .map(|r| Slowdown {
                        rank: r,
                        factor: 2.0,
                        start_step: 2,
                        end_step: u32::MAX,
                    })
                    .collect(),
            ),
        ),
        (
            "loader2",
            FaultClass::Slowdown,
            true,
            script(vec![LoaderSlowdown {
                factor: 2.0,
                start_step: 3,
                end_step: u32::MAX,
            }]),
        ),
        (
            "lose1",
            FaultClass::Loss,
            false,
            script(vec![HostLoss {
                rank: 1,
                at_step: 5,
            }]),
        ),
        (
            "join1",
            FaultClass::Join,
            false,
            script(vec![HostJoin {
                rank: last,
                at_step: 6,
            }]),
        ),
        (
            "mix",
            FaultClass::Compound,
            false,
            script(vec![
                Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 2,
                    end_step: u32::MAX,
                },
                HostLoss {
                    rank: 1,
                    at_step: 6,
                },
            ]),
        ),
        (
            "grow",
            FaultClass::Compound,
            false,
            script(vec![
                HostJoin {
                    rank: last,
                    at_step: 4,
                },
                Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 6,
                    end_step: u32::MAX,
                },
            ]),
        ),
    ];
    if ranks >= 3 {
        out.push((
            "lose2",
            FaultClass::Loss,
            false,
            script(vec![
                HostLoss {
                    rank: 0,
                    at_step: 4,
                },
                HostLoss {
                    rank: last,
                    at_step: 8,
                },
            ]),
        ));
    }
    out
}

/// Enumerates the full conformance matrix, deterministically.
///
/// Two slices:
///
/// * the **synthetic slice** — shapes × ranks × kernel policies ×
///   strategies, where the simulator direction lowers the same synthetic
///   structure the executors train (agreement is near exact and pinned
///   tightly);
/// * the **paper slice** — NAS/compression CIFAR-10 sim workloads at
///   their real block counts, one kernel policy (the kernel policy only
///   affects the executor direction, which the synthetic slice already
///   sweeps), exercising the estimators where loading and imbalance
///   matter.
///
/// Skips only structurally impossible combinations (contiguous plans with
/// fewer blocks than ranks; the hybrid shape on fewer than 3 ranks; fault
/// scripts that change membership under a replanning-disabled schedule).
/// Subject-`Reference` scenarios (executor-determinism checks) are
/// emitted for the TR+DPU strategy slice.
pub fn enumerate() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (blocks, heavy_first, supernet) in SHAPES {
        for (ranks, exec_batch) in RANKS {
            for policy in ["blocked", "naive"] {
                for strategy in ConformanceStrategy::ALL {
                    if needs_contiguous(strategy) && blocks < ranks {
                        continue;
                    }
                    if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                        continue;
                    }
                    let subjects: &[ExecutorChoice] = if strategy == ConformanceStrategy::TrDpu {
                        &[ExecutorChoice::Threaded, ExecutorChoice::Reference]
                    } else {
                        &[ExecutorChoice::Threaded]
                    };
                    for &subject in subjects {
                        let id = format!(
                            "syn{blocks}{}-r{ranks}-{strategy}-{policy}-{}",
                            if heavy_first { "h" } else { "u" },
                            subject.label(),
                        );
                        out.push(Scenario {
                            seed: fnv1a(&id),
                            id,
                            blocks,
                            heavy_first,
                            sim_workload: SimWorkload::Synthetic,
                            supernet,
                            ranks,
                            sim_batch: 256,
                            exec_batch,
                            exec_steps: 3,
                            strategy,
                            subject,
                            kernel_policy: policy.to_string(),
                            batch_norm: false,
                            pool_size: 1,
                            fault: None,
                        });
                    }
                }
            }
        }
    }
    for sim_workload in [SimWorkload::NasCifar10, SimWorkload::CompressionCifar10] {
        for (ranks, exec_batch) in RANKS {
            for strategy in ConformanceStrategy::ALL {
                // Paper workloads have 6/13 blocks: contiguous plans always
                // fit on up to 4 ranks; only the hybrid shape needs 3+.
                if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                    continue;
                }
                let id = format!(
                    "{}-r{ranks}-{strategy}-blocked-threaded",
                    sim_workload.tag()
                );
                out.push(Scenario {
                    seed: fnv1a(&id),
                    id,
                    blocks: 4,
                    heavy_first: false,
                    sim_workload,
                    supernet: false,
                    ranks,
                    sim_batch: 256,
                    exec_batch,
                    exec_steps: 3,
                    strategy,
                    subject: ExecutorChoice::Threaded,
                    kernel_policy: "blocked".to_string(),
                    batch_norm: false,
                    pool_size: 1,
                    fault: None,
                });
            }
        }
    }
    // The batch-norm slice: the synthetic shapes again, batch-norm models,
    // one kernel policy and subject (BN only changes the executor
    // direction's numerics; the plain slice already sweeps the rest).
    for (blocks, heavy_first, supernet) in SHAPES {
        for (ranks, exec_batch) in RANKS {
            for strategy in ConformanceStrategy::ALL {
                if needs_contiguous(strategy) && blocks < ranks {
                    continue;
                }
                if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                    continue;
                }
                let id = format!(
                    "syn{blocks}{}-r{ranks}-{strategy}-bn",
                    if heavy_first { "h" } else { "u" },
                );
                out.push(Scenario {
                    seed: fnv1a(&id),
                    id,
                    blocks,
                    heavy_first,
                    sim_workload: SimWorkload::Synthetic,
                    supernet,
                    ranks,
                    sim_batch: 256,
                    exec_batch,
                    exec_steps: 3,
                    strategy,
                    subject: ExecutorChoice::Threaded,
                    kernel_policy: "blocked".to_string(),
                    batch_norm: true,
                    pool_size: 1,
                    fault: None,
                });
            }
        }
    }
    // The pool slice: threaded-parity scenarios re-run with a real
    // kernel-parallelism budget ({2, 4} compute lanes split across the
    // device ranks). TR+DPU runs width-1 plans, so its parity stays
    // *bitwise* — pooled blocked kernels must reproduce the serial
    // reference bit for bit, the tensor determinism contract end to end;
    // IR and the hybrid shape add batch-split plans on top. One kernel
    // policy (pools only parallelize the blocked kernels) and the plain
    // model family (the other slices sweep those axes at pool 1).
    const POOL_STRATEGIES: [ConformanceStrategy; 3] = [
        ConformanceStrategy::TrDpu,
        ConformanceStrategy::TrIr,
        ConformanceStrategy::Hybrid,
    ];
    for (blocks, heavy_first, supernet) in SHAPES {
        for (ranks, exec_batch) in RANKS {
            for strategy in POOL_STRATEGIES {
                if needs_contiguous(strategy) && blocks < ranks {
                    continue;
                }
                if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                    continue;
                }
                for pool_size in [2usize, 4] {
                    let id = format!(
                        "syn{blocks}{}-r{ranks}-{strategy}-p{pool_size}",
                        if heavy_first { "h" } else { "u" },
                    );
                    out.push(Scenario {
                        seed: fnv1a(&id),
                        id,
                        blocks,
                        heavy_first,
                        sim_workload: SimWorkload::Synthetic,
                        supernet,
                        ranks,
                        sim_batch: 256,
                        exec_batch,
                        exec_steps: 3,
                        strategy,
                        subject: ExecutorChoice::Threaded,
                        kernel_policy: "blocked".to_string(),
                        batch_norm: false,
                        pool_size,
                        fault: None,
                    });
                }
            }
        }
    }
    // The fault slice: workload × ranks × incumbent strategy × fault
    // variant × replan policy. DPU-family incumbents only (the splice is
    // DPU-only; see `pipebd_core::lower::fault`); membership-changing
    // scripts only with replanning on.
    const FAULT_STRATEGIES: [ConformanceStrategy; 3] = [
        ConformanceStrategy::TrDpu,
        ConformanceStrategy::Hybrid,
        ConformanceStrategy::Ahd,
    ];
    for sim_workload in [
        SimWorkload::Synthetic,
        SimWorkload::NasCifar10,
        SimWorkload::CompressionCifar10,
    ] {
        for (ranks, exec_batch) in RANKS {
            for strategy in FAULT_STRATEGIES {
                if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                    continue;
                }
                for (tag, class, static_ok, script) in fault_variants(ranks) {
                    for replan in [true, false] {
                        if !replan && !static_ok {
                            continue;
                        }
                        let id = format!(
                            "fault-{}-r{ranks}-{strategy}-{tag}-{}",
                            sim_workload.tag(),
                            if replan { "replan" } else { "static" },
                        );
                        out.push(Scenario {
                            seed: fnv1a(&id),
                            id,
                            blocks: 6,
                            heavy_first: false,
                            sim_workload,
                            supernet: false,
                            ranks,
                            sim_batch: 256,
                            exec_batch,
                            exec_steps: 3,
                            strategy,
                            subject: ExecutorChoice::Threaded,
                            kernel_policy: "blocked".to_string(),
                            batch_norm: false,
                            pool_size: 1,
                            fault: Some(FaultCase {
                                class,
                                replan,
                                exec_recovery: false,
                                script: script.clone(),
                            }),
                        });
                    }
                }
            }
        }
    }
    // The recovery slice: fault scripts driven against the *real*
    // threaded executor through the recovery protocol (kill mid-training,
    // restore the latest checkpoint, replan over the survivors, resume),
    // with the recovered parameters checked against an uninterrupted
    // reference run. TR+DPU incumbents are width-1, so their recovered
    // runs must be *bitwise* identical; the hybrid incumbent adds the
    // batch-split case under the recovery budget. Longer executor runs
    // (10 steps) so every script both fires and leaves a checkpoint
    // behind; the timing-plane fault differential runs on these scenarios
    // too, so each point checks both planes.
    const RECOVERY_STRATEGIES: [ConformanceStrategy; 2] =
        [ConformanceStrategy::TrDpu, ConformanceStrategy::Hybrid];
    for (ranks, exec_batch) in RANKS {
        for strategy in RECOVERY_STRATEGIES {
            if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                continue;
            }
            for (tag, class, script) in recovery_variants(ranks) {
                let id = format!("fault-rec-r{ranks}-{strategy}-{tag}");
                out.push(Scenario {
                    seed: fnv1a(&id),
                    id,
                    blocks: 6,
                    heavy_first: false,
                    sim_workload: SimWorkload::Synthetic,
                    supernet: false,
                    ranks,
                    sim_batch: 256,
                    exec_batch,
                    exec_steps: 10,
                    strategy,
                    subject: ExecutorChoice::Threaded,
                    kernel_policy: "blocked".to_string(),
                    batch_norm: false,
                    pool_size: 1,
                    fault: Some(FaultCase {
                        class,
                        replan: true,
                        exec_recovery: true,
                        script,
                    }),
                });
            }
        }
    }
    // The rejoin slice: elastic-membership scripts driven against the
    // real threaded executor. A host absent at step 0 joins mid-run (the
    // device-thread registry grows the worker set at its round boundary),
    // and — where the rank space allows it — a killed rank's hardware
    // rejoins two rounds later under a fresh logical rank. TR+DPU
    // incumbents stay width-1 through every grow, so their recovered
    // runs assert *bitwise* replay; the hybrid incumbent re-checks the
    // batch-split budget across membership growth.
    for (ranks, exec_batch) in RANKS {
        for strategy in RECOVERY_STRATEGIES {
            if strategy == ConformanceStrategy::Hybrid && ranks < 3 {
                continue;
            }
            for (tag, class, script) in rejoin_variants(ranks) {
                let id = format!("fault-rejoin-r{ranks}-{strategy}-{tag}");
                out.push(Scenario {
                    seed: fnv1a(&id),
                    id,
                    blocks: 6,
                    heavy_first: false,
                    sim_workload: SimWorkload::Synthetic,
                    supernet: false,
                    ranks,
                    sim_batch: 256,
                    exec_batch,
                    exec_steps: 10,
                    strategy,
                    subject: ExecutorChoice::Threaded,
                    kernel_policy: "blocked".to_string(),
                    batch_norm: false,
                    pool_size: 1,
                    fault: Some(FaultCase {
                        class,
                        replan: true,
                        exec_recovery: true,
                        script,
                    }),
                });
            }
        }
    }
    out
}

/// The executor-recovery fault variants: every event fires within the
/// slice's 10 executor steps (and before the sim tail window), so each
/// scenario genuinely kills and restores — or, for the slowdown variant,
/// proves that pure pauses leave the result untouched with zero restores.
fn recovery_variants(ranks: usize) -> Vec<(&'static str, FaultClass, FaultScript)> {
    use FaultEvent::{HostLoss, Slowdown};
    let last = ranks - 1;
    let script = |events: Vec<FaultEvent>| FaultScript { events };
    vec![
        (
            "recslow",
            FaultClass::Slowdown,
            script(vec![Slowdown {
                rank: 0,
                factor: 1.5,
                start_step: 2,
                end_step: 8,
            }]),
        ),
        (
            "reclose",
            FaultClass::Loss,
            script(vec![HostLoss {
                rank: 1,
                at_step: 4,
            }]),
        ),
        (
            "recmix",
            FaultClass::Compound,
            script(vec![
                Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 2,
                    end_step: u32::MAX,
                },
                HostLoss {
                    rank: last,
                    at_step: 6,
                },
            ]),
        ),
    ]
}

/// The elastic-membership variants of the rejoin slice. In-set join
/// semantics: the joining rank is absent at step 0 (the first epoch runs
/// short-handed over a replanned member set) and is admitted at its
/// round boundary. The loss-then-rejoin compound needs a third rank —
/// [`FaultScript::validate`] rightly rejects a rank rejoining under its
/// own cancelled id — so it is emitted only for `ranks >= 3`.
fn rejoin_variants(ranks: usize) -> Vec<(&'static str, FaultClass, FaultScript)> {
    use FaultEvent::{HostJoin, HostLoss, Slowdown};
    let last = ranks - 1;
    let script = |events: Vec<FaultEvent>| FaultScript { events };
    let mut out = vec![
        (
            "join1",
            FaultClass::Join,
            script(vec![HostJoin {
                rank: last,
                at_step: 4,
            }]),
        ),
        (
            "growmix",
            FaultClass::Compound,
            script(vec![
                HostJoin {
                    rank: last,
                    at_step: 4,
                },
                Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 6,
                    end_step: u32::MAX,
                },
            ]),
        ),
    ];
    if ranks >= 3 {
        out.push((
            "rejoin",
            FaultClass::Compound,
            script(vec![
                HostLoss {
                    rank: 1,
                    at_step: 4,
                },
                HostJoin {
                    rank: last,
                    at_step: 6,
                },
            ]),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_large_enough() {
        let a = enumerate();
        let b = enumerate();
        assert_eq!(a, b);
        assert!(a.len() >= 400, "only {} scenarios", a.len());
    }

    #[test]
    fn ids_are_unique_and_seed_derived() {
        let all = enumerate();
        let mut ids: Vec<&str> = all.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate scenario ids");
        for s in &all {
            assert_eq!(s.seed, fnv1a(&s.id));
        }
    }

    #[test]
    fn every_scenario_has_a_runnable_exec_plan() {
        for s in enumerate() {
            let (plan, _) = s.exec_plan().unwrap_or_else(|e| panic!("{}: {e}", s.id));
            plan.validate().unwrap();
            assert_eq!(plan.num_blocks, s.blocks);
            assert_eq!(plan.num_devices, s.ranks);
            for stage in &plan.stages {
                assert_eq!(
                    s.exec_batch % stage.width(),
                    0,
                    "{}: batch {} not divisible by width {}",
                    s.id,
                    s.exec_batch,
                    stage.width()
                );
            }
        }
    }

    #[test]
    fn axes_are_covered() {
        let all = enumerate();
        for strategy in ConformanceStrategy::ALL {
            assert!(all.iter().any(|s| s.strategy == strategy), "{strategy}");
        }
        assert!(all.iter().any(|s| s.kernel_policy == "naive"));
        assert!(all.iter().any(|s| s.kernel_policy == "blocked"));
        assert!(all.iter().any(|s| s.subject == ExecutorChoice::Reference));
        assert!(all.iter().any(|s| s.supernet));
        assert!(all.iter().any(|s| s.heavy_first));
        assert!(all.iter().any(|s| s.ranks == 2) && all.iter().any(|s| s.ranks == 4));
        assert!(all.iter().any(|s| s.batch_norm), "batch-norm slice missing");
        for pool in [1usize, 2, 4] {
            assert!(
                all.iter().any(|s| s.pool_size == pool),
                "pool axis missing budget {pool}"
            );
        }
        // The pool slice must include bitwise scenarios: width-1 plans
        // under a real kernel-parallelism budget.
        assert!(
            all.iter().any(|s| s.pool_size > 1
                && s.strategy == ConformanceStrategy::TrDpu
                && s.exec_tolerance() == Ok(0.0)),
            "no bitwise pooled scenario"
        );
        for class in FaultClass::ALL {
            for replan in [true, false] {
                let valid = replan || class == FaultClass::Slowdown;
                let present = all.iter().any(|s| {
                    s.fault
                        .as_ref()
                        .is_some_and(|f| f.class == class && f.replan == replan)
                });
                assert_eq!(
                    present, valid,
                    "fault axis {class:?} replan={replan}: present={present}, valid={valid}"
                );
            }
        }
        // The recovery axis: killed-and-restored executor runs, both in
        // the bitwise (width-1 incumbent) and budgeted (batch-split
        // incumbent) regimes, plus a restore-free slowdown control.
        let recovery: Vec<_> = all
            .iter()
            .filter(|s| s.fault.as_ref().is_some_and(|f| f.exec_recovery))
            .collect();
        assert!(!recovery.is_empty(), "recovery slice missing");
        assert!(
            recovery.iter().any(|s| s.exec_tolerance() == Ok(0.0)),
            "no bitwise recovery scenario"
        );
        assert!(
            recovery.iter().any(|s| s.exec_tolerance() != Ok(0.0)),
            "no batch-split recovery scenario"
        );
        for class in FaultClass::ALL {
            assert!(
                recovery
                    .iter()
                    .any(|s| s.fault.as_ref().is_some_and(|f| f.class == class)),
                "recovery slice misses {class:?}"
            );
        }
        // The rejoin slice: elastic joins driven through the executor,
        // including a bitwise width-1 grow and the loss-then-rejoin
        // compound.
        assert!(
            recovery.iter().any(|s| {
                s.exec_tolerance() == Ok(0.0)
                    && s.fault.as_ref().is_some_and(|f| {
                        f.script
                            .events
                            .iter()
                            .any(|e| matches!(e, FaultEvent::HostJoin { .. }))
                    })
            }),
            "no bitwise elastic-join recovery scenario"
        );
        assert!(
            recovery.iter().any(|s| {
                s.fault.as_ref().is_some_and(|f| {
                    f.script
                        .events
                        .iter()
                        .any(|e| matches!(e, FaultEvent::HostJoin { .. }))
                        && f.script
                            .events
                            .iter()
                            .any(|e| matches!(e, FaultEvent::HostLoss { .. }))
                })
            }),
            "no loss-then-rejoin recovery scenario"
        );
        // Recovery scripts must fire inside the executor run: every event
        // step sits strictly below the slice's step count.
        for s in &recovery {
            let script = &s.fault.as_ref().unwrap().script;
            assert!(
                script
                    .change_steps()
                    .iter()
                    .any(|&st| (st as usize) < s.exec_steps),
                "{}: script never fires within {} executor steps",
                s.id,
                s.exec_steps
            );
        }
    }

    #[test]
    fn fault_scripts_are_valid_and_settle_before_the_tail() {
        for s in enumerate() {
            let Some(fault) = &s.fault else { continue };
            fault
                .script
                .validate(s.ranks)
                .unwrap_or_else(|e| panic!("{}: {e}", s.id));
            assert!(!fault.script.is_healthy(), "{}: empty fault script", s.id);
            // Every finite change step sits before the measurement tail
            // (infinite window ends never fire inside the schedule).
            for step in fault.script.change_steps() {
                assert!(
                    step == u32::MAX || step <= 10,
                    "{}: change step {step} lands inside the tail window",
                    s.id
                );
            }
        }
    }

    #[test]
    fn dp_and_ls_map_to_equivalent_plans() {
        let all = enumerate();
        let dp = all
            .iter()
            .find(|s| s.strategy == ConformanceStrategy::Dp && s.ranks == 4)
            .unwrap();
        let (plan, dpu) = dp.exec_plan().unwrap();
        assert!(dpu);
        assert_eq!(plan.stages.len(), 1, "DP ≡ internal relaying");
        assert!(plan.uses_batch_split());
        let ls = all
            .iter()
            .find(|s| s.strategy == ConformanceStrategy::Ls && s.ranks == 4)
            .unwrap();
        let (plan, _) = ls.exec_plan().unwrap();
        assert!(!plan.uses_batch_split(), "LS ≡ width-1 pipeline (bitwise)");
        assert_eq!(ls.exec_tolerance().unwrap(), 0.0);
        assert!(dp.exec_tolerance().unwrap() > 0.0);
    }

    #[test]
    fn scenario_set_roundtrips_through_serde() {
        let set = ScenarioSet {
            description: "test".into(),
            scenarios: enumerate(),
        };
        let value = pipebd_json::to_value(&set).expect("serialize");
        let back: ScenarioSet = pipebd_json::from_value(&value).expect("deserialize");
        assert_eq!(back, set);
    }
}
