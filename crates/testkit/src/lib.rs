//! The conformance plane: one harness that forces the repository's three
//! independently-built planes to agree with each other.
//!
//! Pipe-BD's claims rest on three components telling the same story:
//!
//! 1. the **executed pipeline** (`pipebd_core::exec`) — real training on
//!    device threads;
//! 2. the **discrete-event simulator** (`pipebd_sim`) — the stand-in for
//!    the paper's hardware;
//! 3. the **analytic estimator** (`pipebd_sched::estimate`) — the cost
//!    model the AHD search minimizes.
//!
//! PipeDream-style profile-driven planning is only as trustworthy as the
//! fidelity of its predictions against real execution, and BaPipe shows
//! balanced-pipeline conclusions flip when per-stage cost assumptions
//! drift. Before this crate the planes were spot-checked pairwise in a
//! handful of tests; here the cross-product of model shapes × strategies ×
//! executors × kernel policies × batch/rank configurations is enumerated
//! deterministically ([`enumerate`]) and every scenario runs the full
//! differential ([`run_scenario`]):
//!
//! * **Executor differential** — [`ReferenceExecutor`] vs the scenario's
//!   subject executor on real miniature models: bit-level loss/parameter
//!   agreement for width-1 plans, reassociation-bounded (`1e-4`) for
//!   batch-split plans;
//! * **Simulator vs estimator** — the scenario's plan (or baseline
//!   schedule) lowered into the event simulator, its steady-state period
//!   checked against the analytic prediction within a per-strategy
//!   relative-error budget ([`ToleranceBook`]), plus a bottleneck-stage
//!   agreement check when the estimator's margin is decisive;
//! * **Fault differential** — scenarios carrying a [`FaultCase`] lower
//!   the plan under a deterministic fault script (host slowdowns, loss,
//!   join, loader slowdown), optionally splicing in an online AHD replan,
//!   simulate the degraded cluster, and check the settled tail period
//!   against `pipebd_sched`'s degraded estimate under per-fault-class
//!   budgets. Faults change *when* work runs, never *what* is computed,
//!   so most fault scenarios skip the executor differential (the healthy
//!   matrix pins it);
//! * **Recovery differential** — fault scenarios flagged `exec_recovery`
//!   drive their script against the *real* threaded executor through the
//!   recovery protocol (`pipebd_core::exec::recovery`): the run is killed
//!   mid-training, restored from its latest checkpoint, replanned over
//!   the surviving ranks, and resumed — and the recovered parameters must
//!   match an uninterrupted reference run, *bitwise* for width-1
//!   incumbents and within [`ToleranceBook::RECOVERY_SPLIT_EXEC`] for
//!   batch-split ones (replay equivalence, executed). The rejoin slice
//!   extends this to *elastic growth*: hosts joining mid-run — including
//!   a killed rank's hardware rejoining under a fresh logical rank — are
//!   admitted at a round boundary by the executor's device-thread
//!   registry, consume no restore budget, and must preserve the same
//!   replay-equivalence bounds across the grow.
//!
//! Scenarios ([`Scenario`]) and outcomes ([`ConformanceReport`]) are
//! serializable artifacts, persisted through `pipebd_artifact` by the
//! `regression_gate` binary so every CI run leaves an auditable record.
//! Everything is seeded and `Date`-free: the same commit always enumerates
//! and replays the same scenarios.
//!
//! [`ReferenceExecutor`]: pipebd_core::exec::ReferenceExecutor

#![warn(missing_docs)]

mod differential;
mod scenario;
mod tolerance;
mod trace;

pub use differential::{
    round_period_of, run_scenario, simulated_round_period, ConformanceReport, ScenarioOutcome,
    FAULT_ROUNDS, FAULT_TAIL,
};
pub use scenario::{
    enumerate, ConformanceStrategy, FaultCase, FaultClass, Scenario, ScenarioSet, SimWorkload,
};
pub use tolerance::{RatioBudget, ToleranceBook};
pub use trace::{
    compute_lanes, run_trace_scenario, trace_scenarios, TraceRun, TRACE_STEPS, TRACE_TAIL,
};
