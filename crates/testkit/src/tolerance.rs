//! The declared tolerance policy: how far each plane may disagree before
//! the conformance gate fails.
//!
//! Budgets are *asserted and recorded* — every scenario outcome carries
//! the budget it was judged against, so a tolerance change is visible in
//! the persisted `ConformanceReport`, not buried in test code.

use crate::{ConformanceStrategy, FaultClass};

/// An inclusive relative-error window for `simulated / analytic` ratios.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioBudget {
    /// Lower bound (the simulator finishing *faster* than predicted also
    /// signals a modeling bug — e.g. work the estimator double-counts).
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl RatioBudget {
    /// Whether a ratio falls inside the window.
    pub fn contains(&self, ratio: f64) -> bool {
        ratio.is_finite() && self.lo <= ratio && ratio <= self.hi
    }
}

/// The conformance plane's declared tolerances.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceBook {
    /// Budget for the decoupled-update relay family (TR+DPU, TR+IR,
    /// hybrid, AHD, hetero-AHD): the steady-state period estimate ignores
    /// only relay-latency edges, so it is tight.
    pub dpu_family: RatioBudget,
    /// Budget for barrier teacher relaying: the analytic critical path
    /// ignores second-order queueing (loader jitter against the barrier),
    /// so it is slightly looser.
    pub barrier: RatioBudget,
    /// Budget for the DP baseline's per-phase period.
    pub dp: RatioBudget,
    /// Budget for the LS baseline's round period.
    pub ls: RatioBudget,
    /// Budget for fault scenarios that only stretch durations (host or
    /// loader slowdowns): the degraded estimate scales the same chains the
    /// simulator scales, so it stays nearly as tight as `dpu_family`.
    pub fault_slowdown: RatioBudget,
    /// Budget for host-loss scenarios: the replanned pipeline refills
    /// behind the splice barrier, so the tail window carries a little
    /// residual transient.
    pub fault_loss: RatioBudget,
    /// Budget for elastic host-join scenarios (same refill effect as a
    /// loss, plus the widened loader fan-out).
    pub fault_join: RatioBudget,
    /// Budget for compound scripts (slowdown + membership change).
    pub fault_compound: RatioBudget,
    /// Minimum estimator margin (heaviest / second-heaviest stage time)
    /// before the bottleneck-agreement check is asserted; near ties
    /// legitimately resolve either way at event level.
    pub bottleneck_margin: f64,
    /// Budget for the trace differential: `measured period / predicted
    /// period` of an instrumented executor run (measured-profile basis).
    /// Wall-clock measurements on a shared, timesharing host carry real
    /// scheduler noise — thread wakeup latency, cache state, allocator
    /// variance — and how much of each span's duration is contention
    /// inflation varies run to run: when stages overlap fully the period
    /// tracks the heaviest stage (ratio near 1), but when the host
    /// serializes the threads the period approaches the stage-time *sum*
    /// against a prediction that reports the *max*, pulling the ratio
    /// toward `1/num_stages` (¼ on the four-stage acceptance scenarios).
    /// The window brackets both regimes with headroom under the serial
    /// floor; the sharp assertion is the bottleneck-stage agreement,
    /// which contention inflation cannot move.
    pub trace: RatioBudget,
}

impl ToleranceBook {
    /// The gate's declared policy (see `ARCHITECTURE.md`, "conformance
    /// plane" — change the numbers there and here together).
    ///
    /// Observed fidelity on the committed matrix is far tighter than these
    /// windows (steady-state ratios within ~0.994..1.001 everywhere); the
    /// slack is headroom for legitimate cost-model evolution, not an
    /// admission of error.
    pub fn gate_default() -> Self {
        ToleranceBook {
            dpu_family: RatioBudget { lo: 0.90, hi: 1.15 },
            barrier: RatioBudget { lo: 0.90, hi: 1.25 },
            dp: RatioBudget { lo: 0.90, hi: 1.15 },
            ls: RatioBudget { lo: 0.90, hi: 1.15 },
            fault_slowdown: RatioBudget { lo: 0.90, hi: 1.18 },
            fault_loss: RatioBudget { lo: 0.90, hi: 1.20 },
            fault_join: RatioBudget { lo: 0.90, hi: 1.20 },
            fault_compound: RatioBudget { lo: 0.90, hi: 1.20 },
            bottleneck_margin: 1.10,
            trace: RatioBudget { lo: 0.20, hi: 3.00 },
        }
    }

    /// The simulator-vs-estimator budget for a strategy.
    pub fn sim_budget(&self, strategy: ConformanceStrategy) -> RatioBudget {
        match strategy {
            ConformanceStrategy::Dp => self.dp,
            ConformanceStrategy::Ls => self.ls,
            ConformanceStrategy::Tr => self.barrier,
            _ => self.dpu_family,
        }
    }

    /// The tail-period-vs-degraded-estimate budget for a fault class.
    pub fn fault_budget(&self, class: FaultClass) -> RatioBudget {
        match class {
            FaultClass::Slowdown => self.fault_slowdown,
            FaultClass::Loss => self.fault_loss,
            FaultClass::Join => self.fault_join,
            FaultClass::Compound => self.fault_compound,
        }
    }

    /// The executor-differential tolerance: bitwise for width-1 plans,
    /// the float-reassociation bound when shard gradients are averaged,
    /// and a wider bound when batch norm meets batch splitting — the
    /// per-shard normalization statistics are a *different function* of
    /// the batch than full-batch statistics, so shard outputs drift
    /// beyond pure float reassociation before the gradients are averaged.
    pub fn exec_tolerance(plan_uses_batch_split: bool, batch_norm: bool) -> f32 {
        match (plan_uses_batch_split, batch_norm) {
            (false, _) => 0.0,
            (true, false) => 1e-4,
            (true, true) => Self::BN_SHARD_EXEC,
        }
    }

    /// The widened-plan batch-norm executor budget (see
    /// [`ToleranceBook::exec_tolerance`]). Observed drift on the committed
    /// matrix stays well below this; the entry exists so relaxing the old
    /// `batch_norm: false` pin is a declared policy, not an accident.
    pub const BN_SHARD_EXEC: f32 = 5e-2;

    /// The recovery-differential tolerance: a killed-and-restored run
    /// against an uninterrupted reference. Width-1 incumbents stay
    /// *bitwise* — the recovery protocol never widens a split-free plan,
    /// checkpoints restore the exact state, and the remaining steps
    /// replay the same per-index-deterministic batches. Batch-split
    /// incumbents accumulate shard-mean reassociation twice (before the
    /// checkpoint and after the resume, possibly under a different
    /// degraded split), so they carry a slightly wider budget than the
    /// healthy differential's.
    pub fn recovery_tolerance(plan_uses_batch_split: bool) -> f32 {
        if plan_uses_batch_split {
            Self::RECOVERY_SPLIT_EXEC
        } else {
            0.0
        }
    }

    /// The batch-split recovery budget (see
    /// [`ToleranceBook::recovery_tolerance`]).
    pub const RECOVERY_SPLIT_EXEC: f32 = 5e-4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_bracket_unity() {
        let book = ToleranceBook::gate_default();
        for s in ConformanceStrategy::ALL {
            let b = book.sim_budget(s);
            assert!(b.lo < 1.0 && 1.0 < b.hi, "{s}: budget must bracket 1.0");
            assert!(b.contains(1.0));
            assert!(!b.contains(f64::NAN));
            assert!(!b.contains(b.hi + 0.01));
        }
    }

    #[test]
    fn exec_tolerance_is_bitwise_without_splitting() {
        assert_eq!(ToleranceBook::exec_tolerance(false, false), 0.0);
        assert_eq!(ToleranceBook::exec_tolerance(false, true), 0.0);
        assert!(ToleranceBook::exec_tolerance(true, false) > 0.0);
        assert!(
            ToleranceBook::exec_tolerance(true, true) > ToleranceBook::exec_tolerance(true, false),
            "shard batch-norm statistics need more room than reassociation"
        );
    }

    #[test]
    fn recovery_tolerance_is_bitwise_without_splitting() {
        assert_eq!(ToleranceBook::recovery_tolerance(false), 0.0);
        assert!(
            ToleranceBook::recovery_tolerance(true) > ToleranceBook::exec_tolerance(true, false),
            "a resumed split run accumulates reassociation twice"
        );
    }

    #[test]
    fn fault_budgets_bracket_unity_and_stay_ordered() {
        let book = ToleranceBook::gate_default();
        for class in FaultClass::ALL {
            let b = book.fault_budget(class);
            assert!(b.lo < 1.0 && 1.0 < b.hi, "{class:?} must bracket 1.0");
        }
        // Membership changes get at least the slowdown slack: they carry
        // the same scaling error plus the splice transient.
        assert!(book.fault_loss.hi >= book.fault_slowdown.hi);
        assert!(book.fault_join.hi >= book.fault_slowdown.hi);
        assert!(book.fault_compound.hi >= book.fault_slowdown.hi);
    }

    #[test]
    fn barrier_budget_is_loosest_relay_budget() {
        let book = ToleranceBook::gate_default();
        assert!(book.barrier.hi > book.dpu_family.hi);
    }
}
