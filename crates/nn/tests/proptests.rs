//! Property-based tests for the NN layer stack: every layer's backward
//! pass must be the true derivative of its forward pass (checked via the
//! probe-adjoint identity against finite differences on random inputs),
//! and optimizer/loss algebra must hold for arbitrary values.

use pipebd_nn::{
    cross_entropy_loss, mse_loss, BatchNorm2d, Conv2d, Layer, Linear, MixedOp, Mode, Relu,
    Sequential, Sgd,
};
use pipebd_tensor::{Rng64, Tensor};
use proptest::prelude::*;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.5f32..1.5, len)
}

/// Checks `dx` from a layer's backward against central differences of the
/// probe objective `sum(probe * layer(x))` at a few coordinates.
fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, coords: &[usize]) -> Result<(), String> {
    let y = layer.forward(x, Mode::Train).map_err(|e| e.to_string())?;
    let mut rng = Rng64::seed_from_u64(1234);
    let probe = Tensor::randn(y.dims(), &mut rng);
    let dx = layer.backward(&probe).map_err(|e| e.to_string())?;
    for &i in coords {
        let eps = 1e-2;
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = layer
            .forward(&xp, Mode::Eval)
            .map_err(|e| e.to_string())?
            .mul(&probe)
            .map_err(|e| e.to_string())?
            .sum();
        let fm = layer
            .forward(&xm, Mode::Eval)
            .map_err(|e| e.to_string())?
            .mul(&probe)
            .map_err(|e| e.to_string())?
            .sum();
        let num = (fp - fm) / (2.0 * eps);
        let ana = dx.data()[i];
        if (num - ana).abs() > 5e-2 * (1.0 + ana.abs()) {
            return Err(format!("coord {i}: numeric {num} vs analytic {ana}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_backward_is_true_gradient(x in vecf(2 * 4), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut l = Linear::new(4, 3, &mut rng);
        let x = Tensor::from_vec(x, &[2, 4]).unwrap();
        prop_assert!(check_input_grad(&mut l, &x, &[0, 3, 7]).is_ok());
    }

    #[test]
    fn conv_layer_backward_is_true_gradient(x in vecf(2 * 25), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut l = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::from_vec(x, &[1, 2, 5, 5]).unwrap();
        prop_assert!(check_input_grad(&mut l, &x, &[0, 12, 33, 49]).is_ok());
    }

    #[test]
    fn sequential_backward_chains_correctly(x in vecf(3 * 4), seed in 0u64..1000) {
        // Two chained Linears: finite differences are exact here (ReLU's
        // kink is covered by direct unit tests with controlled inputs).
        let mut rng = Rng64::seed_from_u64(seed);
        let mut l = Sequential::new(vec![
            Box::new(Linear::new(4, 5, &mut rng)),
            Box::new(Linear::new(5, 2, &mut rng)),
        ]);
        let x = Tensor::from_vec(x, &[3, 4]).unwrap();
        prop_assert!(check_input_grad(&mut l, &x, &[0, 5, 11]).is_ok());
    }

    #[test]
    fn relu_masks_are_exact_on_offset_inputs(x in vecf(16)) {
        // Inputs bounded away from zero make the subgradient unambiguous.
        let x: Vec<f32> = x
            .into_iter()
            .map(|v| if v >= 0.0 { v + 0.2 } else { v - 0.2 })
            .collect();
        let mut l = Relu::new();
        let t = Tensor::from_vec(x.clone(), &[16]).unwrap();
        l.forward(&t, Mode::Train).unwrap();
        let dx = l.backward(&Tensor::ones(&[16])).unwrap();
        for (i, &v) in x.iter().enumerate() {
            prop_assert_eq!(dx.data()[i], if v > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn mixed_op_backward_is_true_gradient(x in vecf(2 * 16), seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut l = MixedOp::new(vec![
            Box::new(Conv2d::new(2, 2, 3, 1, 1, &mut rng)),
            Box::new(Conv2d::new(2, 2, 1, 1, 0, &mut rng)),
        ]);
        let x = Tensor::from_vec(x, &[1, 2, 4, 4]).unwrap();
        prop_assert!(check_input_grad(&mut l, &x, &[0, 9, 21, 31]).is_ok());
    }

    #[test]
    fn batchnorm_normalizes_any_input(x in vecf(4 * 2 * 9), shift in -3.0f32..3.0) {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(x, &[4, 2, 3, 3]).unwrap().map(|v| v + shift);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Output mean per channel ~0 regardless of the input shift.
        for c in 0..2 {
            let mut sum = 0.0f32;
            for b in 0..4 {
                for h in 0..3 {
                    for w in 0..3 {
                        sum += y.at(&[b, c, h, w]).unwrap();
                    }
                }
            }
            prop_assert!((sum / 36.0).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_is_nonnegative_and_zero_iff_equal(a in vecf(12), b in vecf(12)) {
        let ta = Tensor::from_vec(a.clone(), &[12]).unwrap();
        let tb = Tensor::from_vec(b, &[12]).unwrap();
        let l = mse_loss(&ta, &tb).unwrap();
        prop_assert!(l.loss >= 0.0);
        let self_loss = mse_loss(&ta, &ta).unwrap();
        prop_assert_eq!(self_loss.loss, 0.0);
    }

    #[test]
    fn cross_entropy_bounded_below_by_zero(logits in vecf(3 * 5), labels in proptest::collection::vec(0usize..5, 3)) {
        let t = Tensor::from_vec(logits, &[3, 5]).unwrap();
        let l = cross_entropy_loss(&t, &labels).unwrap();
        prop_assert!(l.loss >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for i in 0..3 {
            let row: f32 = l.grad.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(row.abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient(lr in 0.001f32..0.5, seed in 0u64..1000) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        let target = Tensor::zeros(y.dims());
        let before = mse_loss(&y, &target).unwrap().loss;
        let grad = mse_loss(&y, &target).unwrap().grad;
        l.backward(&grad).unwrap();
        let mut sgd = Sgd::new(lr.min(0.05), 0.0, 0.0);
        sgd.step(&mut l).unwrap();
        let after = mse_loss(&l.forward(&x, Mode::Eval).unwrap(), &target)
            .unwrap()
            .loss;
        prop_assert!(after <= before + 1e-6, "loss rose: {before} -> {after}");
    }
}
