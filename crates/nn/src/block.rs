use pipebd_tensor::{Result, Tensor, TensorError};

use crate::{Layer, Mode, Param, Sequential};

/// A named block — the unit of blockwise distillation and of Pipe-BD
/// scheduling.
///
/// A block is a [`Sequential`] with a name; teacher and student networks are
/// both [`BlockNet`]s of the same length, and block `i` of the student is
/// trained against block `i` of the teacher.
#[derive(Debug, Clone)]
pub struct Block {
    name: String,
    inner: Sequential,
}

impl Block {
    /// Creates a named block from a layer sequence.
    pub fn new(name: impl Into<String>, inner: Sequential) -> Self {
        Block {
            name: name.into(),
            inner,
        }
    }

    /// The block's name.
    pub fn label(&self) -> &str {
        &self.name
    }

    /// The wrapped layer sequence.
    pub fn inner(&self) -> &Sequential {
        &self.inner
    }

    /// Mutable access to the wrapped layer sequence.
    pub fn inner_mut(&mut self) -> &mut Sequential {
        &mut self.inner
    }
}

impl Layer for Block {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        self.inner.forward(x, mode)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        self.inner.backward(dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.inner.visit_params(f)
    }

    fn name(&self) -> &'static str {
        "block"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// A network expressed as an ordered list of [`Block`]s.
///
/// This is the form both teachers and students take in blockwise
/// distillation: the teacher's block boundaries define where activations are
/// tapped, and the student mirrors the same boundaries.
#[derive(Debug, Clone, Default)]
pub struct BlockNet {
    blocks: Vec<Block>,
}

impl BlockNet {
    /// Creates a network from blocks.
    pub fn new(blocks: Vec<Block>) -> Self {
        BlockNet { blocks }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the network has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Immutable access to block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block(&self, i: usize) -> &Block {
        &self.blocks[i]
    }

    /// Mutable access to block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block_mut(&mut self, i: usize) -> &mut Block {
        &mut self.blocks[i]
    }

    /// Iterates over the blocks.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// Iterates mutably over the blocks.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Block> {
        self.blocks.iter_mut()
    }

    /// Removes and returns block `i` (used to move blocks onto device
    /// threads).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn take_block(&mut self, i: usize) -> Block {
        self.blocks.remove(i)
    }

    /// Runs the forward pass through blocks `lo..hi`, returning the
    /// activation after block `hi - 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is out of bounds or a block rejects its
    /// input.
    pub fn forward_range(
        &mut self,
        x: &Tensor,
        lo: usize,
        hi: usize,
        mode: Mode,
    ) -> Result<Tensor> {
        if lo > hi || hi > self.blocks.len() {
            return Err(TensorError::invalid(format!(
                "forward_range: invalid range {lo}..{hi} for {} blocks",
                self.blocks.len()
            )));
        }
        let mut cur = x.clone();
        for block in &mut self.blocks[lo..hi] {
            cur = block.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    /// Runs the full forward pass, additionally returning the activation at
    /// every block boundary (`result[i]` is the output of block `i`).
    ///
    /// Used by *internal relaying* (TR+IR in the paper), which stores all
    /// intermediate teacher activations in device memory.
    ///
    /// # Errors
    ///
    /// Returns an error if any block rejects its input.
    pub fn forward_collect(&mut self, x: &Tensor, mode: Mode) -> Result<Vec<Tensor>> {
        let mut outs = Vec::with_capacity(self.blocks.len());
        let mut cur = x.clone();
        for block in &mut self.blocks {
            cur = block.forward(&cur, mode)?;
            outs.push(cur.clone());
        }
        Ok(outs)
    }

    /// Total parameter count over all blocks.
    pub fn param_count(&mut self) -> usize {
        self.blocks.iter_mut().map(|b| crate::param_count(b)).sum()
    }
}

impl FromIterator<Block> for BlockNet {
    fn from_iter<I: IntoIterator<Item = Block>>(iter: I) -> Self {
        BlockNet {
            blocks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use pipebd_tensor::Rng64;

    fn tiny_net(rng: &mut Rng64) -> BlockNet {
        (0..3)
            .map(|i| {
                Block::new(
                    format!("b{i}"),
                    Sequential::new(vec![
                        Box::new(Linear::new(4, 4, rng)),
                        Box::new(Relu::new()),
                    ]),
                )
            })
            .collect()
    }

    #[test]
    fn forward_range_matches_chained_blocks() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let full = net.forward_range(&x, 0, 3, Mode::Eval).unwrap();
        let a = net.forward_range(&x, 0, 1, Mode::Eval).unwrap();
        let b = net.forward_range(&a, 1, 2, Mode::Eval).unwrap();
        let c = net.forward_range(&b, 2, 3, Mode::Eval).unwrap();
        assert!(full.allclose(&c, 1e-6).unwrap());
    }

    #[test]
    fn forward_collect_returns_every_boundary() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let outs = net.forward_collect(&x, Mode::Eval).unwrap();
        assert_eq!(outs.len(), 3);
        let direct = net.forward_range(&x, 0, 2, Mode::Eval).unwrap();
        assert!(outs[1].allclose(&direct, 1e-6).unwrap());
    }

    #[test]
    fn forward_range_validates_bounds() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut net = tiny_net(&mut rng);
        let x = Tensor::zeros(&[1, 4]);
        assert!(net.forward_range(&x, 2, 1, Mode::Eval).is_err());
        assert!(net.forward_range(&x, 0, 4, Mode::Eval).is_err());
    }

    #[test]
    fn take_block_moves_ownership() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut net = tiny_net(&mut rng);
        let b = net.take_block(1);
        assert_eq!(b.label(), "b1");
        assert_eq!(net.num_blocks(), 2);
        assert_eq!(net.block(1).label(), "b2");
    }

    #[test]
    fn param_count_sums_blocks() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut net = tiny_net(&mut rng);
        // Each block: 4*4 weights + 4 bias = 20.
        assert_eq!(net.param_count(), 60);
    }
}
