use pipebd_tensor::Tensor;

/// Classifies a trainable parameter.
///
/// NAS workloads alternate between updating network *weights* and
/// *architecture parameters* (the per-candidate logits of a [`MixedOp`]);
/// the optimizer filters on this kind.
///
/// [`MixedOp`]: crate::MixedOp
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Ordinary network weight (conv kernels, biases, norm affines, …).
    Weight,
    /// NAS architecture parameter.
    Arch,
}

/// A trainable tensor together with its gradient accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether this is a weight or an architecture parameter.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a weight parameter with a zeroed gradient.
    pub fn weight(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            kind: ParamKind::Weight,
        }
    }

    /// Creates an architecture parameter with a zeroed gradient.
    pub fn arch(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            kind: ParamKind::Arch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_zero_grad() {
        let p = Param::weight(Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sq_norm(), 0.0);
        assert_eq!(p.kind, ParamKind::Weight);
        let a = Param::arch(Tensor::ones(&[3]));
        assert_eq!(a.kind, ParamKind::Arch);
        assert_eq!(a.grad.dims(), &[3]);
    }
}
