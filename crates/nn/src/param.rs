use pipebd_tensor::{Result, SharedTensor, Tensor, TensorError};

/// Classifies a trainable parameter.
///
/// NAS workloads alternate between updating network *weights* and
/// *architecture parameters* (the per-candidate logits of a [`MixedOp`]);
/// the optimizer filters on this kind.
///
/// [`MixedOp`]: crate::MixedOp
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Ordinary network weight (conv kernels, biases, norm affines, …).
    Weight,
    /// NAS architecture parameter.
    Arch,
}

/// A trainable tensor together with its gradient accumulator.
///
/// The gradient has two representations:
///
/// * **Owned** — [`Param::grad`], the accumulator layers add into during
///   backward passes.
/// * **Shared** — an optional [`SharedTensor`] override installed by the
///   executor's gradient-averaging path ([`Param::set_shared_grad`]).
///   Every replica of a widened stage points at the *same* averaged
///   buffer, so the write-back is a refcount bump instead of a per-param
///   copy. The optimizer reads whichever representation is active via
///   [`Param::grad_view`] and consumes both on `step`.
///
/// After the executor's gradient gather moves the owned buffer out
/// ([`Param::take_grad`]), the owned accumulator is left empty; the next
/// backward pass re-materializes it by *moving* its freshly computed
/// gradient in ([`Param::accumulate_grad`]) — steady-state training never
/// copies a gradient buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Owned accumulated gradient (same shape as `value`, or empty after
    /// [`Param::take_grad`]).
    pub grad: Tensor,
    /// Shared override set by gradient averaging; read preferentially by
    /// [`Param::grad_view`].
    shared_grad: Option<SharedTensor>,
    /// Whether this is a weight or an architecture parameter.
    pub kind: ParamKind,
}

impl Param {
    /// Creates a weight parameter with a zeroed gradient.
    pub fn weight(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            shared_grad: None,
            kind: ParamKind::Weight,
        }
    }

    /// Creates an architecture parameter with a zeroed gradient.
    pub fn arch(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Param {
            value,
            grad,
            shared_grad: None,
            kind: ParamKind::Arch,
        }
    }

    /// The gradient the optimizer should consume: the shared override if
    /// one is installed, the owned accumulator otherwise.
    pub fn grad_view(&self) -> &Tensor {
        match &self.shared_grad {
            Some(s) => s,
            None => &self.grad,
        }
    }

    /// Split borrow of the value (mutably) and the active gradient —
    /// needed by optimizer updates like `value.axpy(-lr, grad)`.
    pub fn value_and_grad(&mut self) -> (&mut Tensor, &Tensor) {
        let grad = match &self.shared_grad {
            Some(s) => &**s,
            None => &self.grad,
        };
        (&mut self.value, grad)
    }

    /// Accumulates `g` into the owned gradient.
    ///
    /// When the owned accumulator is live this adds elementwise; when it
    /// was moved out by [`Param::take_grad`] the buffer is re-seeded by
    /// *moving* `g` in — no allocation, no copy. Any stale shared
    /// override is dropped (a new backward pass invalidates it).
    ///
    /// # Errors
    ///
    /// Returns a shape mismatch if `g`'s shape differs from the
    /// parameter's (on both the add and the re-seed path — a backward
    /// pass producing a wrong-shaped gradient should fail here, at the
    /// layer that produced it, not later in the optimizer).
    pub fn accumulate_grad(&mut self, g: Tensor) -> Result<()> {
        self.shared_grad = None;
        if self.grad.numel() == 0 && g.numel() != 0 {
            if g.dims() != self.value.dims() {
                return Err(TensorError::ShapeMismatch {
                    expected: self.value.dims().to_vec(),
                    actual: g.dims().to_vec(),
                    op: "accumulate_grad",
                });
            }
            self.grad = g;
            Ok(())
        } else {
            self.grad.add_assign(&g)
        }
    }

    /// Mutable access to the owned gradient, re-materializing a zeroed
    /// buffer if it was moved out by [`Param::take_grad`].
    ///
    /// For layers that accumulate by indexing (batch norm, NAS mixed
    /// ops) rather than by whole-tensor adds.
    pub fn grad_mut(&mut self) -> &mut Tensor {
        self.shared_grad = None;
        if self.grad.numel() == 0 && self.value.numel() != 0 {
            self.grad = Tensor::zeros(self.value.dims());
        }
        &mut self.grad
    }

    /// Moves the owned gradient out (for the executor's gather, which
    /// transfers ownership through a channel), leaving the accumulator
    /// empty and dropping any shared override.
    pub fn take_grad(&mut self) -> Tensor {
        self.shared_grad = None;
        std::mem::take(&mut self.grad)
    }

    /// Installs an averaged gradient as a shared handle — the executor's
    /// zero-copy write-back. Replicas of a stage share one allocation.
    pub fn set_shared_grad(&mut self, g: SharedTensor) {
        self.shared_grad = Some(g);
    }

    /// Consumes the gradient after an optimizer step: drops the shared
    /// override and zeroes the owned accumulator (a no-op if it was moved
    /// out).
    pub fn clear_grad(&mut self) {
        self.shared_grad = None;
        self.grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_zero_grad() {
        let p = Param::weight(Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sq_norm(), 0.0);
        assert_eq!(p.kind, ParamKind::Weight);
        let a = Param::arch(Tensor::ones(&[3]));
        assert_eq!(a.kind, ParamKind::Arch);
        assert_eq!(a.grad.dims(), &[3]);
    }

    #[test]
    fn accumulate_moves_into_taken_grad() {
        let mut p = Param::weight(Tensor::ones(&[4]));
        let taken = p.take_grad();
        assert_eq!(taken.dims(), &[4]);
        assert_eq!(p.grad.numel(), 0);
        let g = Tensor::full(&[4], 2.0);
        let src_ptr = g.data().as_ptr();
        p.accumulate_grad(g).unwrap();
        assert_eq!(p.grad.data().as_ptr(), src_ptr, "must move, not copy");
        // A live accumulator adds instead.
        p.accumulate_grad(Tensor::ones(&[4])).unwrap();
        assert_eq!(p.grad.data(), &[3.0; 4]);
    }

    #[test]
    fn accumulate_rejects_wrong_shape_on_reseed() {
        let mut p = Param::weight(Tensor::ones(&[4]));
        let _ = p.take_grad();
        assert!(p.accumulate_grad(Tensor::ones(&[3])).is_err());
    }

    #[test]
    fn shared_override_wins_until_cleared() {
        let mut p = Param::weight(Tensor::ones(&[2]));
        p.accumulate_grad(Tensor::full(&[2], 5.0)).unwrap();
        let avg = SharedTensor::new(Tensor::full(&[2], 7.0));
        p.set_shared_grad(avg.clone());
        assert_eq!(p.grad_view().data(), &[7.0, 7.0]);
        assert!(avg.ref_count() >= 2, "write-back must share, not copy");
        p.clear_grad();
        assert_eq!(p.grad_view().data(), &[0.0, 0.0]);
    }

    #[test]
    fn grad_mut_rematerializes_after_take() {
        let mut p = Param::weight(Tensor::ones(&[3]));
        let _ = p.take_grad();
        p.grad_mut().data_mut()[1] += 4.0;
        assert_eq!(p.grad.data(), &[0.0, 4.0, 0.0]);
    }

    #[test]
    fn value_and_grad_splits_for_axpy() {
        let mut p = Param::weight(Tensor::ones(&[2]));
        p.set_shared_grad(SharedTensor::new(Tensor::full(&[2], 2.0)));
        let (value, grad) = p.value_and_grad();
        value.axpy(-0.5, grad).unwrap();
        assert_eq!(p.value.data(), &[0.0, 0.0]);
    }
}
