use pipebd_tensor::{Result, Rng64, Tensor, TensorError};

use crate::{Layer, Mode, Param};

/// A fully-connected layer `y = x W + b` on `[batch, in]` inputs.
///
/// Weight layout is `[in, out]` so the forward pass is a plain matmul.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        Linear {
            weight: Param::weight(Tensor::kaiming(
                &[in_features, out_features],
                in_features,
                rng,
            )),
            bias: Param::weight(Tensor::zeros(&[out_features])),
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = x
            .matmul(&self.weight.value)?
            .add_bias_rows(&self.bias.value)?;
        if mode == Mode::Train {
            self.cache = Some(x.clone());
        }
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .as_ref()
            .ok_or_else(|| TensorError::invalid("linear: backward before forward"))?;
        // dW = xᵀ dy ; db = column sums of dy ; dx = dy Wᵀ.
        self.weight.accumulate_grad(x.matmul_t_a(dy)?)?;
        self.bias.accumulate_grad(dy.sum_rows()?)?;
        dy.matmul_b_t(&self.weight.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> &'static str {
        "linear"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_matmul() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert_eq!(l.in_features(), 3);
        assert_eq!(l.out_features(), 2);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        let probe = Tensor::randn(y.dims(), &mut rng);
        let dx = l.backward(&probe).unwrap();

        // Check dx numerically.
        for i in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-3;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-3;
            let fp = l
                .forward(&xp, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let fm = l
                .forward(&xm, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let num = (fp - fm) / 2e-3;
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "dx[{i}] {num} vs {}",
                dx.data()[i]
            );
        }

        // Check dW numerically against the accumulated grad.
        let mut dws = Vec::new();
        l.visit_params(&mut |p| dws.push(p.grad.clone()));
        let dw = &dws[0];
        let mut weights = Vec::new();
        l.visit_params(&mut |p| weights.push(p.value.clone()));
        for i in 0..weights[0].numel() {
            let mut lp = l.clone();
            let mut lm = l.clone();
            lp.visit_params(&mut |p| {
                if p.value.dims().len() == 2 {
                    p.value.data_mut()[i] += 1e-3;
                }
            });
            lm.visit_params(&mut |p| {
                if p.value.dims().len() == 2 {
                    p.value.data_mut()[i] -= 1e-3;
                }
            });
            let fp = lp
                .forward(&x, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let fm = lm
                .forward(&x, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let num = (fp - fm) / 2e-3;
            assert!(
                (num - dw.data()[i]).abs() < 1e-2,
                "dW[{i}] {num} vs {}",
                dw.data()[i]
            );
        }
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        let dy = Tensor::ones(y.dims());
        l.backward(&dy).unwrap();
        let mut g1 = Vec::new();
        l.visit_params(&mut |p| g1.push(p.grad.clone()));
        l.forward(&x, Mode::Train).unwrap();
        l.backward(&dy).unwrap();
        let mut g2 = Vec::new();
        l.visit_params(&mut |p| g2.push(p.grad.clone()));
        for (a, b) in g1.iter().zip(g2.iter()) {
            let mut doubled = a.clone();
            doubled.scale(2.0);
            assert!(doubled.allclose(b, 1e-5).unwrap());
        }
    }
}
