use pipebd_tensor::{Result, Tensor, TensorError};

use crate::{Layer, Mode, Param};

/// 2-D batch normalization over `[batch, channels, h, w]` inputs.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates; evaluation mode uses the running estimates. The backward pass
/// implements the full batch-statistics gradient (not the "frozen stats"
/// approximation), validated against finite differences in the tests.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::weight(Tensor::ones(&[channels])),
            beta: Param::weight(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels this layer normalizes.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    fn check(&self, x: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if x.shape().rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: x.shape().rank(),
                op: "batchnorm2d",
            });
        }
        let d = x.dims();
        if d[1] != self.channels() {
            return Err(TensorError::ShapeMismatch {
                expected: vec![d[0], self.channels(), d[2], d[3]],
                actual: d.to_vec(),
                op: "batchnorm2d",
            });
        }
        Ok((d[0], d[1], d[2], d[3]))
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check(x)?;
        let m = (n * h * w) as f32;
        let xd = x.data();
        let mut y = Tensor::zeros(x.dims());
        match mode {
            Mode::Train => {
                let mut xhat = Tensor::zeros(x.dims());
                let mut inv_stds = vec![0.0f32; c];
                for ch in 0..c {
                    let mut mean = 0.0f32;
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        mean += xd[base..base + h * w].iter().sum::<f32>();
                    }
                    mean /= m;
                    let mut var = 0.0f32;
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        for &v in &xd[base..base + h * w] {
                            var += (v - mean) * (v - mean);
                        }
                    }
                    var /= m;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ch] = inv_std;
                    let g = self.gamma.value.data()[ch];
                    let bta = self.beta.value.data()[ch];
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        for i in base..base + h * w {
                            let xh = (xd[i] - mean) * inv_std;
                            xhat.data_mut()[i] = xh;
                            y.data_mut()[i] = g * xh + bta;
                        }
                    }
                    // Update running statistics.
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std: inv_stds,
                });
            }
            Mode::Eval => {
                for ch in 0..c {
                    let mean = self.running_mean.data()[ch];
                    let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                    let g = self.gamma.value.data()[ch];
                    let bta = self.beta.value.data()[ch];
                    for b in 0..n {
                        let base = (b * c + ch) * h * w;
                        for i in base..base + h * w {
                            y.data_mut()[i] = g * (xd[i] - mean) * inv_std + bta;
                        }
                    }
                }
            }
        }
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| TensorError::invalid("batchnorm2d: backward before forward"))?;
        let (n, c, h, w) = self.check(dy)?;
        let m = (n * h * w) as f32;
        let dyd = dy.data();
        let xhat = cache.xhat.data();
        let mut dx = Tensor::zeros(dy.dims());
        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let inv_std = cache.inv_std[ch];
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for b in 0..n {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    sum_dy += dyd[i];
                    sum_dy_xhat += dyd[i] * xhat[i];
                }
            }
            self.beta.grad_mut().data_mut()[ch] += sum_dy;
            self.gamma.grad_mut().data_mut()[ch] += sum_dy_xhat;
            let k = g * inv_std / m;
            for b in 0..n {
                let base = (b * c + ch) * h * w;
                for i in base..base + h * w {
                    dx.data_mut()[i] = k * (m * dyd[i] - sum_dy - xhat[i] * sum_dy_xhat);
                }
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Rng64;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], &mut rng).map(|v| v * 3.0 + 1.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ~0 and var ~1.
        for ch in 0..3 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for h in 0..5 {
                    for w in 0..5 {
                        vals.push(y.at(&[b, ch, h, w]).unwrap());
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[8, 2, 4, 4], &mut rng).map(|v| v * 2.0 + 5.0);
        // Train a few times to move running stats.
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // With converged running stats, eval output is also ~normalized.
        assert!(y.mean().abs() < 0.2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let probe = Tensor::randn(y.dims(), &mut rng);
        let dx = bn.backward(&probe).unwrap();
        let f = |xt: &Tensor, bn: &mut BatchNorm2d| {
            bn.forward(xt, Mode::Train)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum()
        };
        for &i in &[0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-2;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-2;
            // Use fresh clones so running stats do not drift into the check.
            let num = (f(&xp, &mut bn.clone()) - f(&xm, &mut bn.clone())) / 2e-2;
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                "dx[{i}] {num} vs {ana}"
            );
        }
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        assert!(bn.forward(&x, Mode::Train).is_err());
    }
}
