use pipebd_tensor::{Result, Tensor, TensorError};

use crate::{Layer, Mode, Param};

/// A NAS mixed operation: a softmax-weighted sum of candidate layers with a
/// trainable architecture parameter per candidate.
///
/// This mirrors the differentiable-NAS formulation used by the paper's NAS
/// workload (ProxylessNAS search space, DNA-style blockwise supervision):
/// `y = Σ_k softmax(α)_k · op_k(x)`. During the search, weight steps update
/// the candidate ops' weights and architecture steps update `α`; after the
/// search, [`MixedOp::best_candidate`] selects the final operation.
///
/// Gradients:
/// * `∂L/∂x = Σ_k w_k · op_kᵀ(dy)`
/// * `∂L/∂α_k = w_k · (⟨dy, y_k⟩ − Σ_j w_j ⟨dy, y_j⟩)` (softmax chain rule)
pub struct MixedOp {
    candidates: Vec<Box<dyn Layer>>,
    alpha: Param,
    cache: Option<MixedCache>,
}

struct MixedCache {
    outputs: Vec<Tensor>,
    weights: Vec<f32>,
}

impl MixedOp {
    /// Creates a mixed op over the given candidate layers, with uniform
    /// (zero-logit) architecture parameters.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(candidates: Vec<Box<dyn Layer>>) -> Self {
        assert!(
            !candidates.is_empty(),
            "MixedOp needs at least one candidate"
        );
        let k = candidates.len();
        MixedOp {
            candidates,
            alpha: Param::arch(Tensor::zeros(&[k])),
            cache: None,
        }
    }

    /// Number of candidate operations.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Softmax of the current architecture parameters.
    pub fn candidate_weights(&self) -> Vec<f32> {
        softmax(self.alpha.value.data())
    }

    /// Index of the currently most-probable candidate.
    pub fn best_candidate(&self) -> usize {
        self.alpha.value.argmax().unwrap_or(0)
    }
}

fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

impl Layer for MixedOp {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let weights = self.candidate_weights();
        let mut outputs = Vec::with_capacity(self.candidates.len());
        let mut acc: Option<Tensor> = None;
        for (op, &w) in self.candidates.iter_mut().zip(weights.iter()) {
            let y = op.forward(x, mode)?;
            match &mut acc {
                None => {
                    let mut scaled = y.clone();
                    scaled.scale(w);
                    acc = Some(scaled);
                }
                Some(a) => a.axpy(w, &y)?,
            }
            outputs.push(y);
        }
        if mode == Mode::Train {
            self.cache = Some(MixedCache { outputs, weights });
        }
        Ok(acc.expect("at least one candidate"))
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| TensorError::invalid("mixed_op: backward before forward"))?;
        // Inner products ⟨dy, y_k⟩ for the architecture gradient.
        let dots: Vec<f32> = cache
            .outputs
            .iter()
            .map(|y| {
                y.data()
                    .iter()
                    .zip(dy.data().iter())
                    .map(|(&a, &b)| a * b)
                    .sum()
            })
            .collect();
        let mean_dot: f32 = cache
            .weights
            .iter()
            .zip(dots.iter())
            .map(|(&w, &d)| w * d)
            .sum();
        let alpha_grad = self.alpha.grad_mut().data_mut();
        for k in 0..self.candidates.len() {
            alpha_grad[k] += cache.weights[k] * (dots[k] - mean_dot);
        }
        // Input gradient: weighted sum of candidate adjoints. Candidate
        // weight grads are scaled by w_k because y = Σ w_k op_k(x).
        let mut dx: Option<Tensor> = None;
        for (k, op) in self.candidates.iter_mut().enumerate() {
            let mut scaled_dy = dy.clone();
            scaled_dy.scale(cache.weights[k]);
            let dxk = op.backward(&scaled_dy)?;
            match &mut dx {
                None => dx = Some(dxk),
                Some(a) => a.add_assign(&dxk)?,
            }
        }
        dx.ok_or_else(|| TensorError::invalid("mixed_op: no candidates"))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for op in &mut self.candidates {
            op.visit_params(f);
        }
        f(&mut self.alpha);
    }

    fn name(&self) -> &'static str {
        "mixed_op"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MixedOp {
            candidates: self.candidates.clone(),
            alpha: self.alpha.clone(),
            cache: None,
        })
    }
}

impl std::fmt::Debug for MixedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MixedOp({} candidates, weights {:?})",
            self.candidates.len(),
            self.candidate_weights()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, ParamKind};
    use pipebd_tensor::Rng64;

    fn mixed(rng: &mut Rng64) -> MixedOp {
        MixedOp::new(vec![
            Box::new(Conv2d::new(2, 2, 3, 1, 1, rng)),
            Box::new(Conv2d::new(2, 2, 1, 1, 0, rng)),
        ])
    }

    #[test]
    fn uniform_alpha_gives_equal_weights() {
        let mut rng = Rng64::seed_from_u64(0);
        let m = mixed(&mut rng);
        let w = m.candidate_weights();
        assert!((w[0] - 0.5).abs() < 1e-6);
        assert!((w[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn forward_is_convex_combination() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut m = mixed(&mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = m.forward(&x, Mode::Train).unwrap();
        // Individually run both candidates.
        let mut y0 = None;
        let mut y1 = None;
        if let Some(c) = m.cache.as_ref() {
            y0 = Some(c.outputs[0].clone());
            y1 = Some(c.outputs[1].clone());
        }
        let mut expect = y0.unwrap();
        expect.scale(0.5);
        expect.axpy(0.5, &y1.unwrap()).unwrap();
        assert!(y.allclose(&expect, 1e-5).unwrap());
    }

    #[test]
    fn arch_gradient_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut m = mixed(&mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = m.forward(&x, Mode::Train).unwrap();
        let probe = Tensor::randn(y.dims(), &mut rng);
        m.backward(&probe).unwrap();
        let ana = m.alpha.grad.clone();

        for k in 0..2 {
            let eps = 1e-3;
            let mut mp = m.clone_box();
            let mut mm = m.clone_box();
            mp.visit_params(&mut |p| {
                if p.kind == ParamKind::Arch {
                    p.value.data_mut()[k] += eps;
                }
            });
            mm.visit_params(&mut |p| {
                if p.kind == ParamKind::Arch {
                    p.value.data_mut()[k] -= eps;
                }
            });
            let fp = mp
                .forward(&x, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let fm = mm
                .forward(&x, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana.data()[k]).abs() < 1e-2 * (1.0 + ana.data()[k].abs()),
                "dalpha[{k}] {num} vs {}",
                ana.data()[k]
            );
        }
    }

    #[test]
    fn best_candidate_follows_alpha() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut m = mixed(&mut rng);
        m.visit_params(&mut |p| {
            if p.kind == ParamKind::Arch {
                p.value.data_mut()[1] = 5.0;
            }
        });
        assert_eq!(m.best_candidate(), 1);
        let w = m.candidate_weights();
        assert!(w[1] > 0.9);
    }

    #[test]
    fn visit_params_includes_arch_param() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut m = mixed(&mut rng);
        let mut kinds = Vec::new();
        m.visit_params(&mut |p| kinds.push(p.kind));
        assert!(kinds.contains(&ParamKind::Arch));
        assert!(kinds.contains(&ParamKind::Weight));
    }
}
