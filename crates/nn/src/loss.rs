//! Loss functions for blockwise distillation and evaluation.

use pipebd_tensor::{Result, Tensor, TensorError};

/// A scalar loss with the gradient w.r.t. the first argument.
#[derive(Debug, Clone, PartialEq)]
pub struct LossValue {
    /// The loss value.
    pub loss: f32,
    /// Gradient of the loss with respect to the prediction tensor.
    pub grad: Tensor,
}

/// Mean-squared-error distillation loss between a student activation and a
/// (detached) teacher activation: `L = mean((s − t)²)`.
///
/// This is the per-block objective of blockwise distillation (`L(Δoutput)`
/// in the paper's Fig. 1): the teacher tensor is a constant, so only the
/// student gradient is produced.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the activations differ in shape.
///
/// # Example
///
/// ```
/// use pipebd_nn::mse_loss;
/// use pipebd_tensor::Tensor;
///
/// # fn main() -> Result<(), pipebd_tensor::TensorError> {
/// let s = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let t = Tensor::from_vec(vec![0.0, 2.0], &[2])?;
/// let l = mse_loss(&s, &t)?;
/// assert!((l.loss - 0.5).abs() < 1e-6);
/// assert_eq!(l.grad.data(), &[1.0, 0.0]); // 2(s-t)/n
/// # Ok(())
/// # }
/// ```
pub fn mse_loss(student: &Tensor, teacher: &Tensor) -> Result<LossValue> {
    let diff = student.sub(teacher)?;
    let n = diff.numel().max(1) as f32;
    let loss = diff.sq_norm() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    Ok(LossValue { loss, grad })
}

/// Softmax cross-entropy with integer labels on `[batch, classes]` logits.
///
/// Returns the mean loss over the batch and its gradient w.r.t. the logits.
///
/// # Errors
///
/// Returns an error if `logits` is not rank-2 or `labels.len()` differs from
/// the batch size, or any label is out of range.
pub fn cross_entropy_loss(logits: &Tensor, labels: &[usize]) -> Result<LossValue> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "cross_entropy",
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
            op: "cross_entropy",
        });
    }
    let ld = logits.data();
    let mut grad = Tensor::zeros(&[n, c]);
    let mut loss = 0.0f32;
    for i in 0..n {
        let label = labels[i];
        if label >= c {
            return Err(TensorError::invalid(format!(
                "cross_entropy: label {label} out of range for {c} classes"
            )));
        }
        let row = &ld[i * c..(i + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = row.iter().map(|&v| (v - max).exp()).sum();
        let log_z = max + sum_exp.ln();
        loss += log_z - row[label];
        let grow = &mut grad.data_mut()[i * c..(i + 1) * c];
        for (j, g) in grow.iter_mut().enumerate() {
            let p = (row[j] - log_z).exp();
            *g = (p - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    Ok(LossValue {
        loss: loss / n as f32,
        grad,
    })
}

/// Top-1 accuracy of `[batch, classes]` logits against integer labels.
///
/// # Errors
///
/// Returns an error if `logits` is not rank-2 or sizes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
            op: "accuracy",
        });
    }
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
            op: "accuracy",
        });
    }
    let ld = logits.data();
    let mut correct = 0usize;
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == labels[i] {
            correct += 1;
        }
    }
    Ok(correct as f32 / n.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Rng64;

    #[test]
    fn mse_zero_when_equal() {
        let t = Tensor::ones(&[2, 3]);
        let l = mse_loss(&t, &t).unwrap();
        assert_eq!(l.loss, 0.0);
        assert_eq!(l.grad.sq_norm(), 0.0);
    }

    #[test]
    fn mse_grad_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(0);
        let s = Tensor::randn(&[2, 3], &mut rng);
        let t = Tensor::randn(&[2, 3], &mut rng);
        let l = mse_loss(&s, &t).unwrap();
        for i in 0..s.numel() {
            let mut sp = s.clone();
            sp.data_mut()[i] += 1e-3;
            let mut sm = s.clone();
            sm.data_mut()[i] -= 1e-3;
            let num = (mse_loss(&sp, &t).unwrap().loss - mse_loss(&sm, &t).unwrap().loss) / 2e-3;
            assert!((num - l.grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[1, 4]);
        let l = cross_entropy_loss(&logits, &[2]).unwrap();
        assert!((l.loss - (4.0f32).ln()).abs() < 1e-5);
        // grad = p - onehot, p = 0.25
        assert!((l.grad.data()[2] - (0.25 - 1.0)).abs() < 1e-5);
        assert!((l.grad.data()[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_differences() {
        let mut rng = Rng64::seed_from_u64(1);
        let logits = Tensor::randn(&[3, 5], &mut rng);
        let labels = [0usize, 3, 4];
        let l = cross_entropy_loss(&logits, &labels).unwrap();
        for &i in &[0usize, 4, 7, 14] {
            let mut lp = logits.clone();
            lp.data_mut()[i] += 1e-3;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= 1e-3;
            let num = (cross_entropy_loss(&lp, &labels).unwrap().loss
                - cross_entropy_loss(&lm, &labels).unwrap().loss)
                / 2e-3;
            assert!(
                (num - l.grad.data()[i]).abs() < 1e-3,
                "grad[{i}] {num} vs {}",
                l.grad.data()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_validations() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(cross_entropy_loss(&logits, &[0]).is_err()); // wrong label count
        assert!(cross_entropy_loss(&logits, &[0, 9]).is_err()); // label range
        assert!(cross_entropy_loss(&Tensor::zeros(&[3]), &[0, 0, 0]).is_err());
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }
}
