use pipebd_tensor::{Result, Tensor};

use crate::{Layer, Mode, Param};

/// A sequence of layers applied in order.
///
/// `Sequential` is itself a [`Layer`], so sequences nest.
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequence from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the sequence.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the sequence has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential({names:?})")
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, Relu};
    use pipebd_tensor::Rng64;

    #[test]
    fn forward_backward_through_stack() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(4, 8, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        assert_eq!(net.len(), 3);
        let x = Tensor::randn(&[2, 4], &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        let dx = net.backward(&Tensor::ones(&[2, 3])).unwrap();
        assert_eq!(dx.dims(), &[2, 4]);
    }

    #[test]
    fn visit_params_covers_all_layers() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(2, 2, &mut rng)),
            Box::new(Linear::new(2, 2, &mut rng)),
        ]);
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4); // two weights + two biases
    }

    #[test]
    fn debug_shows_layer_names() {
        let mut rng = Rng64::seed_from_u64(2);
        let net = Sequential::default().push(Box::new(Linear::new(1, 1, &mut rng)));
        assert!(format!("{net:?}").contains("linear"));
    }
}
