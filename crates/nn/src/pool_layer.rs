use pipebd_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolIndices, Result, Tensor, TensorError,
};

use crate::{Layer, Mode, Param};

/// Average-pooling layer with a square window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average pool with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            window,
            stride,
            input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.input_dims = Some(x.dims().to_vec());
        }
        avg_pool2d(x, self.window, self.stride)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| TensorError::invalid("avg_pool2d: backward before forward"))?;
        avg_pool2d_backward(dy, dims, self.window, self.stride)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "avg_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Max-pooling layer with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    indices: Option<MaxPoolIndices>,
}

impl MaxPool2d {
    /// Creates a max pool with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            window,
            stride,
            indices: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let (y, idx) = max_pool2d(x, self.window, self.stride)?;
        if mode == Mode::Train {
            self.indices = Some(idx);
        }
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let idx = self
            .indices
            .as_ref()
            .ok_or_else(|| TensorError::invalid("max_pool2d: backward before forward"))?;
        max_pool2d_backward(dy, idx)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling `[n, c, h, w] -> [n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.input_dims = Some(x.dims().to_vec());
        }
        global_avg_pool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let dims = self
            .input_dims
            .as_ref()
            .ok_or_else(|| TensorError::invalid("global_avg_pool: backward before forward"))?;
        global_avg_pool_backward(dy, dims)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Rng64;

    #[test]
    fn avg_pool_layer_roundtrip() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut l = AvgPool2d::new(2, 2);
        let x = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        let dx = l.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!((dx.sum() - 8.0).abs() < 1e-5);
    }

    #[test]
    fn max_pool_layer_routes_gradient() {
        let mut l = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 1.0, 1.0, 1.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 4.0);
        let dx = l.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(dx.at(&[0, 0, 2, 2]).unwrap(), 1.0);
    }

    #[test]
    fn global_pool_layer_shapes() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut l = GlobalAvgPool::new();
        let x = Tensor::randn(&[3, 5, 2, 2], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[3, 5]);
        let dx = l.backward(&Tensor::ones(&[3, 5])).unwrap();
        assert_eq!(dx.dims(), &[3, 5, 2, 2]);
    }
}
