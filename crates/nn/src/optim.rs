use pipebd_tensor::{Result, Tensor};

use crate::{Layer, Param, ParamKind};

/// Stochastic gradient descent with momentum and weight decay.
///
/// The optimizer keeps one velocity buffer per parameter, keyed by the
/// deterministic visitation order of [`Layer::visit_params`]. A single
/// `Sgd` instance must therefore always be stepped against the same layer —
/// exactly how the paper's decoupled parameter update works: each student
/// block owns its optimizer and steps it independently of other blocks.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    kind_filter: Option<ParamKind>,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer updating every parameter kind.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            kind_filter: None,
            velocities: Vec::new(),
        }
    }

    /// Creates an SGD optimizer updating only parameters of `kind`.
    ///
    /// NAS alternates a weight optimizer (`ParamKind::Weight`) and an
    /// architecture optimizer (`ParamKind::Arch`).
    pub fn for_kind(lr: f32, momentum: f32, weight_decay: f32, kind: ParamKind) -> Self {
        Sgd {
            kind_filter: Some(kind),
            ..Sgd::new(lr, momentum, weight_decay)
        }
    }

    /// The current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// The momentum velocity buffers, in [`Layer::visit_params`] order.
    ///
    /// Empty until the first [`Sgd::step`] (buffers are allocated
    /// lazily). Checkpointing snapshots these so a restored optimizer
    /// continues the exact same trajectory.
    pub fn velocities(&self) -> &[Tensor] {
        &self.velocities
    }

    /// Replaces the velocity buffers with a checkpointed snapshot.
    ///
    /// The caller must provide buffers captured from an optimizer stepped
    /// against the same layer; shapes are re-checked on the next
    /// [`Sgd::step`] like any other mismatch.
    pub fn restore_velocities(&mut self, velocities: Vec<Tensor>) {
        self.velocities = velocities;
    }

    /// Applies one update step to every matching parameter of `layer`,
    /// consuming the accumulated gradients (they are cleared afterwards).
    ///
    /// The gradient is read through [`Param::grad_view`] and never
    /// mutated, so a shared averaged gradient installed by the executor's
    /// data-parallel write-back is consumed in place — every stage replica
    /// steps off the same buffer.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (which indicate the optimizer was
    /// stepped against a different layer than it was created for).
    pub fn step(&mut self, layer: &mut dyn Layer) -> Result<()> {
        let mut idx = 0usize;
        let mut result = Ok(());
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let filter = self.kind_filter;
        let velocities = &mut self.velocities;
        layer.visit_params(&mut |p: &mut Param| {
            if result.is_err() {
                return;
            }
            if velocities.len() == idx {
                velocities.push(Tensor::zeros(p.value.dims()));
            }
            let matches = filter.map_or(true, |k| k == p.kind);
            if matches {
                let vel = &mut velocities[idx];
                let step_result = (|| -> Result<()> {
                    if momentum != 0.0 {
                        // vel = momentum * vel + grad (+ wd * value)
                        vel.scale(momentum);
                        vel.add_assign(p.grad_view())?;
                        if weight_decay != 0.0 {
                            vel.axpy(weight_decay, &p.value)?;
                        }
                        p.value.axpy(-lr, vel)?;
                    } else {
                        if weight_decay != 0.0 {
                            p.value.scale(1.0 - lr * weight_decay);
                        }
                        let (value, grad) = p.value_and_grad();
                        value.axpy(-lr, grad)?;
                    }
                    p.clear_grad();
                    Ok(())
                })();
                if let Err(e) = step_result {
                    result = Err(e);
                }
            }
            idx += 1;
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, MixedOp, Mode};
    use pipebd_tensor::{Rng64, Tensor};

    #[test]
    fn plain_sgd_descends_quadratic() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut l = Linear::new(2, 1, &mut rng);
        let mut sgd = Sgd::new(0.05, 0.0, 0.0);
        let x = Tensor::randn(&[16, 2], &mut rng);
        let target = Tensor::zeros(&[16, 1]);
        let mut last = f32::INFINITY;
        for _ in 0..100 {
            let y = l.forward(&x, Mode::Train).unwrap();
            let loss = crate::mse_loss(&y, &target).unwrap();
            l.backward(&loss.grad).unwrap();
            sgd.step(&mut l).unwrap();
            last = loss.loss;
        }
        assert!(last < 1e-3, "loss did not converge: {last}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let mut rng = Rng64::seed_from_u64(1);
        let x = Tensor::randn(&[16, 4], &mut rng);
        let target = Tensor::zeros(&[16, 1]);
        let run = |momentum: f32, rng: &mut Rng64| {
            let mut l = Linear::new(4, 1, rng);
            let mut sgd = Sgd::new(0.02, momentum, 0.0);
            let mut loss_v = 0.0;
            for _ in 0..40 {
                let y = l.forward(&x, Mode::Train).unwrap();
                let loss = crate::mse_loss(&y, &target).unwrap();
                l.backward(&loss.grad).unwrap();
                sgd.step(&mut l).unwrap();
                loss_v = loss.loss;
            }
            loss_v
        };
        let mut rng_a = Rng64::seed_from_u64(2);
        let mut rng_b = Rng64::seed_from_u64(2);
        let plain = run(0.0, &mut rng_a);
        let with_momentum = run(0.9, &mut rng_b);
        assert!(
            with_momentum < plain,
            "momentum {with_momentum} not faster than plain {plain}"
        );
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut l = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[4, 2], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        l.backward(&Tensor::ones(y.dims())).unwrap();
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        sgd.step(&mut l).unwrap();
        l.visit_params(&mut |p| assert_eq!(p.grad.sq_norm(), 0.0));
    }

    #[test]
    fn kind_filter_only_touches_matching_params() {
        let mut rng = Rng64::seed_from_u64(4);
        let mut m = MixedOp::new(vec![
            Box::new(Linear::new(2, 2, &mut rng)),
            Box::new(Linear::new(2, 2, &mut rng)),
        ]);
        let x = Tensor::randn(&[4, 2], &mut rng);
        let y = m.forward(&x, Mode::Train).unwrap();
        m.backward(&Tensor::ones(y.dims())).unwrap();
        let before = crate::snapshot_params(&mut m);
        let mut arch_sgd = Sgd::for_kind(0.5, 0.0, 0.0, ParamKind::Arch);
        arch_sgd.step(&mut m).unwrap();
        let after = crate::snapshot_params(&mut m);
        // All weight params unchanged, arch param (last) changed.
        let n = before.len();
        for i in 0..n - 1 {
            assert_eq!(before[i], after[i], "weight param {i} moved");
        }
        assert_ne!(before[n - 1], after[n - 1], "arch param did not move");
    }

    #[test]
    fn velocity_restore_resumes_identical_trajectory() {
        let mut rng = Rng64::seed_from_u64(6);
        let x = Tensor::randn(&[8, 3], &mut rng);
        let target = Tensor::zeros(&[8, 1]);
        let step_once = |l: &mut Linear, sgd: &mut Sgd| {
            let y = l.forward(&x, Mode::Train).unwrap();
            let loss = crate::mse_loss(&y, &target).unwrap();
            l.backward(&loss.grad).unwrap();
            sgd.step(l).unwrap();
        };
        // Uninterrupted run: 4 momentum steps.
        let mut rng_a = Rng64::seed_from_u64(7);
        let mut l_ref = Linear::new(3, 1, &mut rng_a);
        let mut sgd_ref = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..4 {
            step_once(&mut l_ref, &mut sgd_ref);
        }
        // Checkpointed run: 2 steps, snapshot, restore into a *fresh*
        // optimizer, 2 more steps.
        let mut rng_b = Rng64::seed_from_u64(7);
        let mut l = Linear::new(3, 1, &mut rng_b);
        let mut sgd = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..2 {
            step_once(&mut l, &mut sgd);
        }
        let saved = sgd.velocities().to_vec();
        assert!(!saved.is_empty(), "step allocated velocity buffers");
        let mut resumed = Sgd::new(0.05, 0.9, 0.0);
        resumed.restore_velocities(saved);
        for _ in 0..2 {
            step_once(&mut l, &mut resumed);
        }
        let a = crate::snapshot_params(&mut l_ref);
        let b = crate::snapshot_params(&mut l);
        assert_eq!(a, b, "restored velocities must resume bitwise");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng64::seed_from_u64(5);
        let mut l = Linear::new(2, 2, &mut rng);
        let norm_before: f32 = crate::snapshot_params(&mut l)
            .iter()
            .map(|t| t.sq_norm())
            .sum();
        // No data gradient: forward/backward with zero dy, decay only.
        let x = Tensor::randn(&[1, 2], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        l.backward(&Tensor::zeros(y.dims())).unwrap();
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        sgd.step(&mut l).unwrap();
        let norm_after: f32 = crate::snapshot_params(&mut l)
            .iter()
            .map(|t| t.sq_norm())
            .sum();
        assert!(norm_after < norm_before);
    }
}
