use pipebd_tensor::{
    conv2d, conv2d_grad_input, conv2d_grad_weight, Conv2dSpec, Result, Rng64, Tensor, TensorError,
};

use crate::{Layer, Mode, Param};

/// A grouped 2-D convolution layer with optional per-channel bias.
///
/// Covers dense convolutions (`groups == 1`), depthwise convolutions
/// (`groups == channels`), and pointwise 1×1 convolutions. Weight layout is
/// `[out_channels, in_channels / groups, k, k]`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Option<Param>,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    input: Tensor,
}

impl Conv2d {
    /// Creates a dense convolution with Kaiming-normal weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng64,
    ) -> Self {
        Conv2d::from_spec(
            Conv2dSpec::dense(in_channels, out_channels, kernel, stride, padding),
            true,
            rng,
        )
    }

    /// Creates a depthwise convolution (`groups == channels`).
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, rng: &mut Rng64) -> Self {
        Conv2d::from_spec(
            Conv2dSpec::depthwise(channels, kernel, stride, kernel / 2),
            true,
            rng,
        )
    }

    /// Creates a pointwise 1×1 convolution.
    pub fn pointwise(in_channels: usize, out_channels: usize, rng: &mut Rng64) -> Self {
        Conv2d::from_spec(
            Conv2dSpec::dense(in_channels, out_channels, 1, 1, 0),
            true,
            rng,
        )
    }

    /// Creates a convolution from an explicit [`Conv2dSpec`].
    pub fn from_spec(spec: Conv2dSpec, bias: bool, rng: &mut Rng64) -> Self {
        let fan_in = (spec.in_channels / spec.groups) * spec.kernel * spec.kernel;
        let weight = Param::weight(Tensor::kaiming(&spec.weight_dims(), fan_in, rng));
        let bias = bias.then(|| Param::weight(Tensor::zeros(&[spec.out_channels])));
        Conv2d {
            spec,
            weight,
            bias,
            cache: None,
        }
    }

    /// The layer's convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }
}

fn add_channel_bias(y: &mut Tensor, bias: &Tensor) {
    let dims = y.dims().to_vec();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let bd = bias.data().to_vec();
    let yd = y.data_mut();
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            let bias_v = bd[ch];
            for v in &mut yd[base..base + h * w] {
                *v += bias_v;
            }
        }
    }
}

fn channel_bias_grad(dy: &Tensor) -> Tensor {
    let dims = dy.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let dyd = dy.data();
    let mut db = vec![0.0f32; c];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            db[ch] += dyd[base..base + h * w].iter().sum::<f32>();
        }
    }
    Tensor::from_vec(db, &[c]).expect("channel bias grad shape")
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut y = conv2d(x, &self.weight.value, self.spec)?;
        if let Some(b) = &self.bias {
            add_channel_bias(&mut y, &b.value);
        }
        if mode == Mode::Train {
            self.cache = Some(ConvCache { input: x.clone() });
        }
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| TensorError::invalid("conv2d: backward before forward"))?;
        let x = &cache.input;
        let dw = conv2d_grad_weight(x, dy, self.spec)?;
        self.weight.accumulate_grad(dw)?;
        if let Some(b) = &mut self.bias {
            b.accumulate_grad(channel_bias_grad(dy))?;
        }
        let hw = (x.dims()[2], x.dims()[3]);
        conv2d_grad_input(dy, &self.weight.value, self.spec, hw)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn bias_grad_sums_spatial_and_batch() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut conv = Conv2d::pointwise(2, 2, &mut rng);
        let x = Tensor::randn(&[3, 2, 4, 4], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&Tensor::ones(y.dims())).unwrap();
        conv.visit_params(&mut |p| {
            if p.value.dims() == [2] {
                // db[ch] = n * h * w = 3*4*4 = 48 for all-ones dy.
                assert!(p.grad.allclose(&Tensor::full(&[2], 48.0), 1e-4).unwrap());
            }
        });
    }

    #[test]
    fn gradients_match_finite_differences_through_layer() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 2, 5, 5], &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let probe = Tensor::randn(y.dims(), &mut rng);
        let dx = conv.backward(&probe).unwrap();

        // Finite differences on a few input coordinates.
        let f = |xt: &Tensor, conv: &mut Conv2d| {
            conv.forward(xt, Mode::Eval)
                .unwrap()
                .mul(&probe)
                .unwrap()
                .sum()
        };
        for &i in &[0usize, 13, 31, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += 1e-2;
            let mut xm = x.clone();
            xm.data_mut()[i] -= 1e-2;
            let num = (f(&xp, &mut conv) - f(&xm, &mut conv)) / 2e-2;
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dx[{i}] {num} vs {ana}"
            );
        }
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = Rng64::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        let x = Tensor::randn(&[1, 1, 4, 4], &mut rng);
        conv.forward(&x, Mode::Eval).unwrap();
        assert!(conv.backward(&Tensor::ones(&[1, 1, 4, 4])).is_err());
    }
}
