//! Neural-network building blocks for blockwise distillation.
//!
//! This crate layers a small, deterministic NN framework on top of
//! [`pipebd_tensor`]: a [`Layer`] trait with explicit forward/backward
//! passes, the layers needed by the paper's model zoo (convolutions,
//! depthwise-separable convolutions, batch normalization, pooling, linear),
//! the NAS [`MixedOp`] with trainable architecture parameters, distillation
//! and classification losses, and an SGD optimizer.
//!
//! Blockwise distillation itself operates on [`Block`]s — named sub-networks
//! of a [`BlockNet`] — which is exactly the granularity Pipe-BD schedules
//! across devices.
//!
//! # Example
//!
//! ```
//! use pipebd_nn::{Layer, Linear, Mode, Relu, Sequential, Sgd};
//! use pipebd_tensor::{Rng64, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng64::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 2, &mut rng)),
//! ]);
//! let x = Tensor::randn(&[3, 4], &mut rng);
//! let y = net.forward(&x, Mode::Train)?;
//! assert_eq!(y.dims(), &[3, 2]);
//! let dy = Tensor::ones(&[3, 2]);
//! let _dx = net.backward(&dy)?;
//! let mut sgd = Sgd::new(0.1, 0.0, 0.0);
//! sgd.step(&mut net)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod activation;
mod block;
mod conv_layer;
mod linear_layer;
mod loss;
mod mixed;
mod norm;
mod optim;
mod param;
mod pool_layer;
mod seq;

pub use activation::{Relu, Relu6};
pub use block::{Block, BlockNet};
pub use conv_layer::Conv2d;
pub use linear_layer::Linear;
pub use loss::{accuracy, cross_entropy_loss, mse_loss, LossValue};
pub use mixed::MixedOp;
pub use norm::BatchNorm2d;
pub use optim::Sgd;
pub use param::{Param, ParamKind};
pub use pool_layer::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use seq::Sequential;

use pipebd_tensor::{Result, Tensor};

/// Forward-pass mode.
///
/// Training mode caches activations for the backward pass and uses batch
/// statistics in normalization layers; evaluation mode uses running
/// statistics and performs no gradient bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: cache for backward, batch statistics.
    Train,
    /// Inference: running statistics, no gradient bookkeeping required.
    Eval,
}

/// A differentiable layer with explicit forward and backward passes.
///
/// Implementations cache whatever they need during [`Layer::forward`] and
/// consume the cache in [`Layer::backward`], accumulating parameter
/// gradients into their [`Param`]s. Calling `backward` before `forward`
/// is an error.
///
/// Layers are [`Send`] so the threaded executor can move blocks onto
/// device threads, and boxed layers are cloneable so data-parallel groups
/// can replicate a block.
pub trait Layer: Send {
    /// Computes the layer output, caching for a subsequent backward pass
    /// when `mode` is [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Back-propagates `dy` (gradient w.r.t. the last forward output),
    /// accumulates parameter gradients, and returns the gradient w.r.t. the
    /// last forward input.
    ///
    /// # Errors
    ///
    /// Returns an error if no forward pass was cached or `dy` has the wrong
    /// shape.
    fn backward(&mut self, dy: &Tensor) -> Result<Tensor>;

    /// Visits every parameter (weights and, for NAS layers, architecture
    /// parameters) exactly once, in a deterministic order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// A short human-readable layer name (used in traces and error text).
    fn name(&self) -> &'static str;

    /// Clones the layer behind a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Zeroes the gradients of every parameter of `layer` (both the owned
/// accumulator and any shared averaged-gradient override).
pub fn zero_grad(layer: &mut dyn Layer) {
    layer.visit_params(&mut |p| p.clear_grad());
}

/// Total number of scalar parameters (all kinds) in `layer`.
pub fn param_count(layer: &mut dyn Layer) -> usize {
    let mut n = 0usize;
    layer.visit_params(&mut |p| n += p.value.numel());
    n
}

/// Snapshots all parameter values of `layer` (used by parity tests).
pub fn snapshot_params(layer: &mut dyn Layer) -> Vec<Tensor> {
    let mut out = Vec::new();
    layer.visit_params(&mut |p| out.push(p.value.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Rng64;

    #[test]
    fn zero_grad_and_param_count() {
        let mut rng = Rng64::seed_from_u64(0);
        let mut l = Linear::new(3, 2, &mut rng);
        assert_eq!(param_count(&mut l), 3 * 2 + 2);
        let x = Tensor::randn(&[4, 3], &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        l.backward(&Tensor::ones(y.dims())).unwrap();
        let mut nonzero = false;
        l.visit_params(&mut |p| nonzero |= p.grad.sq_norm() > 0.0);
        assert!(nonzero);
        zero_grad(&mut l);
        l.visit_params(&mut |p| assert_eq!(p.grad.sq_norm(), 0.0));
    }

    #[test]
    fn boxed_layer_clone_is_independent() {
        let mut rng = Rng64::seed_from_u64(1);
        let l: Box<dyn Layer> = Box::new(Linear::new(2, 2, &mut rng));
        let mut c = l.clone();
        let mut orig = l;
        let before = snapshot_params(orig.as_mut());
        c.visit_params(&mut |p| p.value.fill(0.0));
        let after = snapshot_params(orig.as_mut());
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b, a);
        }
    }
}
