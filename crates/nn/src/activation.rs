use pipebd_tensor::{parallel, Result, Tensor, TensorError};

use crate::{Layer, Mode, Param};

/// Minimum elements per parallel chunk for activation maps — below this,
/// task spawning costs more than the arithmetic it distributes.
const MIN_PAR_CHUNK: usize = 4096;

/// Rectified linear unit, `max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        let mut y = x.clone();
        // Elementwise, so chunking cannot change any element's value.
        parallel::for_each_chunk(y.data_mut(), MIN_PAR_CHUNK, |chunk| {
            for v in chunk {
                *v = v.max(0.0);
            }
        });
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| TensorError::invalid("relu: backward before forward"))?;
        if mask.len() != dy.numel() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: dy.numel(),
                op: "relu_backward",
            });
        }
        let mut dx = dy.clone();
        for (v, &keep) in dx.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// ReLU6, `min(max(0, x), 6)` — the activation used by MobileNetV2.
#[derive(Debug, Clone, Default)]
pub struct Relu6 {
    mask: Option<Vec<bool>>,
}

impl Relu6 {
    /// Creates a ReLU6 layer.
    pub fn new() -> Self {
        Relu6::default()
    }
}

impl Layer for Relu6 {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if mode == Mode::Train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0 && v < 6.0).collect());
        }
        let mut y = x.clone();
        parallel::for_each_chunk(y.data_mut(), MIN_PAR_CHUNK, |chunk| {
            for v in chunk {
                *v = v.clamp(0.0, 6.0);
            }
        });
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| TensorError::invalid("relu6: backward before forward"))?;
        if mask.len() != dy.numel() {
            return Err(TensorError::LengthMismatch {
                expected: mask.len(),
                actual: dy.numel(),
                op: "relu6_backward",
            });
        }
        let mut dx = dy.clone();
        for (v, &keep) in dx.data_mut().iter_mut().zip(mask.iter()) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(dx)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu6"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut l = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let dy = Tensor::ones(&[3]);
        let dx = l.backward(&dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let mut l = Relu6::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0, 9.0], &[3]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 3.0, 6.0]);
        let dx = l.backward(&Tensor::ones(&[3])).unwrap();
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = Relu::new();
        assert!(l.backward(&Tensor::ones(&[1])).is_err());
    }
}
