//! Round-trip guarantees of the JSON backend:
//!
//! * `parse(render(v)) == v` for arbitrary [`Value`] trees (compact and
//!   pretty), including number-identity (integer vs float) preservation;
//! * shortest-text `f32`/`f64` round-trips are bit-exact;
//! * the NaN/Inf policy (serialize to `null`, refuse to deserialize);
//! * derive-level round-trips across every supported type shape.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use pipebd_json::{from_str, from_value, parse, to_string, to_string_pretty, to_value};
use pipebd_json::{Number, Value};

// ---------------------------------------------------------------------------
// Arbitrary Value trees
// ---------------------------------------------------------------------------

/// SplitMix64, so tree generation is deterministic per seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Builds an arbitrary value: scalars at depth 0, containers above.
fn arb_value(rng: &mut Mix, depth: usize) -> Value {
    let pick = rng.next() % if depth == 0 { 6 } else { 8 };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(rng.next() % 2 == 0),
        2 => Value::Number(Number::PosInt(rng.next())),
        3 => Value::Number(Number::NegInt(-((rng.next() >> 1) as i64) - 1)),
        4 => {
            // Finite float from random bits (shift exponent into range).
            let f = f64::from_bits(rng.next());
            let f = if f.is_finite() {
                f
            } else {
                (rng.next() as f64) * 1e-3
            };
            Value::Number(Number::Float(f))
        }
        5 => Value::String(arb_string(rng)),
        6 => {
            let n = (rng.next() % 4) as usize;
            Value::Array((0..n).map(|_| arb_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = (rng.next() % 4) as usize;
            Value::Object(
                (0..n)
                    .map(|i| {
                        (
                            format!("{}_{i}", arb_string(rng)),
                            arb_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// Strings mixing ASCII, escapes, controls, multibyte, and astral chars.
fn arb_string(rng: &mut Mix) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1f}',
        'é',
        'ß',
        '中',
        '😀',
        '\u{10FFFF}',
        '\u{FFFD}',
    ];
    let len = (rng.next() % 8) as usize;
    (0..len)
        .map(|_| ALPHABET[(rng.next() as usize) % ALPHABET.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_trees_roundtrip_compact_and_pretty(seed in any::<u64>()) {
        let mut rng = Mix(seed);
        let value = arb_value(&mut rng, 3);
        let compact = to_string(&value).expect("render compact");
        prop_assert_eq!(&parse(&compact).expect("reparse compact"), &value);
        let pretty = to_string_pretty(&value).expect("render pretty");
        prop_assert_eq!(&parse(&pretty).expect("reparse pretty"), &value);
        // And through the Value serializer bridge.
        prop_assert_eq!(&to_value(&value).expect("to_value"), &value);
    }

    #[test]
    fn f64_text_roundtrip_is_bit_exact(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        prop_assume!(v.is_finite());
        let text = to_string(&v).expect("serialize");
        let back: f64 = from_str(&text).expect("deserialize");
        prop_assert_eq!(back.to_bits(), v.to_bits(), "drift for {}", v);
    }

    #[test]
    fn f32_shortest_text_roundtrip_is_bit_exact(bits in any::<u64>()) {
        let v = f32::from_bits(bits as u32);
        prop_assume!(v.is_finite());
        let text = to_string(&v).expect("serialize");
        // Shortest form: parsing as f64 then narrowing recovers the bits.
        let back: f32 = from_str(&text).expect("deserialize");
        prop_assert_eq!(back.to_bits(), v.to_bits(), "drift for {}", v);
        // The tree and text paths must agree on f32 (the store persists
        // through to_value; diffs against to_string output must be empty).
        prop_assert_eq!(
            &to_value(&v).expect("to_value"),
            &parse(&text).expect("reparse")
        );
        let tree: f32 = from_value(&to_value(&v).expect("to_value")).expect("from_value");
        prop_assert_eq!(tree.to_bits(), v.to_bits(), "tree drift for {}", v);
    }
}

#[test]
fn integer_extremes_roundtrip() {
    for v in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 53, (1 << 53) + 1] {
        let text = to_string(&v).expect("serialize");
        assert_eq!(from_str::<u64>(&text).expect("deserialize"), v);
    }
    for v in [i64::MIN, i64::MIN + 1, -1i64, 0, i64::MAX] {
        let text = to_string(&v).expect("serialize");
        assert_eq!(from_str::<i64>(&text).expect("deserialize"), v);
    }
    // Range checks reject out-of-range targets instead of wrapping.
    assert!(from_str::<u32>("4294967296").is_err());
    assert!(from_str::<u64>("-1").is_err());
    assert!(from_str::<i8>("200").is_err());
}

#[test]
fn nan_inf_policy_serializes_null_and_refuses_to_load() {
    assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    assert_eq!(to_string(&f32::NEG_INFINITY).unwrap(), "null");
    assert_eq!(to_value(&f64::NAN).unwrap(), Value::Null);
    // Loading null into a float is an error, not NaN.
    assert!(from_str::<f64>("null").is_err());
    // ...but an Option<f64> absorbs it as None.
    assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
}

#[test]
fn float_texts_stay_floats_and_integers_stay_integers() {
    assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    assert_eq!(to_string(&2u64).unwrap(), "2");
    assert_eq!(parse("2.0").unwrap(), Value::Number(Number::Float(2.0)));
    assert_eq!(parse("2").unwrap(), Value::Number(Number::PosInt(2)));
    // -0.0 keeps its sign bit through text.
    let back: f64 = from_str(&to_string(&-0.0f64).unwrap()).unwrap();
    assert_eq!(back.to_bits(), (-0.0f64).to_bits());
}

// ---------------------------------------------------------------------------
// Derive-level round-trips across every supported shape
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Newtype(u64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(i32, String);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UnitMarker;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Shape {
    Empty,
    Point(f32),
    Segment(f32, f32),
    Rect { w: f32, h: f32, label: String },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Everything {
    flag: bool,
    count: usize,
    signed: i64,
    ratio_32: f32,
    ratio_64: f64,
    text: String,
    newtype: Newtype,
    pair: Pair,
    shapes: Vec<Shape>,
    maybe: Option<Box<Everything>>,
    maybe_none: Option<u8>,
    nested: Vec<Vec<u64>>,
    tuple: (u32, String),
    table: std::collections::BTreeMap<String, i32>,
}

fn sample(depth: usize) -> Everything {
    Everything {
        flag: true,
        count: 42,
        signed: -7,
        ratio_32: 0.1f32,
        ratio_64: 2.5e-300,
        text: "quote \" backslash \\ newline \n control \u{1} unicode é😀".into(),
        newtype: Newtype(u64::MAX),
        pair: Pair(-3, "pair".into()),
        shapes: vec![
            Shape::Empty,
            Shape::Point(1.5),
            Shape::Segment(0.25, f32::MIN_POSITIVE),
            Shape::Rect {
                w: 3.0,
                h: 4.0,
                label: "r".into(),
            },
        ],
        maybe: (depth > 0).then(|| Box::new(sample(depth - 1))),
        maybe_none: None,
        nested: vec![vec![1, 2], vec![], vec![u64::MAX]],
        tuple: (9, "tuple".into()),
        table: [("k1".to_string(), -1), ("k2".to_string(), 2)].into(),
    }
}

#[test]
fn derived_shapes_roundtrip() {
    let original = sample(2);
    let text = to_string(&original).expect("serialize");
    let back: Everything = from_str(&text).expect("deserialize");
    assert_eq!(back, original);
    let pretty = to_string_pretty(&original).expect("serialize pretty");
    let back: Everything = from_str(&pretty).expect("deserialize pretty");
    assert_eq!(back, original);
    // Value-bridge round-trip too.
    let tree = to_value(&original).expect("to_value");
    let back: Everything = from_value(&tree).expect("from_value");
    assert_eq!(back, original);
}

#[test]
fn enum_representation_is_externally_tagged() {
    assert_eq!(to_string(&Shape::Empty).unwrap(), "\"Empty\"");
    assert_eq!(to_string(&Shape::Point(1.5)).unwrap(), "{\"Point\":1.5}");
    assert_eq!(
        to_string(&Shape::Segment(1.0, 2.0)).unwrap(),
        "{\"Segment\":[1.0,2.0]}"
    );
    assert_eq!(
        to_string(&Shape::Rect {
            w: 1.0,
            h: 2.0,
            label: "x".into()
        })
        .unwrap(),
        "{\"Rect\":{\"w\":1.0,\"h\":2.0,\"label\":\"x\"}}"
    );
    // Unknown variants are rejected with the expected list.
    let err = from_str::<Shape>("\"Circle\"").unwrap_err();
    assert!(err.to_string().contains("unknown variant"), "{err}");
}

#[test]
fn newtype_and_unit_structs_are_transparent() {
    assert_eq!(to_string(&Newtype(7)).unwrap(), "7");
    assert_eq!(from_str::<Newtype>("7").unwrap(), Newtype(7));
    assert_eq!(to_string(&Pair(-1, "x".into())).unwrap(), "[-1,\"x\"]");
    assert_eq!(
        from_str::<Pair>("[-1,\"x\"]").unwrap(),
        Pair(-1, "x".into())
    );
    assert_eq!(to_string(&UnitMarker).unwrap(), "null");
    assert_eq!(from_str::<UnitMarker>("null").unwrap(), UnitMarker);
}

#[test]
fn duplicate_fields_are_rejected() {
    let err = from_str::<Newtype>("{}").unwrap_err();
    drop(err); // Newtype from object: type error is fine, just not a panic.
    let err = from_str::<Shape>("{\"Rect\":{\"w\":1.0,\"w\":2.0,\"h\":3.0,\"label\":\"x\"}}")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate field"), "{err}");
}
