//! The crate-wide error type, usable as both a serde serialization and
//! deserialization error.

use std::fmt;

/// Error raised by JSON parsing, rendering, or the serde bridge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Data-model error (wrong type, missing field, …) with a message.
    Message(String),
    /// Syntax error at a 1-based line and column of the input text.
    Syntax {
        /// 1-based line of the offending byte.
        line: usize,
        /// 1-based column (in bytes) of the offending byte.
        col: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Message(msg) => f.write_str(msg),
            Error::Syntax { line, col, msg } => {
                write!(f, "JSON syntax error at line {line}, column {col}: {msg}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::Message(msg.to_string())
    }
}
