//! Deserialization: driving a serde [`Visitor`] from a parsed [`Value`]
//! tree.
//!
//! [`from_str`] parses text into a [`Value`] and hands each node to the
//! target type's visitor — JSON is self-describing, so
//! [`serde::Deserializer::deserialize_any`] dispatch covers every shape,
//! with options (`null` vs present) and externally tagged enums handled
//! specially.

use serde::de::{
    DeserializeOwned, EnumAccess, Error as DeError, MapAccess, SeqAccess, VariantAccess, Visitor,
};
use serde::{Deserialize, Deserializer};

use crate::error::Error;
use crate::value::{Number, Value};

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns a syntax error from [`crate::parse`] or a data-model error
/// when the document does not match `T`.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = crate::parse(input)?;
    from_value(&value)
}

/// Deserializes a value from a parsed [`Value`] tree.
///
/// # Errors
///
/// Returns a data-model error when the tree does not match `T`.
pub fn from_value<'de, T: Deserialize<'de>>(value: &'de Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer { value })
}

/// [`Deserializer`] over a borrowed [`Value`] node.
struct ValueDeserializer<'de> {
    value: &'de Value,
}

/// Human-readable kind of a value, for error messages.
fn kind(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("boolean `{b}`"),
        Value::Number(n) => {
            let mut s = String::from("number `");
            crate::render::push_number(&mut s, *n);
            s.push('`');
            s
        }
        Value::String(s) => format!("string {s:?}"),
        Value::Array(_) => "an array".to_string(),
        Value::Object(_) => "an object".to_string(),
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(*b),
            Value::Number(Number::PosInt(v)) => visitor.visit_u64(*v),
            Value::Number(Number::NegInt(v)) => visitor.visit_i64(*v),
            Value::Number(Number::Float(v)) => visitor.visit_f64(*v),
            Value::String(s) => visitor.visit_str(s),
            Value::Array(items) => visitor.visit_seq(SeqDeserializer { iter: items.iter() }),
            Value::Object(entries) => visitor.visit_map(MapDeserializer {
                iter: entries.iter(),
                value: None,
            }),
        }
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Value::Null => visitor.visit_none(),
            _ => visitor.visit_some(self),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.value {
            Value::String(s) => visitor.visit_enum(EnumDeserializer {
                variant: s,
                value: None,
            }),
            Value::Object(entries) if entries.len() == 1 => visitor.visit_enum(EnumDeserializer {
                variant: &entries[0].0,
                value: Some(&entries[0].1),
            }),
            other => Err(Error::invalid_type(
                &kind(other),
                &format!("enum {name} (a variant string or single-key object)"),
            )),
        }
    }
}

struct SeqDeserializer<'de> {
    iter: std::slice::Iter<'de, Value>,
}

impl<'de> SeqAccess<'de> for SeqDeserializer<'de> {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        self.iter
            .next()
            .map(|value| T::deserialize(ValueDeserializer { value }))
            .transpose()
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapDeserializer<'de> {
    iter: std::slice::Iter<'de, (String, Value)>,
    value: Option<&'de Value>,
}

impl<'de> MapAccess<'de> for MapDeserializer<'de> {
    type Error = Error;

    fn next_key(&mut self) -> Result<Option<&'de str>, Error> {
        match self.iter.next() {
            Some((key, value)) => {
                self.value = Some(value);
                Ok(Some(key.as_str()))
            }
            None => Ok(None),
        }
    }

    fn next_value<T: Deserialize<'de>>(&mut self) -> Result<T, Error> {
        let value = self
            .value
            .take()
            .ok_or_else(|| Error::custom("next_value called before next_key"))?;
        T::deserialize(ValueDeserializer { value })
    }

    fn skip_value(&mut self) -> Result<(), Error> {
        self.value.take();
        Ok(())
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct EnumDeserializer<'de> {
    variant: &'de str,
    value: Option<&'de Value>,
}

impl<'de> EnumAccess<'de> for EnumDeserializer<'de> {
    type Error = Error;
    type Variant = VariantDeserializer<'de>;

    fn variant(self) -> Result<(&'de str, VariantDeserializer<'de>), Error> {
        Ok((self.variant, VariantDeserializer { value: self.value }))
    }
}

struct VariantDeserializer<'de> {
    value: Option<&'de Value>,
}

impl<'de> VariantAccess<'de> for VariantDeserializer<'de> {
    type Error = Error;

    fn unit_variant(self) -> Result<(), Error> {
        match self.value {
            None => Ok(()),
            Some(v) => Err(Error::invalid_type(&kind(v), "no content (unit variant)")),
        }
    }

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Error> {
        match self.value {
            Some(value) => T::deserialize(ValueDeserializer { value }),
            None => Err(Error::custom("expected newtype variant content")),
        }
    }

    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Some(Value::Array(items)) => visitor.visit_seq(SeqDeserializer { iter: items.iter() }),
            Some(other) => Err(Error::invalid_type(&kind(other), "tuple variant array")),
            None => Err(Error::custom("expected tuple variant content")),
        }
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Error> {
        match self.value {
            Some(Value::Object(entries)) => visitor.visit_map(MapDeserializer {
                iter: entries.iter(),
                value: None,
            }),
            Some(other) => Err(Error::invalid_type(&kind(other), "struct variant object")),
            None => Err(Error::custom("expected struct variant content")),
        }
    }
}
