//! Serialization: a streaming writer emitting JSON text directly from any
//! `T: Serialize`, and a value builder producing [`Value`] trees.

use serde::ser::{
    SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTupleVariant,
};
use serde::{Serialize, Serializer};

use crate::error::Error;
use crate::render::{push_escaped, push_f32, push_f64};
use crate::value::{Number, Value};

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Propagates errors raised by the value's [`Serialize`] implementation
/// (the writer itself is infallible).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut writer = Writer::new(None);
    value.serialize(&mut writer)?;
    Ok(writer.out)
}

/// Serializes a value to pretty (2-space indented) JSON text.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut writer = Writer::new(Some(2));
    value.serialize(&mut writer)?;
    Ok(writer.out)
}

/// Serializes a value into a [`Value`] tree.
///
/// `f32` values are stored as the `f64` their shortest text form reparses
/// to, so this tree equals `parse(to_string(value))` exactly — and
/// narrowing on deserialization still recovers the original `f32` bits.
///
/// # Errors
///
/// Propagates errors raised by the value's [`Serialize`] implementation.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

// ---------------------------------------------------------------------------
// Streaming text writer
// ---------------------------------------------------------------------------

/// The streaming JSON writer. Use through [`to_string`] /
/// [`to_string_pretty`].
struct Writer {
    out: String,
    indent: Option<usize>,
    level: usize,
}

impl Writer {
    fn new(indent: Option<usize>) -> Self {
        Writer {
            out: String::new(),
            indent,
            level: 0,
        }
    }

    fn newline_indent(&mut self) {
        if let Some(width) = self.indent {
            self.out.push('\n');
            for _ in 0..self.level * width {
                self.out.push(' ');
            }
        }
    }

    /// Writes the separator before an element and tracks first-ness.
    fn element_prefix(&mut self, first: &mut bool) {
        if !*first {
            self.out.push(',');
        }
        *first = false;
        self.newline_indent();
    }

    fn open(&mut self, c: char) {
        self.out.push(c);
        self.level += 1;
    }

    /// Closes a `[`/`{` opened with [`Writer::open`]; `empty` suppresses
    /// the inner newline so empty containers render as `[]` / `{}`.
    fn close(&mut self, c: char, empty: bool) {
        self.level -= 1;
        if !empty {
            self.newline_indent();
        }
        self.out.push(c);
    }

    fn key(&mut self, key: &str) {
        push_escaped(&mut self.out, key);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
    }
}

/// Compound state for sequences, structs, maps, and variants.
struct Compound<'a> {
    writer: &'a mut Writer,
    first: bool,
    /// Closing delimiters, innermost last (`}` alone, or `}` + `}` for
    /// externally tagged variants which open two objects).
    closers: &'static str,
}

impl Compound<'_> {
    fn finish(self) -> Result<(), Error> {
        let empty = self.first;
        let mut closers = self.closers.chars();
        if let Some(c) = closers.next() {
            self.writer.close(c, empty);
        }
        for c in closers {
            // Outer closers of a variant wrapper always hold the key.
            self.writer.close(c, false);
        }
        Ok(())
    }
}

impl<'a> Serializer for &'a mut Writer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), Error> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), Error> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), Error> {
        push_f64(&mut self.out, v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), Error> {
        push_f32(&mut self.out, v);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), Error> {
        push_escaped(&mut self.out, v);
        Ok(())
    }

    fn serialize_unit(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_none(self) -> Result<(), Error> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), Error> {
        push_escaped(&mut self.out, variant);
        Ok(())
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.open('{');
        self.newline_indent();
        self.key(variant);
        value.serialize(&mut *self)?;
        self.close('}', false);
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.open('[');
        Ok(Compound {
            writer: self,
            first: true,
            closers: "]",
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, Error> {
        self.open('{');
        Ok(Compound {
            writer: self,
            first: true,
            closers: "}",
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, Error> {
        self.open('{');
        Ok(Compound {
            writer: self,
            first: true,
            closers: "}",
        })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.open('{');
        self.newline_indent();
        self.key(variant);
        self.open('[');
        Ok(Compound {
            writer: self,
            first: true,
            closers: "]}",
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, Error> {
        self.open('{');
        self.newline_indent();
        self.key(variant);
        self.open('{');
        Ok(Compound {
            writer: self,
            first: true,
            closers: "}}",
        })
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.writer.element_prefix(&mut self.first);
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        self.writer.element_prefix(&mut self.first);
        // Map keys must render as strings; serialize the key and reject
        // anything that did not produce a quoted string.
        let before = self.writer.out.len();
        key.serialize(&mut *self.writer)?;
        if !self.writer.out[before..].starts_with('"') {
            return Err(serde::ser::Error::custom("JSON map keys must be strings"));
        }
        self.writer.out.push(':');
        if self.writer.indent.is_some() {
            self.writer.out.push(' ');
        }
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.writer.element_prefix(&mut self.first);
        self.writer.key(key);
        value.serialize(&mut *self.writer)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), Error> {
        self.finish()
    }
}

// ---------------------------------------------------------------------------
// Value builder
// ---------------------------------------------------------------------------

/// Serializer producing a [`Value`] tree. Use through [`to_value`].
struct ValueSerializer;

/// Compound state while building an array value.
struct ValueSeq {
    items: Vec<Value>,
    /// For tuple variants: wrap the finished array as `{variant: [...]}`.
    variant: Option<&'static str>,
}

/// Compound state while building an object value.
struct ValueObject {
    entries: Vec<(String, Value)>,
    /// For struct variants: wrap the finished object as `{variant: {...}}`.
    variant: Option<&'static str>,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ValueSeq;
    type SerializeMap = ValueObject;
    type SerializeStruct = ValueObject;
    type SerializeTupleVariant = ValueSeq;
    type SerializeStructVariant = ValueObject;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::PosInt(v)))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Ok(Number::from_f64(v).map_or(Value::Null, Value::Number))
    }

    fn serialize_f32(self, v: f32) -> Result<Value, Error> {
        if !v.is_finite() {
            return Ok(Value::Null);
        }
        // Store the f64 that the shortest-f32 *text* reparses to, so the
        // tree path (`to_value`, used by the artifact store) and the text
        // path (`to_string`) produce identical JSON for the same value.
        // Plain widening (`v as f64`) would render 17-digit decimals in
        // artifacts while the streaming writer emits "0.1".
        let reparsed: f64 = v.to_string().parse().unwrap_or_else(|_| f64::from(v));
        Ok(Value::Number(Number::Float(reparsed)))
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(self)
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::String(variant.to_owned()))
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        Ok(Value::Object(vec![(
            variant.to_owned(),
            value.serialize(ValueSerializer)?,
        )]))
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeq, Error> {
        Ok(ValueSeq {
            items: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<ValueObject, Error> {
        Ok(ValueObject {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ValueObject, Error> {
        Ok(ValueObject {
            entries: Vec::with_capacity(len),
            variant: None,
        })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ValueSeq, Error> {
        Ok(ValueSeq {
            items: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ValueObject, Error> {
        Ok(ValueObject {
            entries: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
}

fn wrap_variant(variant: Option<&'static str>, value: Value) -> Value {
    match variant {
        Some(name) => Value::Object(vec![(name.to_owned(), value)]),
        None => value,
    }
}

impl SerializeSeq for ValueSeq {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(wrap_variant(self.variant, Value::Array(self.items)))
    }
}

impl SerializeTupleVariant for ValueSeq {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<Value, Error> {
        SerializeSeq::end(self)
    }
}

impl SerializeMap for ValueObject {
    type Ok = Value;
    type Error = Error;

    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Error> {
        let key = match key.serialize(ValueSerializer)? {
            Value::String(s) => s,
            _ => return Err(serde::ser::Error::custom("JSON map keys must be strings")),
        };
        let value = value.serialize(ValueSerializer)?;
        self.entries.push((key, value));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(wrap_variant(self.variant, Value::Object(self.entries)))
    }
}

impl SerializeStruct for ValueObject {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        let value = value.serialize(ValueSerializer)?;
        self.entries.push((key.to_owned(), value));
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(wrap_variant(self.variant, Value::Object(self.entries)))
    }
}

impl SerializeStructVariant for ValueObject {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<Value, Error> {
        SerializeStruct::end(self)
    }
}

/// [`Serialize`] for [`Value`] itself, so artifact envelopes can embed
/// already-built trees.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::Number(Number::PosInt(v)) => serializer.serialize_u64(*v),
            Value::Number(Number::NegInt(v)) => serializer.serialize_i64(*v),
            Value::Number(Number::Float(v)) => serializer.serialize_f64(*v),
            Value::String(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    serde::ser::SerializeSeq::serialize_element(&mut seq, item)?;
                }
                serde::ser::SerializeSeq::end(seq)
            }
            Value::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    serde::ser::SerializeMap::serialize_entry(&mut map, k, v)?;
                }
                serde::ser::SerializeMap::end(map)
            }
        }
    }
}
