//! Recursive-descent JSON parser.
//!
//! Strictly RFC 8259-shaped: one top-level value, full escape handling
//! (`\uXXXX` including surrogate pairs), no trailing commas, no comments.
//! Nesting is bounded by [`crate::MAX_DEPTH`] so a hostile artifact file
//! cannot overflow the stack.

use crate::error::Error;
use crate::value::{Number, Value};
use crate::MAX_DEPTH;

/// Parses one JSON document.
///
/// # Errors
///
/// Returns [`Error::Syntax`] with 1-based line/column on malformed input,
/// including trailing garbage after the top-level value.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> Error {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = consumed.len() - consumed.rfind('\n').map_or(0, |i| i + 1) + 1;
        Error::Syntax {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.parse_hex4()?;
                let c = if (0xD800..=0xDBFF).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    self.pos += 1;
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err(self.err("unpaired low surrogate in \\u escape"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(c);
            }
            _ => return Err(self.err("unknown escape sequence")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // Decode byte-by-byte: slicing `input` here could split a
        // multibyte character (e.g. `\u12é`) and panic on the char
        // boundary instead of reporting a syntax error.
        let mut v: u32 = 0;
        for &b in &self.bytes[self.pos..end] {
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex in \\u escape"))?;
            v = (v << 4) | digit;
        }
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if negative {
                match text.parse::<i64>() {
                    // `-0` normalizes to PosInt(0): NegInt holds strictly
                    // negative values, and rendering would otherwise drop
                    // the sign and break parse(render(v)) == v.
                    Ok(0) => return Ok(Value::Number(Number::PosInt(0))),
                    Ok(v) => return Ok(Value::Number(Number::NegInt(v))),
                    Err(_) => {}
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            // Integer literal beyond 64-bit range: fall through to f64.
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err("number out of representable range"))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Number(Number::Float(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(Number::PosInt(42)));
        assert_eq!(parse("-7").unwrap(), Value::Number(Number::NegInt(-7)));
        assert_eq!(parse("2.5").unwrap(), Value::Number(Number::Float(2.5)));
        assert_eq!(parse("1e3").unwrap(), Value::Number(Number::Float(1000.0)));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn full_integer_ranges_survive() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Number(Number::PosInt(u64::MAX))
        );
        assert_eq!(
            parse("-9223372036854775808").unwrap(),
            Value::Number(Number::NegInt(i64::MIN))
        );
        // One past u64::MAX falls back to f64 rather than erroring.
        assert!(matches!(
            parse("18446744073709551616").unwrap(),
            Value::Number(Number::Float(_))
        ));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Value::String("a\"b\\c/d\n\t\r\u{8}\u{c}".into())
        );
        // BMP escape: U+00E9.
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Value::String("é".into()));
        // Surrogate pair escape: U+1F600.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        // Raw multibyte passes through.
        assert_eq!(
            parse("\"héllo😀\"").unwrap(),
            Value::String("héllo😀".into())
        );
    }

    #[test]
    fn malformed_escape_before_multibyte_is_an_error_not_a_panic() {
        // A short \u escape running into a multibyte char must not slice
        // the input mid-character.
        assert!(parse("\"\\u12é\"").is_err());
        assert!(parse("\"\\u12😀\"").is_err());
        assert!(parse("\"\\uéééé\"").is_err());
        // ...while a correct escape right before multibyte text is fine.
        assert_eq!(parse("\"\\u0041é\"").unwrap(), Value::String("Aé".into()));
    }

    #[test]
    fn negative_zero_literal_normalizes_to_pos_int() {
        // NegInt holds strictly negative values; `-0` must round-trip.
        let v = parse("-0").unwrap();
        assert_eq!(v, Value::Number(Number::PosInt(0)));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        // Float -0.0 keeps its sign (distinct from the integer case).
        assert_eq!(parse("-0.0").unwrap(), Value::Number(Number::Float(-0.0)));
    }

    #[test]
    fn surrogate_errors() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn structures() {
        let v = parse(r#"{"a": [1, 2.0, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn syntax_errors_carry_position() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        match err {
            Error::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("01").is_err());
        assert!(parse("+1").is_err());
        assert!(parse("\"\u{1}\"").is_err());
    }

    #[test]
    fn depth_limit_guards_the_stack() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&too_deep).is_err());
    }
}
