//! The JSON document tree.

use std::fmt;

/// A JSON number.
///
/// Integers without a decimal point or exponent keep their integer
/// identity (full `u64` / `i64` range, no `f64` precision loss); anything
/// with a `.` or exponent is a float. The distinction is part of value
/// equality, which is what makes `parse(render(v)) == v` exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float (non-finite values have no JSON form; see
    /// [`Number::from_f64`]).
    Float(f64),
}

impl Number {
    /// Wraps a float, returning `None` for NaN/±Inf (no JSON form).
    pub fn from_f64(v: f64) -> Option<Number> {
        v.is_finite().then_some(Number::Float(v))
    }

    /// The value as an `f64` (integers may round for magnitudes beyond
    /// 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

/// A JSON value.
///
/// Objects preserve insertion order (entries are a `Vec`, not a sorted
/// map), so rendering a parsed document reproduces its key order and
/// serialized structs keep their declaration order on disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (linear scan; artifact objects are
    /// small). Returns `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Renders the compact form (same as [`crate::render::compact`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::render::compact(self))
    }
}

impl std::str::FromStr for Value {
    type Err = crate::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        crate::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_identity_is_part_of_equality() {
        assert_ne!(
            Value::Number(Number::PosInt(5)),
            Value::Number(Number::Float(5.0))
        );
        assert_eq!(Number::from_f64(f64::NAN), None);
        assert_eq!(Number::from_f64(f64::INFINITY), None);
        assert_eq!(Number::from_f64(2.5), Some(Number::Float(2.5)));
    }

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Bool(true)),
            ("b".into(), Value::Number(Number::PosInt(3))),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("b").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("a"), None);
        assert_eq!(Number::NegInt(-2).as_i64(), Some(-2));
        assert_eq!(Number::PosInt(7).as_i64(), Some(7));
        assert_eq!(Number::Float(1.5).as_i64(), None);
    }
}
