//! Text rendering of [`Value`] trees: compact and pretty forms, string
//! escaping, and the round-trip-exact number formatting shared with the
//! streaming serializer.

use crate::value::{Number, Value};

/// Renders the compact form (no whitespace).
pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders the pretty form (2-space indentation, one entry per line).
pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => push_number(out, *n),
        Value::String(s) => push_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                push_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

/// Appends a number in its round-trip-exact text form.
pub(crate) fn push_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => push_f64(out, v),
    }
}

/// Appends an `f64`: Rust's shortest-round-trip `Display`, forced to
/// contain a decimal point (or exponent) so it re-parses as a float.
/// Non-finite values render as `null` (JSON has no NaN/Inf).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    if !s.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
        out.push_str(".0");
    }
}

/// Appends an `f32` from the `f32` formatter directly, so the text is the
/// shortest decimal identifying the `f32` (re-parsing through `f64` and
/// narrowing recovers the exact bits).
pub(crate) fn push_f32(out: &mut String, v: f32) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = v.to_string();
    out.push_str(&s);
    if !s.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
        out.push_str(".0");
    }
}

/// Appends a quoted, escaped JSON string.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(entries: Vec<(&str, Value)>) -> Value {
        Value::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    #[test]
    fn compact_form() {
        let v = obj(vec![
            (
                "a",
                Value::Array(vec![Value::Number(Number::PosInt(1)), Value::Null]),
            ),
            ("b", Value::String("x\ny".into())),
        ]);
        assert_eq!(compact(&v), r#"{"a":[1,null],"b":"x\ny"}"#);
    }

    #[test]
    fn pretty_form() {
        let v = obj(vec![("a", Value::Array(vec![Value::Bool(true)]))]);
        assert_eq!(pretty(&v), "{\n  \"a\": [\n    true\n  ]\n}");
        assert_eq!(pretty(&Value::Array(vec![])), "[]");
        assert_eq!(pretty(&obj(vec![])), "{}");
    }

    #[test]
    fn floats_keep_their_floatness() {
        let mut s = String::new();
        push_f64(&mut s, 5.0);
        assert_eq!(s, "5.0");
        s.clear();
        push_f64(&mut s, 0.1);
        assert_eq!(s, "0.1");
        s.clear();
        push_f64(&mut s, -0.0);
        assert_eq!(s, "-0.0");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f32(&mut s, 0.1f32);
        assert_eq!(s, "0.1");
    }

    #[test]
    fn control_characters_escape() {
        let mut s = String::new();
        push_escaped(&mut s, "\u{1}\u{1f}ok");
        assert_eq!(s, "\"\\u0001\\u001fok\"");
    }
}
