//! JSON backend for the Pipe-BD artifact plane.
//!
//! A small, dependency-free `serde_json` analogue built against the
//! vendored `serde` data model (`crates/compat/serde`):
//!
//! * [`Value`] / [`Number`] — an order-preserving JSON document tree;
//! * [`parse`] — a recursive-descent tokenizer/parser with full string
//!   escape handling (including `\uXXXX` surrogate pairs) and a nesting
//!   depth limit;
//! * [`to_string`] / [`to_string_pretty`] — streaming serializers writing
//!   compact or indented text straight from any `T: Serialize`;
//! * [`to_value`] / [`from_value`] / [`from_str`] — the serde bridge in
//!   and out of [`Value`] trees.
//!
//! # Number round-tripping
//!
//! Integers keep their signedness ([`Number::PosInt`] / [`Number::NegInt`]
//! cover the full `u64` / `i64` ranges — no silent routing through `f64`),
//! and floats render with Rust's shortest-round-trip `Display` plus a
//! forced `.0` suffix so they re-parse as floats. `f32` values take the
//! shortest-`f32` form on **both** paths — the streaming writer formats
//! from the `f32` formatter directly, and [`to_value`] stores the `f64`
//! that text reparses to, so `to_value(v) == parse(&to_string(v))` holds
//! and a persisted `f32` reparses bit-for-bit (shortest decimal for an
//! `f32` identifies it uniquely, and the parse's correctly rounded `f64`
//! narrows back without double-rounding error). Non-finite floats
//! serialize as `null` (JSON has no NaN/Inf; matching `serde_json`), and
//! deserializing `null` into a float is an error — the policy is lossy by
//! construction and tests pin it.

pub mod de;
mod error;
mod parse;
pub mod render;
pub mod ser;
mod value;

pub use de::{from_str, from_value};
pub use error::Error;
pub use parse::parse;
pub use ser::{to_string, to_string_pretty, to_value};
pub use value::{Number, Value};

/// Maximum nesting depth accepted by [`parse`] (arrays + objects).
pub const MAX_DEPTH: usize = 128;
