//! Model zoo for the Pipe-BD reproduction.
//!
//! Two parallel representations of every model pair:
//!
//! 1. **Analytic descriptors** ([`BlockModel`] / [`BlockDescriptor`]):
//!    per-block MAC counts, parameter counts, activation shapes, and kernel
//!    counts — the inputs to the multi-GPU simulator and the AHD scheduler.
//!    Builders: [`nas_block_model`] (MobileNetV2 teacher → ProxylessNAS
//!    supernet student) and [`compression_block_model`] (VGG-16 teacher →
//!    DS-Conv student).
//! 2. **Executable miniatures** ([`mini`]): real CPU-trainable
//!    [`pipebd_nn::BlockNet`]s with the same structure, used by the
//!    threaded functional executor to prove scheduling does not alter
//!    training results.
//!
//! # Example
//!
//! ```
//! use pipebd_models::Workload;
//!
//! let w = Workload::nas_cifar10();
//! assert_eq!(w.num_blocks(), 6);
//! // The DP baseline re-executes teacher prefixes; block 5 needs them all.
//! assert_eq!(
//!     w.model.teacher_prefix_macs(5),
//!     w.model.teacher_macs(),
//! );
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod dataset;
pub mod descriptor;
pub mod mini;
pub mod mobilenet_v2;
pub mod proxyless;
pub mod vgg16;
pub mod workload;

pub use arch::{ActShape, LayerSpec, StackCost, StackSpec};
pub use dataset::DatasetSpec;
pub use descriptor::{BlockDescriptor, BlockModel};
pub use mini::{mini_student_dsconv, mini_student_supernet, mini_teacher, MiniConfig};
pub use mobilenet_v2::InputVariant;
pub use proxyless::nas_block_model;
pub use vgg16::compression_block_model;
pub use workload::{TaskKind, Workload};
