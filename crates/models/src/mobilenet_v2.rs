//! MobileNetV2 teacher, split into the six blocks the NAS workload
//! distills (the paper's Fig. 5 schedules show blocks 0–5).
//!
//! The ImageNet variant follows the standard MobileNetV2-1.0 configuration
//! (Sandler et al., CVPR 2018); the CIFAR-10 variant uses the usual
//! small-input adaptation (stride-1 stem, reduced early downsampling).

use crate::arch::{inverted_residual, ActShape, LayerSpec, StackSpec};

/// Which input regime a model variant targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputVariant {
    /// 3×32×32 inputs (CIFAR-10).
    Cifar,
    /// 3×224×224 inputs (ImageNet).
    ImageNet,
}

impl InputVariant {
    /// Model input shape for this variant.
    pub fn input_shape(&self) -> ActShape {
        match self {
            InputVariant::Cifar => ActShape::new(3, 32, 32),
            InputVariant::ImageNet => ActShape::new(3, 224, 224),
        }
    }

    /// Classifier width for this variant.
    pub fn classes(&self) -> usize {
        match self {
            InputVariant::Cifar => 10,
            InputVariant::ImageNet => 1000,
        }
    }
}

/// One MobileNetV2 bottleneck stage: `n` inverted residuals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Expansion ratio `t`.
    pub expand: usize,
    /// Output channels `c`.
    pub out_c: usize,
    /// Repeat count `n`.
    pub repeats: usize,
    /// Stride of the first repeat `s`.
    pub stride: usize,
}

/// The canonical MobileNetV2 stage table, with strides adapted per variant.
pub fn stages(variant: InputVariant) -> Vec<Stage> {
    // (t, c, n, s) from the MobileNetV2 paper; CIFAR keeps resolution in
    // the early network (strides 1) as is standard for 32×32 inputs.
    let s = match variant {
        InputVariant::ImageNet => [1, 2, 2, 2, 1, 2, 1],
        InputVariant::Cifar => [1, 1, 2, 2, 1, 2, 1],
    };
    vec![
        Stage {
            expand: 1,
            out_c: 16,
            repeats: 1,
            stride: s[0],
        },
        Stage {
            expand: 6,
            out_c: 24,
            repeats: 2,
            stride: s[1],
        },
        Stage {
            expand: 6,
            out_c: 32,
            repeats: 3,
            stride: s[2],
        },
        Stage {
            expand: 6,
            out_c: 64,
            repeats: 4,
            stride: s[3],
        },
        Stage {
            expand: 6,
            out_c: 96,
            repeats: 3,
            stride: s[4],
        },
        Stage {
            expand: 6,
            out_c: 160,
            repeats: 3,
            stride: s[5],
        },
        Stage {
            expand: 6,
            out_c: 320,
            repeats: 1,
            stride: s[6],
        },
    ]
}

fn stage_layers(in_c: usize, stage: Stage, kernel: usize) -> (Vec<LayerSpec>, usize) {
    let mut layers = Vec::new();
    let mut cur = in_c;
    for r in 0..stage.repeats {
        let stride = if r == 0 { stage.stride } else { 1 };
        layers.extend(inverted_residual(
            cur,
            stage.out_c,
            stage.expand,
            kernel,
            stride,
        ));
        cur = stage.out_c;
    }
    (layers, cur)
}

/// Builds the six teacher block stacks of MobileNetV2 for a variant.
///
/// Block boundaries follow the DNA-style split the paper adopts:
///
/// | block | content                                  |
/// |-------|------------------------------------------|
/// | 0     | stem conv + stage 1 (16)                 |
/// | 1     | stage 2 (24)                             |
/// | 2     | stage 3 (32)                             |
/// | 3     | stage 4 (64)                             |
/// | 4     | stage 5 (96)                             |
/// | 5     | stage 6 (160) + stage 7 (320) + head     |
///
/// The head (1×1 conv to 1280, global pool, classifier) lives in block 5.
pub fn teacher_blocks(variant: InputVariant) -> Vec<StackSpec> {
    let st = stages(variant);
    let stem_stride = match variant {
        InputVariant::ImageNet => 2,
        InputVariant::Cifar => 1,
    };
    let mut blocks = Vec::with_capacity(6);

    // Block 0: stem + stage 1.
    let mut b0 = vec![
        LayerSpec::conv(32, 3, stem_stride),
        LayerSpec::BatchNorm,
        LayerSpec::Relu,
    ];
    let (l, mut cur) = stage_layers(32, st[0], 3);
    b0.extend(l);
    blocks.push(StackSpec::new(b0));

    // Blocks 1-4: stages 2-5.
    for stage in &st[1..5] {
        let (l, c) = stage_layers(cur, *stage, 3);
        cur = c;
        blocks.push(StackSpec::new(l));
    }

    // Block 5: stages 6-7 + head.
    let (mut b5, c) = stage_layers(cur, st[5], 3);
    let (l, c2) = stage_layers(c, st[6], 3);
    b5.extend(l);
    b5.push(LayerSpec::pointwise(1280));
    b5.push(LayerSpec::BatchNorm);
    b5.push(LayerSpec::Relu);
    b5.push(LayerSpec::GlobalAvgPool);
    b5.push(LayerSpec::Linear {
        out_features: variant.classes(),
    });
    debug_assert_eq!(c2, 320);
    blocks.push(StackSpec::new(b5));

    blocks
}

/// The per-block output channel counts at the distillation boundaries
/// (shared with the student supernet so boundary shapes match).
pub fn boundary_channels() -> [usize; 6] {
    [
        16, 24, 32, 64, 96, 0, /* classifier, see teacher_blocks */
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(variant: InputVariant) -> (u64, u64) {
        let mut shape = variant.input_shape();
        let mut macs = 0;
        let mut params = 0;
        for b in teacher_blocks(variant) {
            let c = b.cost(shape);
            macs += c.macs;
            params += c.params;
            shape = c.out_shape;
        }
        (macs, params)
    }

    #[test]
    fn imagenet_costs_near_published() {
        let (macs, params) = total(InputVariant::ImageNet);
        // Published MobileNetV2-1.0: ~300M MACs, ~3.5M params
        // (paper Table II: 300.77M "FLOPs", 3.50M params).
        assert!(
            (250_000_000..360_000_000).contains(&macs),
            "ImageNet MACs {macs}"
        );
        assert!((3_000_000..4_000_000).contains(&params), "params {params}");
    }

    #[test]
    fn cifar_costs_near_published() {
        let (macs, params) = total(InputVariant::Cifar);
        // Paper Table II: 87.98M "FLOPs", 2.24M params for the CIFAR teacher.
        assert!(
            (60_000_000..120_000_000).contains(&macs),
            "CIFAR MACs {macs}"
        );
        assert!((2_000_000..2_600_000).contains(&params), "params {params}");
    }

    #[test]
    fn six_blocks_with_expected_boundaries() {
        let blocks = teacher_blocks(InputVariant::ImageNet);
        assert_eq!(blocks.len(), 6);
        let mut shape = InputVariant::ImageNet.input_shape();
        let expected_c = [16, 24, 32, 64, 96, 1000];
        let expected_hw = [112, 56, 28, 14, 14, 1];
        for (i, b) in blocks.iter().enumerate() {
            let c = b.cost(shape);
            shape = c.out_shape;
            assert_eq!(shape.c, expected_c[i], "block {i} channels");
            assert_eq!(shape.h, expected_hw[i], "block {i} spatial");
        }
    }

    #[test]
    fn cifar_keeps_early_resolution() {
        let blocks = teacher_blocks(InputVariant::Cifar);
        let mut shape = InputVariant::Cifar.input_shape();
        let c0 = blocks[0].cost(shape);
        shape = c0.out_shape;
        assert_eq!(shape.h, 32, "CIFAR stem must not downsample");
        let c1 = blocks[1].cost(shape);
        assert_eq!(c1.out_shape.h, 32);
    }

    #[test]
    fn block0_has_largest_activation_footprint_on_imagenet() {
        // The paper's Fig. 5/Fig. 7 discussion: block 0 is the heavy block
        // on ImageNet because of the 224x224 spatial extent. MobileNetV2
        // balances MACs across stages by design, so the dominance shows up
        // in the activation footprint (memory traffic and buffer sizes),
        // which combined with the supernet student drives block-0 time.
        let blocks = teacher_blocks(InputVariant::ImageNet);
        let mut shape = InputVariant::ImageNet.input_shape();
        let mut boundaries = Vec::new();
        for b in &blocks {
            let c = b.cost(shape);
            shape = c.out_shape;
            boundaries.push(shape.elems());
        }
        let b0 = boundaries[0];
        assert!(
            boundaries[1..].iter().all(|&a| a < b0),
            "block 0 should emit the largest boundary activation: {boundaries:?}"
        );
    }
}
