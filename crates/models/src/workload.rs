//! Workload definitions: a model pair plus a dataset plus training-loop
//! structure.

use serde::{Deserialize, Serialize};

use crate::arch::ActShape;
use crate::dataset::DatasetSpec;
use crate::descriptor::{BlockDescriptor, BlockModel};
use crate::mobilenet_v2::InputVariant;
use crate::proxyless::nas_block_model;
use crate::vgg16::compression_block_model;

/// The two blockwise-distillation applications the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Blockwise NAS (DNA-style supernet search).
    Nas,
    /// Model compression (layer replacement distillation).
    Compression,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::Nas => write!(f, "NAS"),
            TaskKind::Compression => write!(f, "Compression"),
        }
    }
}

/// A complete workload: model pair, dataset, and step structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Which application this is.
    pub task: TaskKind,
    /// Loading profile of the dataset.
    pub dataset: DatasetSpec,
    /// The blockwise teacher/student pair.
    pub model: BlockModel,
    /// Forward/backward rounds per optimizer step. NAS alternates an
    /// architecture round and a weight round (the paper notes each round is
    /// scheduled like an ordinary step), so NAS = 2, compression = 1.
    pub rounds_per_step: u32,
}

impl Workload {
    /// NAS on CIFAR-10 (MobileNetV2 teacher → ProxylessNAS supernet).
    pub fn nas_cifar10() -> Self {
        Workload {
            task: TaskKind::Nas,
            dataset: DatasetSpec::cifar10(),
            model: nas_block_model(InputVariant::Cifar),
            rounds_per_step: 2,
        }
    }

    /// NAS on ImageNet.
    pub fn nas_imagenet() -> Self {
        Workload {
            task: TaskKind::Nas,
            dataset: DatasetSpec::imagenet(),
            model: nas_block_model(InputVariant::ImageNet),
            rounds_per_step: 2,
        }
    }

    /// Model compression on CIFAR-10 (VGG-16 → DS-Conv).
    pub fn compression_cifar10() -> Self {
        Workload {
            task: TaskKind::Compression,
            dataset: DatasetSpec::cifar10(),
            model: compression_block_model(InputVariant::Cifar),
            rounds_per_step: 1,
        }
    }

    /// Model compression on ImageNet.
    pub fn compression_imagenet() -> Self {
        Workload {
            task: TaskKind::Compression,
            dataset: DatasetSpec::imagenet(),
            model: compression_block_model(InputVariant::ImageNet),
            rounds_per_step: 1,
        }
    }

    /// A tiny synthetic workload for unit tests and examples: `blocks`
    /// uniform blocks on a small image, with an optional heavy first block
    /// (mimicking the ImageNet block-0 imbalance).
    pub fn synthetic(blocks: usize, heavy_first: bool) -> Self {
        let input = ActShape::new(3, 16, 16);
        let mut descs = Vec::with_capacity(blocks);
        let mut shape = input;
        for i in 0..blocks {
            let scale = if heavy_first && i == 0 { 8 } else { 1 };
            let out_shape = shape;
            descs.push(BlockDescriptor {
                name: format!("s{i}"),
                in_shape: shape,
                out_shape,
                teacher_macs: 1_000_000 * scale,
                teacher_params: 10_000,
                teacher_kernels: 4,
                teacher_act_elems: 2 * shape.elems(),
                teacher_peak_act_elems: shape.elems(),
                student_macs: 3_000_000 * scale,
                student_params: 20_000,
                student_kernels: 8,
                student_act_elems: 4 * shape.elems(),
                student_peak_act_elems: 4 * shape.elems(),
            });
            shape = out_shape;
        }
        Workload {
            task: TaskKind::Compression,
            dataset: DatasetSpec::mini(4096, 16, 4),
            model: BlockModel {
                name: "synthetic".into(),
                input_shape: input,
                blocks: descs,
            },
            rounds_per_step: 1,
        }
    }

    /// Number of blocks `B`.
    pub fn num_blocks(&self) -> usize {
        self.model.num_blocks()
    }

    /// A short identifier like `"NAS/cifar10"` used in reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.task, self.dataset.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_workloads_construct_and_validate() {
        for w in [
            Workload::nas_cifar10(),
            Workload::nas_imagenet(),
            Workload::compression_cifar10(),
            Workload::compression_imagenet(),
        ] {
            w.model.validate().expect("model must validate");
            assert!(w.num_blocks() >= 6);
        }
    }

    #[test]
    fn nas_runs_two_rounds_per_step() {
        assert_eq!(Workload::nas_cifar10().rounds_per_step, 2);
        assert_eq!(Workload::compression_cifar10().rounds_per_step, 1);
    }

    #[test]
    fn synthetic_heavy_first_block() {
        let w = Workload::synthetic(4, true);
        assert!(w.model.blocks[0].teacher_macs > w.model.blocks[1].teacher_macs);
        w.model.validate().unwrap();
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Workload::nas_cifar10().label(), "NAS/cifar10");
        assert_eq!(
            Workload::compression_imagenet().label(),
            "Compression/imagenet"
        );
    }
}
