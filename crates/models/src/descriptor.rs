//! Block descriptors: everything the simulator and scheduler need to know
//! about one teacher/student block pair.

use serde::{Deserialize, Serialize};

use crate::arch::{ActShape, StackSpec};

/// Analytic description of one teacher/student block pair.
///
/// Blockwise distillation trains student block `i` against teacher block
/// `i`; both consume the teacher activation at boundary `i − 1` and the
/// loss compares their outputs, so a single descriptor carries both sides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDescriptor {
    /// Human-readable block name (e.g. `"b2"`, `"conv3_2"`).
    pub name: String,
    /// Input activation shape per sample.
    pub in_shape: ActShape,
    /// Output activation shape per sample (the distillation boundary).
    pub out_shape: ActShape,
    /// Teacher forward MACs per sample.
    pub teacher_macs: u64,
    /// Teacher parameter count.
    pub teacher_params: u64,
    /// Teacher kernel launches per forward.
    pub teacher_kernels: u32,
    /// Teacher activation elements per sample (traffic of one forward).
    pub teacher_act_elems: u64,
    /// Peak resident teacher activation elements per sample.
    pub teacher_peak_act_elems: u64,
    /// Student forward MACs per sample (a NAS supernet sums all candidate
    /// paths).
    pub student_macs: u64,
    /// Student parameter count.
    pub student_params: u64,
    /// Student kernel launches per forward.
    pub student_kernels: u32,
    /// Student activation elements per sample retained for backward
    /// (traffic; a supernet executing candidates sequentially retains only
    /// the peak candidate, see `student_peak_act_elems`).
    pub student_act_elems: u64,
    /// Peak resident student activation elements per sample.
    pub student_peak_act_elems: u64,
}

impl BlockDescriptor {
    /// Builds a descriptor by folding teacher and student stacks over the
    /// block input shape.
    ///
    /// # Panics
    ///
    /// Panics if the teacher and student stacks disagree on the output
    /// shape — the distillation loss requires identical boundary shapes.
    pub fn from_stacks(
        name: impl Into<String>,
        input: ActShape,
        teacher: &StackSpec,
        student: &StackSpec,
    ) -> Self {
        let t = teacher.cost(input);
        let s = student.cost(input);
        assert_eq!(
            t.out_shape, s.out_shape,
            "teacher/student boundary shapes must match for distillation"
        );
        BlockDescriptor {
            name: name.into(),
            in_shape: input,
            out_shape: t.out_shape,
            teacher_macs: t.macs,
            teacher_params: t.params,
            teacher_kernels: t.kernels,
            teacher_act_elems: t.act_elems,
            teacher_peak_act_elems: t.peak_act_elems,
            student_macs: s.macs,
            student_params: s.params,
            student_kernels: s.kernels,
            student_act_elems: s.act_elems,
            // A plain student block retains its whole activation stack for
            // backward.
            student_peak_act_elems: s.act_elems,
        }
    }

    /// Bytes of the activation relayed across this block's output boundary,
    /// per sample.
    pub fn boundary_bytes(&self) -> u64 {
        self.out_shape.bytes()
    }

    /// Teacher weight bytes (fp32).
    pub fn teacher_weight_bytes(&self) -> u64 {
        4 * self.teacher_params
    }

    /// Student state bytes: weights + gradients + SGD momentum (fp32).
    pub fn student_state_bytes(&self) -> u64 {
        3 * 4 * self.student_params
    }
}

/// The blockwise teacher/student pair for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockModel {
    /// Model-pair name, e.g. `"mobilenetv2->proxyless"`.
    pub name: String,
    /// Network input shape per sample.
    pub input_shape: ActShape,
    /// Per-block descriptors, in network order.
    pub blocks: Vec<BlockDescriptor>,
}

impl BlockModel {
    /// Number of blocks `B`.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total teacher MACs per sample for a full forward pass.
    pub fn teacher_macs(&self) -> u64 {
        self.blocks.iter().map(|b| b.teacher_macs).sum()
    }

    /// Total student MACs per sample for a full forward pass.
    pub fn student_macs(&self) -> u64 {
        self.blocks.iter().map(|b| b.student_macs).sum()
    }

    /// Total teacher parameters.
    pub fn teacher_params(&self) -> u64 {
        self.blocks.iter().map(|b| b.teacher_params).sum()
    }

    /// Total student parameters.
    pub fn student_params(&self) -> u64 {
        self.blocks.iter().map(|b| b.student_params).sum()
    }

    /// Teacher MACs of the prefix `0..=i` — the redundant work the
    /// data-parallel baseline repeats for every trained block.
    pub fn teacher_prefix_macs(&self, i: usize) -> u64 {
        self.blocks[..=i].iter().map(|b| b.teacher_macs).sum()
    }

    /// Validates boundary continuity: each block's input shape equals the
    /// previous block's output shape, and block 0 consumes the model input.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err("model has no blocks".to_string());
        }
        if self.blocks[0].in_shape != self.input_shape {
            return Err(format!(
                "block 0 input {} differs from model input {}",
                self.blocks[0].in_shape, self.input_shape
            ));
        }
        for i in 1..self.blocks.len() {
            if self.blocks[i].in_shape != self.blocks[i - 1].out_shape {
                return Err(format!(
                    "boundary {i}: block input {} differs from previous output {}",
                    self.blocks[i].in_shape,
                    self.blocks[i - 1].out_shape
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::LayerSpec;

    fn model() -> BlockModel {
        let input = ActShape::new(3, 8, 8);
        let t0 = StackSpec::new(vec![LayerSpec::conv(8, 3, 1)]);
        let s0 = StackSpec::new(vec![LayerSpec::depthwise(3, 3, 1), LayerSpec::pointwise(8)]);
        let b0 = BlockDescriptor::from_stacks("b0", input, &t0, &s0);
        let t1 = StackSpec::new(vec![LayerSpec::conv(16, 3, 2)]);
        let s1 = StackSpec::new(vec![
            LayerSpec::depthwise(8, 3, 2),
            LayerSpec::pointwise(16),
        ]);
        let b1 = BlockDescriptor::from_stacks("b1", b0.out_shape, &t1, &s1);
        BlockModel {
            name: "test".into(),
            input_shape: input,
            blocks: vec![b0, b1],
        }
    }

    #[test]
    fn prefix_macs_monotone() {
        let m = model();
        assert!(m.teacher_prefix_macs(0) < m.teacher_prefix_macs(1));
        assert_eq!(m.teacher_prefix_macs(1), m.teacher_macs());
    }

    #[test]
    fn validate_accepts_consistent_model() {
        assert!(model().validate().is_ok());
    }

    #[test]
    fn validate_rejects_broken_boundary() {
        let mut m = model();
        m.blocks[1].in_shape = ActShape::new(99, 1, 1);
        assert!(m.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "boundary shapes must match")]
    fn mismatched_student_boundary_panics() {
        let input = ActShape::new(3, 8, 8);
        let t = StackSpec::new(vec![LayerSpec::conv(8, 3, 1)]);
        let s = StackSpec::new(vec![LayerSpec::conv(4, 3, 1)]);
        let _ = BlockDescriptor::from_stacks("bad", input, &t, &s);
    }

    #[test]
    fn byte_helpers() {
        let m = model();
        let b = &m.blocks[0];
        assert_eq!(b.boundary_bytes(), b.out_shape.bytes());
        assert_eq!(b.teacher_weight_bytes(), 4 * b.teacher_params);
        assert_eq!(b.student_state_bytes(), 12 * b.student_params);
    }
}
