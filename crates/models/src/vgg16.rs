//! VGG-16 teacher and DS-Conv student for the model-compression workload.
//!
//! Following the paper (and Blakeney et al., IEEE TPDS 2021), each of the
//! 13 convolutional layers of VGG-16 is one distillation block; the student
//! replaces every dense 3×3 convolution with a depthwise-separable
//! convolution (depthwise 3×3 + pointwise 1×1). The classifier rides along
//! in the last block unchanged (it is not replaced), which is why the
//! ImageNet student's parameter count stays close to the teacher's — the
//! fully-connected head dominates, exactly as in the paper's Table II.

use crate::arch::{LayerSpec, StackSpec};
use crate::descriptor::{BlockDescriptor, BlockModel};
use crate::mobilenet_v2::InputVariant;

/// VGG-16 convolutional plan: (output channels, followed-by-pool).
pub const VGG16_CONVS: [(usize, bool); 13] = [
    (64, false),
    (64, true),
    (128, false),
    (128, true),
    (256, false),
    (256, false),
    (256, true),
    (512, false),
    (512, false),
    (512, true),
    (512, false),
    (512, false),
    (512, true),
];

fn classifier(variant: InputVariant) -> Vec<LayerSpec> {
    match variant {
        // Standard ImageNet head: 4096-4096-1000.
        InputVariant::ImageNet => vec![
            LayerSpec::Linear { out_features: 4096 },
            LayerSpec::Relu,
            LayerSpec::Linear { out_features: 4096 },
            LayerSpec::Relu,
            LayerSpec::Linear { out_features: 1000 },
        ],
        // CIFAR head: a single small linear layer, as in common CIFAR
        // VGG-16 ports (total params then match the paper's 14.72M).
        InputVariant::Cifar => vec![LayerSpec::Linear { out_features: 10 }],
    }
}

/// Builds the 13 teacher block stacks (+classifier in the last block).
pub fn teacher_blocks(variant: InputVariant) -> Vec<StackSpec> {
    let mut blocks = Vec::with_capacity(13);
    for (i, &(out_c, pool)) in VGG16_CONVS.iter().enumerate() {
        let mut layers = vec![LayerSpec::conv(out_c, 3, 1), LayerSpec::Relu];
        if pool {
            layers.push(LayerSpec::MaxPool {
                kernel: 2,
                stride: 2,
            });
        }
        if i == VGG16_CONVS.len() - 1 {
            layers.extend(classifier(variant));
        }
        blocks.push(StackSpec::new(layers));
    }
    blocks
}

/// Builds the 13 DS-Conv student block stacks mirroring the teacher.
pub fn student_blocks(variant: InputVariant) -> Vec<StackSpec> {
    let mut in_c = variant.input_shape().c;
    let mut blocks = Vec::with_capacity(13);
    for (i, &(out_c, pool)) in VGG16_CONVS.iter().enumerate() {
        let mut layers = vec![
            LayerSpec::depthwise(in_c, 3, 1),
            LayerSpec::Relu,
            LayerSpec::pointwise(out_c),
            LayerSpec::Relu,
        ];
        if pool {
            layers.push(LayerSpec::MaxPool {
                kernel: 2,
                stride: 2,
            });
        }
        if i == VGG16_CONVS.len() - 1 {
            layers.extend(classifier(variant));
        }
        blocks.push(StackSpec::new(layers));
        in_c = out_c;
    }
    blocks
}

/// Builds the compression teacher/student [`BlockModel`] (VGG-16 →
/// DS-Conv).
pub fn compression_block_model(variant: InputVariant) -> BlockModel {
    let teacher = teacher_blocks(variant);
    let student = student_blocks(variant);
    let mut shape = variant.input_shape();
    let mut blocks = Vec::with_capacity(teacher.len());
    for (i, (t, s)) in teacher.iter().zip(student.iter()).enumerate() {
        let b = BlockDescriptor::from_stacks(format!("conv{i}"), shape, t, s);
        shape = b.out_shape;
        blocks.push(b);
    }
    BlockModel {
        name: format!("vgg16->dsconv/{:?}", variant),
        input_shape: variant.input_shape(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(blocks: &[StackSpec], variant: InputVariant) -> (u64, u64) {
        let mut shape = variant.input_shape();
        let mut macs = 0;
        let mut params = 0;
        for b in blocks {
            let c = b.cost(shape);
            macs += c.macs;
            params += c.params;
            shape = c.out_shape;
        }
        (macs, params)
    }

    #[test]
    fn imagenet_teacher_near_published() {
        let (macs, params) = totals(
            &teacher_blocks(InputVariant::ImageNet),
            InputVariant::ImageNet,
        );
        // Published VGG-16: ~15.5G MACs (the paper reports 30.98B FLOPs =
        // 2 MACs), ~138.36M params.
        assert!(
            (14_000_000_000..17_000_000_000).contains(&macs),
            "MACs {macs}"
        );
        assert!(
            (135_000_000..142_000_000).contains(&params),
            "params {params}"
        );
    }

    #[test]
    fn cifar_teacher_near_published() {
        let (macs, params) = totals(&teacher_blocks(InputVariant::Cifar), InputVariant::Cifar);
        // Paper Table II: 0.63B FLOPs (=2 MACs -> ~315M MACs), 14.72M params.
        assert!((280_000_000..360_000_000).contains(&macs), "MACs {macs}");
        assert!(
            (14_000_000..15_500_000).contains(&params),
            "params {params}"
        );
    }

    #[test]
    fn student_lighter_in_conv_compute() {
        let (t_macs, _) = totals(&teacher_blocks(InputVariant::Cifar), InputVariant::Cifar);
        let (s_macs, s_params) = totals(&student_blocks(InputVariant::Cifar), InputVariant::Cifar);
        assert!(s_macs < t_macs, "DS-Conv student must be cheaper");
        // A full DS-Conv replacement shrinks the 14.7M conv params to
        // ~1.7M. (The paper reports 7.25M for its student, implying a
        // partial replacement; see EXPERIMENTS.md. The scheduling
        // experiments only need "student cheaper than teacher".)
        assert!(
            (1_000_000..10_000_000).contains(&s_params),
            "params {s_params}"
        );
    }

    #[test]
    fn imagenet_student_params_dominated_by_head() {
        let (_, t_params) = totals(
            &teacher_blocks(InputVariant::ImageNet),
            InputVariant::ImageNet,
        );
        let (_, s_params) = totals(
            &student_blocks(InputVariant::ImageNet),
            InputVariant::ImageNet,
        );
        // Paper: 138.36M vs 138.09M — nearly equal because the FC head
        // dominates and is not replaced.
        let ratio = s_params as f64 / t_params as f64;
        assert!(ratio > 0.85, "ratio {ratio}");
    }

    #[test]
    fn compression_model_validates_thirteen_blocks() {
        for variant in [InputVariant::Cifar, InputVariant::ImageNet] {
            let m = compression_block_model(variant);
            assert_eq!(m.num_blocks(), 13);
            m.validate().expect("boundary continuity");
        }
    }

    #[test]
    fn boundaries_shrink_spatially() {
        let m = compression_block_model(InputVariant::ImageNet);
        assert_eq!(m.blocks[0].out_shape.h, 224);
        assert_eq!(m.blocks[1].out_shape.h, 112);
        assert_eq!(m.blocks[12].out_shape.c, 1000);
    }
}
