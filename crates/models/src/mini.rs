//! Executable miniature models for the functional engine.
//!
//! These are real (CPU-executable) [`BlockNet`]s with the same *structure*
//! as the paper's model pairs — a convolutional teacher, a DS-Conv
//! compression student, and a MixedOp NAS supernet student — scaled down to
//! a few channels so the threaded executor can train them in test time.
//! They exist to demonstrate the paper's Section VII-D claim: Pipe-BD
//! scheduling changes *when* updates happen, never *what* they compute.

use pipebd_nn::{BatchNorm2d, Block, BlockNet, Conv2d, Layer, MixedOp, Relu, Sequential};
use pipebd_tensor::Rng64;

/// Configuration for the miniature model family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniConfig {
    /// Number of blocks in teacher and student.
    pub blocks: usize,
    /// Channel width of every block (input is widened from 3 channels by
    /// block 0).
    pub channels: usize,
    /// Whether blocks include batch normalization (the parity tests turn
    /// this off to make runs bitwise comparable across batch shardings).
    pub batch_norm: bool,
}

impl Default for MiniConfig {
    fn default() -> Self {
        MiniConfig {
            blocks: 4,
            channels: 8,
            batch_norm: false,
        }
    }
}

fn teacher_block(cfg: MiniConfig, index: usize, rng: &mut Rng64) -> Block {
    let in_c = if index == 0 { 3 } else { cfg.channels };
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_c, cfg.channels, 3, 1, 1, rng)),
        Box::new(Relu::new()),
    ];
    if cfg.batch_norm {
        layers.insert(1, Box::new(BatchNorm2d::new(cfg.channels)));
    }
    Block::new(format!("t{index}"), Sequential::new(layers))
}

/// Builds a miniature pretrained-style teacher: `blocks` conv blocks of
/// uniform width.
pub fn mini_teacher(cfg: MiniConfig, rng: &mut Rng64) -> BlockNet {
    (0..cfg.blocks)
        .map(|i| teacher_block(cfg, i, rng))
        .collect()
}

/// Builds a miniature DS-Conv student with the same block boundaries as
/// [`mini_teacher`] (the compression workload shape).
pub fn mini_student_dsconv(cfg: MiniConfig, rng: &mut Rng64) -> BlockNet {
    (0..cfg.blocks)
        .map(|i| {
            let in_c = if i == 0 { 3 } else { cfg.channels };
            let layers: Vec<Box<dyn Layer>> = vec![
                Box::new(Conv2d::depthwise(in_c, 3, 1, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::pointwise(in_c, cfg.channels, rng)),
                Box::new(Relu::new()),
            ];
            Block::new(format!("s{i}"), Sequential::new(layers))
        })
        .collect()
}

/// Builds a miniature NAS supernet student: each block is a [`MixedOp`]
/// over a 3×3 conv, a 5×5 conv, and a depthwise-separable conv, plus a
/// ReLU (the NAS workload shape, with architecture parameters).
pub fn mini_student_supernet(cfg: MiniConfig, rng: &mut Rng64) -> BlockNet {
    (0..cfg.blocks)
        .map(|i| {
            let in_c = if i == 0 { 3 } else { cfg.channels };
            let candidates: Vec<Box<dyn Layer>> = vec![
                Box::new(Conv2d::new(in_c, cfg.channels, 3, 1, 1, rng)),
                Box::new(Conv2d::new(in_c, cfg.channels, 5, 1, 2, rng)),
                Box::new(Sequential::new(vec![
                    Box::new(Conv2d::depthwise(in_c, 3, 1, rng)),
                    Box::new(Conv2d::pointwise(in_c, cfg.channels, rng)),
                ])),
            ];
            let layers: Vec<Box<dyn Layer>> =
                vec![Box::new(MixedOp::new(candidates)), Box::new(Relu::new())];
            Block::new(format!("n{i}"), Sequential::new(layers))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_nn::{mse_loss, Mode};
    use pipebd_tensor::Tensor;

    #[test]
    fn teacher_and_students_share_boundaries() {
        let cfg = MiniConfig::default();
        let mut rng = Rng64::seed_from_u64(0);
        let mut teacher = mini_teacher(cfg, &mut rng);
        let mut ds = mini_student_dsconv(cfg, &mut rng);
        let mut nas = mini_student_supernet(cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let mut t = x.clone();
        for i in 0..cfg.blocks {
            t = teacher.block_mut(i).forward(&t, Mode::Eval).unwrap();
            let prev = if i == 0 {
                x.clone()
            } else {
                // For shape checking, feed the teacher boundary activation.
                t.clone()
            };
            let d = ds.block_mut(i).forward(&prev, Mode::Eval);
            let n = nas.block_mut(i).forward(&prev, Mode::Eval);
            // Every block (3-channel input for block 0, channel-wide
            // input otherwise) must match the teacher boundary shape.
            assert_eq!(d.unwrap().dims(), t.dims());
            assert_eq!(n.unwrap().dims(), t.dims());
        }
    }

    #[test]
    fn one_distillation_step_reduces_block_loss() {
        let cfg = MiniConfig {
            blocks: 2,
            channels: 6,
            batch_norm: false,
        };
        let mut rng = Rng64::seed_from_u64(1);
        let mut teacher = mini_teacher(cfg, &mut rng);
        let mut student = mini_student_dsconv(cfg, &mut rng);
        let x = Tensor::randn(&[4, 3, 8, 8], &mut rng);
        let t_out = teacher.block_mut(0).forward(&x, Mode::Eval).unwrap();

        let mut sgd = pipebd_nn::Sgd::new(0.05, 0.9, 0.0);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..120 {
            let s_out = student.block_mut(0).forward(&x, Mode::Train).unwrap();
            let loss = mse_loss(&s_out, &t_out).unwrap();
            student.block_mut(0).backward(&loss.grad).unwrap();
            sgd.step(student.block_mut(0)).unwrap();
            first.get_or_insert(loss.loss);
            last = loss.loss;
        }
        assert!(
            last < 0.5 * first.unwrap(),
            "distillation loss should halve: {} -> {last}",
            first.unwrap()
        );
    }

    #[test]
    fn supernet_block_has_arch_params() {
        let mut rng = Rng64::seed_from_u64(2);
        let mut nas = mini_student_supernet(MiniConfig::default(), &mut rng);
        let mut has_arch = false;
        nas.block_mut(0).visit_params(&mut |p| {
            has_arch |= p.kind == pipebd_nn::ParamKind::Arch;
        });
        assert!(has_arch);
    }

    #[test]
    fn batch_norm_flag_adds_layers() {
        let mut rng = Rng64::seed_from_u64(3);
        let with = mini_teacher(
            MiniConfig {
                batch_norm: true,
                ..MiniConfig::default()
            },
            &mut rng,
        );
        let without = mini_teacher(MiniConfig::default(), &mut rng);
        assert!(with.block(0).inner().len() > without.block(0).inner().len());
    }
}
