//! ProxylessNAS student supernet for the NAS workload.
//!
//! The search space follows the paper's Table I: MBConv candidates with
//! kernel sizes {3, 5, 7} and expansion ratios {3, 6} — six candidate
//! operations per searchable layer. During the blockwise search (DNA-style)
//! the supernet evaluates every candidate path, so a supernet layer costs
//! the *sum* of its candidates; the descriptors reflect that.

use crate::arch::{inverted_residual, ActShape, LayerSpec, StackSpec};
use crate::descriptor::{BlockDescriptor, BlockModel};
use crate::mobilenet_v2::{stages, teacher_blocks, InputVariant, Stage};

/// Candidate kernel sizes in the search space.
pub const KERNEL_CHOICES: [usize; 3] = [3, 5, 7];
/// Candidate expansion ratios in the search space.
pub const EXPAND_CHOICES: [usize; 2] = [3, 6];

/// One searchable supernet layer: the candidate MBConv stacks, all mapping
/// the same input shape to the same output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedLayerSpec {
    /// Candidate layer stacks (kernel × expansion combinations).
    pub candidates: Vec<StackSpec>,
}

impl MixedLayerSpec {
    /// All kernel/expansion MBConv candidates from `in_c` to `out_c`.
    pub fn mbconv_choices(in_c: usize, out_c: usize, stride: usize) -> Self {
        let mut candidates = Vec::new();
        for &k in &KERNEL_CHOICES {
            for &e in &EXPAND_CHOICES {
                candidates.push(StackSpec::new(inverted_residual(in_c, out_c, e, k, stride)));
            }
        }
        MixedLayerSpec { candidates }
    }

    /// Cost aggregates under ProxylessNAS *path sampling*: one candidate
    /// executes per step, so per-step MACs, activation traffic, and kernel
    /// counts are the candidate *mean* (the expected sampled path);
    /// parameters are the *sum* (all candidates stay resident); resident
    /// activations are the *max* candidate. Output shape shared.
    ///
    /// # Panics
    ///
    /// Panics if candidates disagree on the output shape.
    pub fn cost(&self, input: ActShape) -> SupernetCost {
        let mut total = SupernetCost {
            macs: 0,
            params: 0,
            act_elems: 0,
            peak_act_elems: 0,
            kernels: 0,
            out_shape: input,
        };
        let mut out: Option<ActShape> = None;
        for c in &self.candidates {
            let cost = c.cost(input);
            total.macs += cost.macs;
            total.params += cost.params;
            total.act_elems += cost.act_elems;
            total.peak_act_elems = total.peak_act_elems.max(cost.act_elems);
            total.kernels += cost.kernels;
            match out {
                None => out = Some(cost.out_shape),
                Some(o) => assert_eq!(o, cost.out_shape, "candidate output shapes must agree"),
            }
        }
        let k = self.candidates.len() as u64;
        total.macs /= k;
        total.act_elems /= k;
        total.kernels = (total.kernels / k as u32).max(1);
        total.out_shape = out.expect("candidates");
        total
    }
}

/// Aggregates of a supernet layer or block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupernetCost {
    /// MACs per sample (all candidate paths).
    pub macs: u64,
    /// Parameters (all candidates).
    pub params: u64,
    /// Activation traffic per sample (all candidates).
    pub act_elems: u64,
    /// Peak resident activations per sample (largest candidate).
    pub peak_act_elems: u64,
    /// Kernel launches (all candidates).
    pub kernels: u32,
    /// Output shape.
    pub out_shape: ActShape,
}

/// A supernet block: a sequence of searchable layers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SupernetBlockSpec {
    /// The searchable layers in execution order.
    pub layers: Vec<MixedLayerSpec>,
    /// Non-searchable trailing layers (head of the last block).
    pub tail: StackSpec,
}

impl SupernetBlockSpec {
    /// Folds the block over `input`.
    pub fn cost(&self, input: ActShape) -> SupernetCost {
        let mut shape = input;
        let mut total = SupernetCost {
            macs: 0,
            params: 0,
            act_elems: 0,
            peak_act_elems: 0,
            kernels: 0,
            out_shape: input,
        };
        for layer in &self.layers {
            let c = layer.cost(shape);
            total.macs += c.macs;
            total.params += c.params;
            total.act_elems += c.act_elems;
            // Each layer's surviving path is retained for backward.
            total.peak_act_elems += c.peak_act_elems;
            total.kernels += c.kernels;
            shape = c.out_shape;
        }
        let t = self.tail.cost(shape);
        total.macs += t.macs;
        total.params += t.params;
        total.act_elems += t.act_elems;
        total.peak_act_elems += t.act_elems;
        total.kernels += t.kernels;
        total.out_shape = t.out_shape;
        total
    }
}

/// Builds the supernet student blocks mirroring the MobileNetV2 teacher's
/// six-block structure (same strides and boundary channels, searchable
/// kernel/expansion inside).
pub fn supernet_blocks(variant: InputVariant) -> Vec<SupernetBlockSpec> {
    let st = stages(variant);
    let stem_stride = match variant {
        InputVariant::ImageNet => 2,
        InputVariant::Cifar => 1,
    };
    let mut blocks = Vec::with_capacity(6);

    // Block 0: fixed stem + stage-1 searchable layer. The stem is shared
    // with the teacher macro-architecture (standard in ProxylessNAS).
    let b0 = SupernetBlockSpec {
        tail: StackSpec::new(vec![
            LayerSpec::conv(32, 3, stem_stride),
            LayerSpec::BatchNorm,
            LayerSpec::Relu,
        ]),
        ..SupernetBlockSpec::default()
    };
    // Move the stem into `layers` position by treating it as a 1-candidate
    // mixed layer so the searchable stage-1 layer can follow it.
    let stem = MixedLayerSpec {
        candidates: vec![b0.tail.clone()],
    };
    let mut layers0 = vec![stem];
    layers0.extend(stage_mixed_layers(32, st[0]));
    blocks.push(SupernetBlockSpec {
        layers: layers0,
        tail: StackSpec::default(),
    });

    // Blocks 1-4: stages 2-5.
    let mut cur = st[0].out_c;
    for stage in &st[1..5] {
        blocks.push(SupernetBlockSpec {
            layers: stage_mixed_layers(cur, *stage),
            tail: StackSpec::default(),
        });
        cur = stage.out_c;
    }

    // Block 5: stages 6-7 + head.
    let mut layers5 = stage_mixed_layers(cur, st[5]);
    layers5.extend(stage_mixed_layers(st[5].out_c, st[6]));
    blocks.push(SupernetBlockSpec {
        layers: layers5,
        tail: StackSpec::new(vec![
            LayerSpec::pointwise(1280),
            LayerSpec::BatchNorm,
            LayerSpec::Relu,
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear {
                out_features: variant.classes(),
            },
        ]),
    });

    blocks
}

fn stage_mixed_layers(in_c: usize, stage: Stage) -> Vec<MixedLayerSpec> {
    let mut layers = Vec::with_capacity(stage.repeats);
    let mut cur = in_c;
    for r in 0..stage.repeats {
        let stride = if r == 0 { stage.stride } else { 1 };
        layers.push(MixedLayerSpec::mbconv_choices(cur, stage.out_c, stride));
        cur = stage.out_c;
    }
    layers
}

/// Builds the NAS teacher/student [`BlockModel`]: MobileNetV2 teacher with
/// the ProxylessNAS supernet student, per-block.
pub fn nas_block_model(variant: InputVariant) -> BlockModel {
    let teacher = teacher_blocks(variant);
    let student = supernet_blocks(variant);
    assert_eq!(teacher.len(), student.len());
    let mut shape = variant.input_shape();
    let mut blocks = Vec::with_capacity(teacher.len());
    for (i, (t, s)) in teacher.iter().zip(student.iter()).enumerate() {
        let tc = t.cost(shape);
        let sc = s.cost(shape);
        assert_eq!(
            tc.out_shape, sc.out_shape,
            "block {i}: teacher/student boundary mismatch"
        );
        blocks.push(BlockDescriptor {
            name: format!("b{i}"),
            in_shape: shape,
            out_shape: tc.out_shape,
            teacher_macs: tc.macs,
            teacher_params: tc.params,
            teacher_kernels: tc.kernels,
            teacher_act_elems: tc.act_elems,
            teacher_peak_act_elems: tc.peak_act_elems,
            student_macs: sc.macs,
            student_params: sc.params,
            student_kernels: sc.kernels,
            student_act_elems: sc.act_elems,
            student_peak_act_elems: sc.peak_act_elems,
        });
        shape = tc.out_shape;
    }
    BlockModel {
        name: format!("mobilenetv2->proxyless/{:?}", variant),
        input_shape: variant.input_shape(),
        blocks,
    }
}

/// A deterministic "selected" architecture — one candidate per layer — used
/// to report final-architecture params/FLOPs in Table II. Alternates
/// (k5, e6) and (k3, e3) choices, which lands near the published selected
/// networks.
pub fn selected_student_blocks(variant: InputVariant) -> Vec<StackSpec> {
    let st = stages(variant);
    let stem_stride = match variant {
        InputVariant::ImageNet => 2,
        InputVariant::Cifar => 1,
    };
    let mut blocks = Vec::with_capacity(6);
    let mut pick = 0usize;
    let mut choice = move || {
        let c = if pick % 2 == 0 { (5, 6) } else { (3, 3) };
        pick += 1;
        c
    };
    let mut stage_sel = |in_c: usize, stage: Stage| {
        let mut layers = Vec::new();
        let mut cur = in_c;
        for r in 0..stage.repeats {
            let stride = if r == 0 { stage.stride } else { 1 };
            let (k, e) = choice();
            layers.extend(inverted_residual(cur, stage.out_c, e, k, stride));
            cur = stage.out_c;
        }
        layers
    };

    let mut b0 = vec![
        LayerSpec::conv(32, 3, stem_stride),
        LayerSpec::BatchNorm,
        LayerSpec::Relu,
    ];
    b0.extend(stage_sel(32, st[0]));
    blocks.push(StackSpec::new(b0));
    let mut cur = st[0].out_c;
    for stage in &st[1..5] {
        blocks.push(StackSpec::new(stage_sel(cur, *stage)));
        cur = stage.out_c;
    }
    let mut b5 = stage_sel(cur, st[5]);
    b5.extend(stage_sel(st[5].out_c, st[6]));
    b5.push(LayerSpec::pointwise(1280));
    b5.push(LayerSpec::BatchNorm);
    b5.push(LayerSpec::Relu);
    b5.push(LayerSpec::GlobalAvgPool);
    b5.push(LayerSpec::Linear {
        out_features: variant.classes(),
    });
    blocks.push(StackSpec::new(b5));
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_candidates_per_searchable_layer() {
        let m = MixedLayerSpec::mbconv_choices(16, 24, 2);
        assert_eq!(m.candidates.len(), 6);
    }

    #[test]
    fn candidate_shapes_agree() {
        let m = MixedLayerSpec::mbconv_choices(16, 24, 2);
        let c = m.cost(ActShape::new(16, 32, 32));
        assert_eq!(c.out_shape, ActShape::new(24, 16, 16));
        // Traffic charges the mean sampled path; resident the max path.
        assert!(c.peak_act_elems >= c.act_elems);
    }

    #[test]
    fn supernet_step_costs_one_sampled_path() {
        // ProxylessNAS path sampling: per-step MACs are the candidate
        // mean, while parameters sum over all candidates.
        let m = MixedLayerSpec::mbconv_choices(16, 16, 1);
        let c = m.cost(ActShape::new(16, 16, 16));
        let shape = ActShape::new(16, 16, 16);
        let min = m
            .candidates
            .iter()
            .map(|x| x.cost(shape).macs)
            .min()
            .unwrap();
        let max = m
            .candidates
            .iter()
            .map(|x| x.cost(shape).macs)
            .max()
            .unwrap();
        assert!((min..=max).contains(&c.macs), "mean path within bounds");
        let param_sum: u64 = m.candidates.iter().map(|x| x.cost(shape).params).sum();
        assert_eq!(c.params, param_sum, "all candidates stay resident");
    }

    #[test]
    fn nas_model_validates() {
        for variant in [InputVariant::Cifar, InputVariant::ImageNet] {
            let m = nas_block_model(variant);
            assert_eq!(m.num_blocks(), 6);
            m.validate().expect("boundary continuity");
        }
    }

    #[test]
    fn student_training_heavier_than_teacher_forward() {
        // Per round the student pays forward + backward (≈ 3× forward) on
        // the sampled path; that must dominate the teacher's forward.
        let m = nas_block_model(InputVariant::Cifar);
        assert!(3 * m.student_macs() > m.teacher_macs());
        // And the supernet's resident parameters sum over all candidates,
        // so the student holds more state than the teacher.
        assert!(m.student_params() > m.teacher_params());
    }

    #[test]
    fn selected_student_near_published_size() {
        // Paper Table II: CIFAR selected student 1.40M params / 76.10M FLOPs;
        // ImageNet 4.22M params / 420.20M FLOPs. Bands are generous — we
        // only need the right order of magnitude for Table II reporting.
        let mut shape = InputVariant::Cifar.input_shape();
        let mut params = 0u64;
        let mut macs = 0u64;
        for b in selected_student_blocks(InputVariant::Cifar) {
            let c = b.cost(shape);
            params += c.params;
            macs += c.macs;
            shape = c.out_shape;
        }
        assert!((1_000_000..4_500_000).contains(&params), "params {params}");
        assert!((40_000_000..200_000_000).contains(&macs), "macs {macs}");
    }

    #[test]
    fn imagenet_supernet_block0_dominant() {
        let m = nas_block_model(InputVariant::ImageNet);
        let b0 = m.blocks[0].student_macs + m.blocks[0].teacher_macs;
        for b in &m.blocks[1..5] {
            assert!(b.student_macs + b.teacher_macs < b0);
        }
    }
}
