//! A small calculus of layer specifications.
//!
//! The simulator never executes real kernels; it needs, per block, the MAC
//! count, parameter count, activation footprint, kernel-launch count, and
//! boundary shapes. Model builders describe architectures as lists of
//! [`LayerSpec`]s, and this module folds them into those aggregates. The
//! same arithmetic is unit-tested against `pipebd_tensor::Conv2dSpec` so the
//! analytic model and the executable mini models cannot drift apart.

use serde::{Deserialize, Serialize};

/// Per-sample activation shape in CHW layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ActShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl ActShape {
    /// Creates a CHW shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        ActShape { c, h, w }
    }

    /// Elements per sample.
    pub fn elems(&self) -> u64 {
        (self.c * self.h * self.w) as u64
    }

    /// Bytes per sample at fp32.
    pub fn bytes(&self) -> u64 {
        4 * self.elems()
    }

    /// Spatial positions (`h·w`), the parallelism proxy used by the GPU
    /// occupancy model.
    pub fn positions(&self) -> u64 {
        (self.h * self.w) as u64
    }
}

impl std::fmt::Display for ActShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// One analytic layer in an architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Grouped 2-D convolution (+ folded bias).
    Conv {
        /// Output channels.
        out_c: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Channel groups (1 = dense; `in_c` = depthwise).
        groups: usize,
    },
    /// Batch normalization (parameters only; negligible MACs).
    BatchNorm,
    /// ReLU-family activation (no parameters, one kernel).
    Relu,
    /// Max pooling.
    MaxPool {
        /// Window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling to `[c, 1, 1]`.
    GlobalAvgPool,
    /// Fully connected layer over the flattened input.
    Linear {
        /// Output features.
        out_features: usize,
    },
    /// Elementwise residual add with the block input (MobileNetV2).
    ResidualAdd,
}

impl LayerSpec {
    /// Depthwise 3×3 shorthand (stride `s`).
    pub fn depthwise(channels: usize, kernel: usize, stride: usize) -> Self {
        LayerSpec::Conv {
            out_c: channels,
            kernel,
            stride,
            padding: kernel / 2,
            groups: channels,
        }
    }

    /// Pointwise 1×1 shorthand.
    pub fn pointwise(out_c: usize) -> Self {
        LayerSpec::Conv {
            out_c,
            kernel: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Dense `k×k` shorthand with same-padding.
    pub fn conv(out_c: usize, kernel: usize, stride: usize) -> Self {
        LayerSpec::Conv {
            out_c,
            kernel,
            stride,
            padding: kernel / 2,
            groups: 1,
        }
    }

    /// Output shape for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (e.g. channels not divisible
    /// by groups); model builders are expected to be correct by
    /// construction, and the unit tests exercise every builder.
    pub fn out_shape(&self, input: ActShape) -> ActShape {
        match *self {
            LayerSpec::Conv {
                out_c,
                kernel,
                stride,
                padding,
                groups,
            } => {
                assert!(
                    input.c % groups == 0 && out_c % groups == 0,
                    "conv groups {groups} incompatible with channels {} -> {out_c}",
                    input.c
                );
                let h = (input.h + 2 * padding - kernel) / stride + 1;
                let w = (input.w + 2 * padding - kernel) / stride + 1;
                ActShape::new(out_c, h, w)
            }
            LayerSpec::BatchNorm | LayerSpec::Relu | LayerSpec::ResidualAdd => input,
            LayerSpec::MaxPool { kernel, stride } => ActShape::new(
                input.c,
                (input.h - kernel) / stride + 1,
                (input.w - kernel) / stride + 1,
            ),
            LayerSpec::GlobalAvgPool => ActShape::new(input.c, 1, 1),
            LayerSpec::Linear { out_features } => ActShape::new(out_features, 1, 1),
        }
    }

    /// Multiply-accumulate operations per sample.
    pub fn macs(&self, input: ActShape) -> u64 {
        match *self {
            LayerSpec::Conv {
                out_c,
                kernel,
                groups,
                ..
            } => {
                let out = self.out_shape(input);
                (out.h * out.w * out_c) as u64 * ((input.c / groups) * kernel * kernel) as u64
            }
            LayerSpec::Linear { out_features } => input.elems() * out_features as u64,
            // Elementwise / pooling work is counted as zero MACs (it is
            // memory-bound; the simulator's byte term covers it).
            _ => 0,
        }
    }

    /// Trainable parameter count.
    pub fn params(&self, input: ActShape) -> u64 {
        match *self {
            LayerSpec::Conv {
                out_c,
                kernel,
                groups,
                ..
            } => (out_c * (input.c / groups) * kernel * kernel + out_c) as u64,
            LayerSpec::BatchNorm => 2 * input.c as u64,
            LayerSpec::Linear { out_features } => {
                input.elems() * out_features as u64 + out_features as u64
            }
            _ => 0,
        }
    }

    /// Kernel launches for one forward pass.
    pub fn kernels(&self) -> u32 {
        1
    }
}

/// A sequence of analytic layers with derived aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StackSpec {
    /// The layers, in execution order.
    pub layers: Vec<LayerSpec>,
}

/// Aggregates of a [`StackSpec`] evaluated at a concrete input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackCost {
    /// Multiply-accumulates per sample (forward).
    pub macs: u64,
    /// Trainable parameters.
    pub params: u64,
    /// Sum of all layer-output elements per sample (activation *traffic*
    /// of one pass; drives the memory-bandwidth time term).
    pub act_elems: u64,
    /// Largest single layer-output per sample (peak *resident* activation;
    /// drives memory capacity accounting).
    pub peak_act_elems: u64,
    /// Kernel launches per forward pass.
    pub kernels: u32,
    /// Output shape.
    pub out_shape: ActShape,
}

impl StackSpec {
    /// Creates a stack from layers.
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        StackSpec { layers }
    }

    /// Folds the stack over `input`, producing the cost aggregates.
    pub fn cost(&self, input: ActShape) -> StackCost {
        let mut shape = input;
        let mut macs = 0u64;
        let mut params = 0u64;
        let mut act_elems = 0u64;
        let mut peak_act_elems = 0u64;
        let mut kernels = 0u32;
        for layer in &self.layers {
            macs += layer.macs(shape);
            params += layer.params(shape);
            kernels += layer.kernels();
            shape = layer.out_shape(shape);
            act_elems += shape.elems();
            peak_act_elems = peak_act_elems.max(shape.elems());
        }
        StackCost {
            macs,
            params,
            act_elems,
            peak_act_elems,
            kernels,
            out_shape: shape,
        }
    }

    /// Appends the layers of `other` (builder-style composition).
    pub fn extend(mut self, other: StackSpec) -> Self {
        self.layers.extend(other.layers);
        self
    }
}

/// Emits the layer sequence of a MobileNetV2 inverted-residual bottleneck
/// (expand 1×1 → depthwise k×k → project 1×1, each with BN, ReLU6 on the
/// first two).
pub fn inverted_residual(
    in_c: usize,
    out_c: usize,
    expand: usize,
    kernel: usize,
    stride: usize,
) -> Vec<LayerSpec> {
    let hidden = in_c * expand;
    let mut layers = Vec::new();
    if expand != 1 {
        layers.push(LayerSpec::pointwise(hidden));
        layers.push(LayerSpec::BatchNorm);
        layers.push(LayerSpec::Relu);
    }
    layers.push(LayerSpec::depthwise(hidden, kernel, stride));
    layers.push(LayerSpec::BatchNorm);
    layers.push(LayerSpec::Relu);
    layers.push(LayerSpec::pointwise(out_c));
    layers.push(LayerSpec::BatchNorm);
    if stride == 1 && in_c == out_c {
        layers.push(LayerSpec::ResidualAdd);
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_tensor::Conv2dSpec;

    #[test]
    fn conv_shape_matches_tensor_crate() {
        let input = ActShape::new(3, 32, 32);
        let spec = LayerSpec::conv(16, 3, 2);
        let out = spec.out_shape(input);
        let tspec = Conv2dSpec::dense(3, 16, 3, 2, 1);
        assert_eq!(out.h, tspec.out_extent(32).unwrap());
        assert_eq!(out.w, tspec.out_extent(32).unwrap());
    }

    #[test]
    fn conv_macs_match_tensor_crate_flops() {
        let input = ActShape::new(8, 16, 16);
        let spec = LayerSpec::conv(16, 3, 1);
        let tspec = Conv2dSpec::dense(8, 16, 3, 1, 1);
        // tensor crate counts 2 ops per MAC.
        assert_eq!(2 * spec.macs(input), tspec.flops_per_sample(16, 16));
    }

    #[test]
    fn depthwise_macs_match_tensor_crate() {
        let input = ActShape::new(8, 16, 16);
        let spec = LayerSpec::depthwise(8, 3, 1);
        let tspec = Conv2dSpec::depthwise(8, 3, 1, 1);
        assert_eq!(2 * spec.macs(input), tspec.flops_per_sample(16, 16));
    }

    #[test]
    fn linear_params_and_macs() {
        let input = ActShape::new(512, 1, 1);
        let spec = LayerSpec::Linear { out_features: 10 };
        assert_eq!(spec.macs(input), 5120);
        assert_eq!(spec.params(input), 5130);
        assert_eq!(spec.out_shape(input), ActShape::new(10, 1, 1));
    }

    #[test]
    fn stack_cost_accumulates() {
        let stack = StackSpec::new(vec![
            LayerSpec::conv(4, 3, 1),
            LayerSpec::BatchNorm,
            LayerSpec::Relu,
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 2 },
        ]);
        let input = ActShape::new(2, 8, 8);
        let cost = stack.cost(input);
        assert_eq!(cost.out_shape, ActShape::new(2, 1, 1));
        // conv: 8*8*4*2*9 = 4608 MACs; linear: 4*2 = 8.
        assert_eq!(cost.macs, 4608 + 8);
        // conv params 4*2*9+4=76, bn 8, linear 4*2+2=10.
        assert_eq!(cost.params, 76 + 8 + 10);
        assert_eq!(cost.kernels, 5);
        // act elems: conv out 256, bn 256, relu 256, gap 4, linear 2.
        assert_eq!(cost.act_elems, 256 * 3 + 4 + 2);
    }

    #[test]
    fn inverted_residual_has_residual_only_when_legal() {
        let with = inverted_residual(16, 16, 6, 3, 1);
        assert!(with.iter().any(|l| matches!(l, LayerSpec::ResidualAdd)));
        let without_stride = inverted_residual(16, 16, 6, 3, 2);
        assert!(!without_stride
            .iter()
            .any(|l| matches!(l, LayerSpec::ResidualAdd)));
        let without_chan = inverted_residual(16, 24, 6, 3, 1);
        assert!(!without_chan
            .iter()
            .any(|l| matches!(l, LayerSpec::ResidualAdd)));
    }

    #[test]
    fn inverted_residual_shape_flow() {
        let stack = StackSpec::new(inverted_residual(16, 24, 6, 5, 2));
        let cost = stack.cost(ActShape::new(16, 32, 32));
        assert_eq!(cost.out_shape, ActShape::new(24, 16, 16));
        assert!(cost.macs > 0);
    }

    #[test]
    fn expand_one_skips_expansion_conv() {
        let layers = inverted_residual(32, 16, 1, 3, 1);
        // depthwise + bn + relu + pointwise + bn = 5 layers (no expand).
        assert_eq!(layers.len(), 5);
    }
}
