//! Dataset descriptors for the timing model.
//!
//! The paper trains on CIFAR-10 and ImageNet. The simulator only needs the
//! loading-cost profile of a dataset: how many samples an epoch contains,
//! how many bytes reach the GPU per sample, and how much shared host CPU
//! time decoding/augmenting one sample costs. The functional engine
//! (crate `pipebd-data`) builds synthetic datasets that match these shapes.

use serde::{Deserialize, Serialize};

use crate::arch::ActShape;

/// Loading-cost profile of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name, e.g. `"cifar10"`.
    pub name: String,
    /// Training-set size (samples per epoch).
    pub train_samples: u64,
    /// Per-sample tensor shape delivered to the model.
    pub sample_shape: ActShape,
    /// Number of classes.
    pub classes: usize,
    /// Host CPU time to decode + augment one sample, in microseconds.
    /// This is the shared resource the paper's "extra data loading"
    /// overhead queues on.
    pub decode_us_per_sample: f64,
}

impl DatasetSpec {
    /// CIFAR-10: 50 000 train images of 3×32×32.
    ///
    /// The 25 µs/sample decode cost models an augmentation pipeline
    /// (crop + flip + normalize) on raw bitmaps, matching the visible
    /// data-loading share in the paper's Fig. 2.
    pub fn cifar10() -> Self {
        DatasetSpec {
            name: "cifar10".into(),
            train_samples: 50_000,
            sample_shape: ActShape::new(3, 32, 32),
            classes: 10,
            decode_us_per_sample: 25.0,
        }
    }

    /// ImageNet-1k: 1 281 167 train images decoded to 3×224×224.
    ///
    /// The 1.8 ms/sample decode cost models JPEG decode + resize +
    /// augmentation, the dominant loader cost on ImageNet.
    pub fn imagenet() -> Self {
        DatasetSpec {
            name: "imagenet".into(),
            train_samples: 1_281_167,
            sample_shape: ActShape::new(3, 224, 224),
            classes: 1000,
            decode_us_per_sample: 1800.0,
        }
    }

    /// A miniature dataset used by fast tests and examples.
    pub fn mini(samples: u64, side: usize, classes: usize) -> Self {
        DatasetSpec {
            name: format!("mini{side}"),
            train_samples: samples,
            sample_shape: ActShape::new(3, side, side),
            classes,
            decode_us_per_sample: 10.0,
        }
    }

    /// Bytes transferred host→device per sample (fp32 tensor).
    pub fn sample_bytes(&self) -> u64 {
        self.sample_shape.bytes()
    }

    /// Number of optimizer steps in one epoch at the given global batch
    /// size (drop-last semantics, minimum 1).
    pub fn steps_per_epoch(&self, batch: usize) -> u64 {
        (self.train_samples / batch.max(1) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cifar_profile() {
        let d = DatasetSpec::cifar10();
        assert_eq!(d.train_samples, 50_000);
        assert_eq!(d.sample_bytes(), 3 * 32 * 32 * 4);
        assert_eq!(d.steps_per_epoch(256), 195);
    }

    #[test]
    fn imagenet_profile() {
        let d = DatasetSpec::imagenet();
        assert_eq!(d.steps_per_epoch(256), 5004);
        assert!(d.decode_us_per_sample > DatasetSpec::cifar10().decode_us_per_sample);
    }

    #[test]
    fn steps_never_zero() {
        let d = DatasetSpec::mini(10, 8, 2);
        assert_eq!(d.steps_per_epoch(64), 1);
        assert_eq!(d.steps_per_epoch(0), 10);
    }
}
