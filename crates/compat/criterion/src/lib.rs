//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple
//! fixed-budget wall-clock loop instead of criterion's statistical
//! machinery. Each benchmark prints one line
//! (`<id> ... time: <mean per iteration>`) to stderr.
//!
//! The measurement budget is intentionally small (see
//! [`Criterion::default`]) so `cargo bench` finishes quickly; treat the
//! numbers as smoke-level timings, not publishable statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed measurement (a shim extension over the real criterion:
/// the artifact plane persists bench baselines from these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub id: String,
    /// Mean time per iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    /// Target wall-clock budget per benchmark.
    measurement_time: Duration,
    /// Maximum number of timed iterations per benchmark.
    max_iters: u64,
    /// All measurements so far, in execution order.
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
            max_iters: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its mean time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut b = Bencher {
            budget: self.measurement_time,
            max_iters: self.max_iters,
            mean: None,
            iters: 0,
        };
        f(&mut b);
        match b.mean {
            Some(mean) => {
                eprintln!("{id:<50} time: {mean:?}");
                self.results.push(BenchResult {
                    id: id.to_string(),
                    mean_ns: u64::try_from(mean.as_nanos()).unwrap_or(u64::MAX),
                    iters: b.iters,
                });
            }
            None => eprintln!("{id:<50} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// All measurements recorded so far (shim extension; the real
    /// criterion reports through its own output files instead).
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Opens a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as `group/id`.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(&full, f);
        self
    }

    /// Accepted for compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget for subsequent benchmarks in the group.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.measurement_time = budget;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times a routine; handed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    max_iters: u64,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up, then until the time budget
    /// or iteration cap is reached) and records the mean duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < self.max_iters && (iters == 0 || started.elapsed() < self.budget) {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.mean = Some(started.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
