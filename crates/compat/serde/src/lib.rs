//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! report types so they are ready for a real serialization backend, but
//! no code path actually serializes yet (there is no `serde_json` in the
//! tree). This shim therefore provides the two traits with blanket
//! implementations — every type trivially satisfies any
//! `T: Serialize` / `T: Deserialize` bound — plus no-op derive macros,
//! keeping the source-level API identical to the real crate so it can be
//! swapped in without touching any call site.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module path.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module path.
pub mod ser {
    pub use super::Serialize;
}
