//! Offline stand-in for the `serde` crate — now with a **functional data
//! model**, not just marker traits.
//!
//! Earlier revisions of this shim provided blanket-implemented marker
//! traits so the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compiled without a backend. Since the JSON backend landed
//! (`crates/json`), the shim implements the real serde architecture in
//! miniature:
//!
//! * [`Serialize`] drives a [`Serializer`] describing the value through
//!   typed calls (`serialize_u64`, `serialize_struct`, …);
//! * [`Deserialize`] hands a [`de::Visitor`] to a [`Deserializer`], which
//!   dispatches on the input's actual shape (visitor-style value
//!   dispatch) through [`de::SeqAccess`] / [`de::MapAccess`] /
//!   [`de::EnumAccess`].
//!
//! The derive macros (`crates/compat/serde_derive`) generate real
//! field-by-field implementations against these traits, so call sites are
//! identical to the real crate for the subset the workspace uses.
//! Deliberate simplifications versus real serde: no `*_seed` variants
//! (map keys are always borrowed `&str`s), no zero-copy `visit_borrowed_*`
//! distinction, no `u128`/`i128`/byte-buffer methods, and self-describing
//! formats only (the hint methods default to [`Deserializer::deserialize_any`]).

pub use serde_derive::{Deserialize, Serialize};

pub mod ser;

pub mod de;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
