//! Deserialization half of the data model: [`Deserialize`],
//! [`Deserializer`], [`Visitor`], and the access traits a format uses to
//! hand compound values to a visitor.

use std::fmt::{self, Display};

/// Error raised by a [`Deserializer`].
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// The input held a value of the wrong kind.
    fn invalid_type(unexpected: &str, expected: &str) -> Self {
        Self::custom(format!("invalid type: {unexpected}, expected {expected}"))
    }

    /// The input held a value of the right kind but an unusable content.
    fn invalid_value(unexpected: &str, expected: &str) -> Self {
        Self::custom(format!("invalid value: {unexpected}, expected {expected}"))
    }

    /// A sequence ended before all required elements were read.
    fn invalid_length(len: usize, expected: &str) -> Self {
        Self::custom(format!("invalid length {len}, expected {expected}"))
    }

    /// An enum variant name was not recognized.
    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }

    /// A required struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// A struct field appeared twice.
    fn duplicate_field(field: &'static str) -> Self {
        Self::custom(format!("duplicate field `{field}`"))
    }
}

/// A data structure that can be built from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    ///
    /// # Errors
    ///
    /// Returns the format's error when the input does not describe a valid
    /// `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A data format that can drive a [`Visitor`] from its input.
///
/// The shim targets self-describing formats only: every hint method
/// defaults to [`Deserializer::deserialize_any`], with
/// [`Deserializer::deserialize_option`] and
/// [`Deserializer::deserialize_enum`] the two shape-changing exceptions a
/// format must implement itself.
pub trait Deserializer<'de>: Sized {
    /// Error type raised by this format.
    type Error: Error;

    /// Dispatches on whatever the input holds next.
    ///
    /// # Errors
    ///
    /// Format-specific; also any error the visitor raises.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Distinguishes an absent value ([`Visitor::visit_none`]) from a
    /// present one ([`Visitor::visit_some`]).
    ///
    /// # Errors
    ///
    /// Format-specific; also any error the visitor raises.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Deserializes an enum, handing the visitor an [`EnumAccess`].
    ///
    /// # Errors
    ///
    /// Format-specific; also any error the visitor raises.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Hint: a struct with the given fields is expected.
    ///
    /// # Errors
    ///
    /// See [`Deserializer::deserialize_any`].
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Hint: a sequence is expected.
    ///
    /// # Errors
    ///
    /// See [`Deserializer::deserialize_any`].
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Hint: a map is expected.
    ///
    /// # Errors
    ///
    /// See [`Deserializer::deserialize_any`].
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Hint: a string is expected.
    ///
    /// # Errors
    ///
    /// See [`Deserializer::deserialize_any`].
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }

    /// Hint: a unit value is expected.
    ///
    /// # Errors
    ///
    /// See [`Deserializer::deserialize_any`].
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
}

/// Renders a visitor's [`Visitor::expecting`] message as a `String`.
fn expected<'de, V: Visitor<'de>>(visitor: &V) -> String {
    struct Adapter<'a, 'de, V: Visitor<'de>>(&'a V, std::marker::PhantomData<&'de ()>);
    impl<'de, V: Visitor<'de>> Display for Adapter<'_, 'de, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
    Adapter(visitor, std::marker::PhantomData).to_string()
}

/// Receives the value a [`Deserializer`] found in its input.
///
/// Every `visit_*` method defaults to a type error built from
/// [`Visitor::expecting`]; implementations override exactly the shapes
/// they accept.
pub trait Visitor<'de>: Sized {
    /// The value this visitor produces.
    type Value;

    /// Writes "what was expected" for error messages.
    ///
    /// # Errors
    ///
    /// Standard formatter errors.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Visits a `bool`.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
        Err(E::invalid_type("a boolean", &expected(&self)))
    }

    /// Visits a signed integer.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(E::invalid_type("an integer", &expected(&self)))
    }

    /// Visits an unsigned integer.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(E::invalid_type("an unsigned integer", &expected(&self)))
    }

    /// Visits a floating-point number.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
        Err(E::invalid_type("a float", &expected(&self)))
    }

    /// Visits a borrowed string.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::invalid_type("a string", &expected(&self)))
    }

    /// Visits an owned string (defaults to [`Visitor::visit_str`]).
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visits a unit / null value.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("a unit value", &expected(&self)))
    }

    /// Visits an absent optional.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::invalid_type("an absent value", &expected(&self)))
    }

    /// Visits a present optional.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(D::Error::invalid_type("a present value", &expected(&self)))
    }

    /// Visits a sequence.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("a sequence", &expected(&self)))
    }

    /// Visits a map.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("a map", &expected(&self)))
    }

    /// Visits an enum.
    ///
    /// # Errors
    ///
    /// Type error by default.
    fn visit_enum<A: EnumAccess<'de>>(self, _access: A) -> Result<Self::Value, A::Error> {
        Err(A::Error::invalid_type("an enum", &expected(&self)))
    }
}

/// Lets a visitor pull elements out of a sequence.
pub trait SeqAccess<'de> {
    /// Error type of the driving format.
    type Error: Error;

    /// Next element, or `None` at the end of the sequence.
    ///
    /// # Errors
    ///
    /// Format-specific; also element deserialization errors.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Lets a visitor pull `key: value` entries out of a map.
///
/// Simplified from real serde: keys are always borrowed strings (all
/// workspace formats are JSON-shaped), so there is no key-seed machinery.
pub trait MapAccess<'de> {
    /// Error type of the driving format.
    type Error: Error;

    /// Next key, or `None` at the end of the map.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn next_key(&mut self) -> Result<Option<&'de str>, Self::Error>;

    /// Value of the entry whose key was just read.
    ///
    /// # Errors
    ///
    /// Format-specific; also value deserialization errors.
    fn next_value<T: Deserialize<'de>>(&mut self) -> Result<T, Self::Error>;

    /// Discards the value of the entry whose key was just read (unknown
    /// fields are skipped, matching real serde's default).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn skip_value(&mut self) -> Result<(), Self::Error>;

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Lets a visitor split an enum into its variant name and content.
pub trait EnumAccess<'de>: Sized {
    /// Error type of the driving format.
    type Error: Error;
    /// Accessor for the variant's content.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Reads the variant name and returns the content accessor.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn variant(self) -> Result<(&'de str, Self::Variant), Self::Error>;
}

/// Lets a visitor deserialize the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type of the driving format.
    type Error: Error;

    /// Confirms the variant carries no data.
    ///
    /// # Errors
    ///
    /// Errors if the input attached content to the variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// Deserializes the single field of a newtype variant.
    ///
    /// # Errors
    ///
    /// Format-specific; also field deserialization errors.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error>;

    /// Drives `visitor` over the fields of a tuple variant.
    ///
    /// # Errors
    ///
    /// Format-specific; also any error the visitor raises.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// Drives `visitor` over the named fields of a struct variant.
    ///
    /// # Errors
    ///
    /// Format-specific; also any error the visitor raises.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// Deserialize implementations for the std types the workspace persists.
// ---------------------------------------------------------------------------

struct BoolVisitor;

impl Visitor<'_> for BoolVisitor {
    type Value = bool;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a boolean")
    }
    fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_any(BoolVisitor)
    }
}

macro_rules! impl_deserialize_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct IntVisitor;
                    impl Visitor<'_> for IntVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(concat!("an integer fitting ", stringify!($ty)))
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                            <$ty>::try_from(v).map_err(|_| {
                                E::invalid_value(&format!("integer `{v}`"), stringify!($ty))
                            })
                        }
                        fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                            <$ty>::try_from(v).map_err(|_| {
                                E::invalid_value(&format!("integer `{v}`"), stringify!($ty))
                            })
                        }
                    }
                    deserializer.deserialize_any(IntVisitor)
                }
            }
        )*
    };
}

impl_deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_float {
    ($($ty:ty),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct FloatVisitor;
                    impl Visitor<'_> for FloatVisitor {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(concat!("a number convertible to ", stringify!($ty)))
                        }
                        fn visit_f64<E: Error>(self, v: f64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.deserialize_any(FloatVisitor)
                }
            }
        )*
    };
}

impl_deserialize_float!(f32, f64);

struct StringVisitor;

impl Visitor<'_> for StringVisitor {
    type Value = String;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a string")
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
        Ok(v.to_owned())
    }
    fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
        Ok(v)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_str(StringVisitor)
    }
}

struct CharVisitor;

impl Visitor<'_> for CharVisitor {
    type Value = char;
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a one-character string")
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
        let mut chars = v.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(E::invalid_value(
                &format!("string {v:?}"),
                "a single character",
            )),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_str(CharVisitor)
    }
}

struct UnitVisitor;

impl Visitor<'_> for UnitVisitor {
    type Value = ();
    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a unit value")
    }
    fn visit_unit<E: Error>(self) -> Result<(), E> {
        Ok(())
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(OptionVisitor(std::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(std::marker::PhantomData))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct PairVisitor<A, B>(std::marker::PhantomData<(A, B)>);
        impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Visitor<'de> for PairVisitor<A, B> {
            type Value = (A, B);
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a two-element sequence")
            }
            fn visit_seq<S: SeqAccess<'de>>(self, mut seq: S) -> Result<(A, B), S::Error> {
                let a = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::invalid_length(0, "a pair"))?;
                let b = seq
                    .next_element()?
                    .ok_or_else(|| S::Error::invalid_length(1, "a pair"))?;
                Ok((a, b))
            }
        }
        deserializer.deserialize_seq(PairVisitor(std::marker::PhantomData))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<V>(std::marker::PhantomData<V>);
        impl<'de, V: Deserialize<'de>> Visitor<'de> for MapVisitor<V> {
            type Value = std::collections::BTreeMap<String, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key.to_owned(), value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(std::marker::PhantomData))
    }
}
