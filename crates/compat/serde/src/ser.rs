//! Serialization half of the data model: [`Serialize`], [`Serializer`],
//! and the compound-serializer traits.

use std::fmt::Display;

/// Error raised by a [`Serializer`].
///
/// Formats provide their own concrete error type; the only requirement is
/// that data-structure code can create one from a message.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    ///
    /// # Errors
    ///
    /// Propagates any error the serializer raises.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can receive any value [`Serialize`] describes.
///
/// Mirrors `serde::Serializer` minus the seed/borrow machinery: tuples are
/// serialized through [`Serializer::serialize_seq`], and there are no
/// 128-bit or byte-string methods (nothing in the workspace uses them).
pub trait Serializer: Sized {
    /// Output produced on success (`()` for writers, a value tree for
    /// value builders).
    type Ok;
    /// Error type raised by this format.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps with arbitrary keys.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs with named fields.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;

    /// Serializes an `i64` (all narrower signed integers widen to this).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;

    /// Serializes a `u64` (all narrower unsigned integers widen to this).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

    /// Serializes an `f64`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;

    /// Serializes an `f32`. Defaults to widening; formats that care about
    /// shortest round-trip text (JSON) override it.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error> {
        self.serialize_f64(f64::from(v))
    }

    /// Serializes an `i8`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }

    /// Serializes an `i16`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }

    /// Serializes an `i32`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error> {
        self.serialize_i64(i64::from(v))
    }

    /// Serializes a `u8`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }

    /// Serializes a `u16`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }

    /// Serializes a `u32`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error> {
        self.serialize_u64(u64::from(v))
    }

    /// Serializes a `char` (as a one-character string by default).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error> {
        self.serialize_str(v.encode_utf8(&mut [0u8; 4]))
    }

    /// Serializes a string slice.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serializes the unit value `()`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;

    /// Serializes `Option::None`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;

    /// Serializes `Option::Some(value)`.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;

    /// Serializes a unit struct (`struct Marker;`).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Self::Ok, Self::Error> {
        self.serialize_unit()
    }

    /// Serializes a newtype struct as its inner value.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error> {
        value.serialize(self)
    }

    /// Serializes a dataless enum variant.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;

    /// Serializes a one-field tuple enum variant.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;

    /// Begins serializing a sequence of `len` elements (if known).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;

    /// Begins serializing a map of `len` entries (if known).
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;

    /// Begins serializing a struct with `len` named fields.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;

    /// Begins serializing a tuple enum variant with `len` fields.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;

    /// Begins serializing a struct enum variant with `len` named fields.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;

    /// Serializes one element.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the sequence.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_map`].
pub trait SerializeMap {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;

    /// Serializes one `key: value` entry.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_entry<K: Serialize + ?Sized, V: Serialize + ?Sized>(
        &mut self,
        key: &K,
        value: &V,
    ) -> Result<(), Self::Error>;

    /// Finishes the map.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;

    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_tuple_variant`].
pub trait SerializeTupleVariant {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;

    /// Serializes one positional field.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Compound serializer returned by [`Serializer::serialize_struct_variant`].
pub trait SerializeStructVariant {
    /// Matches [`Serializer::Ok`].
    type Ok;
    /// Matches [`Serializer::Error`].
    type Error: Error;

    /// Serializes one named field.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;

    /// Finishes the variant.
    ///
    /// # Errors
    ///
    /// Format-specific.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for the std types the workspace persists.
// ---------------------------------------------------------------------------

macro_rules! impl_serialize_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_serialize_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(2))?;
        seq.serialize_element(&self.0)?;
        seq.serialize_element(&self.1)?;
        seq.end()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}
