//! Offline stand-in for the `crossbeam` crate.
//!
//! Three pieces are provided:
//!
//! * [`channel`] — unbounded MPMC channels with the same disconnect
//!   semantics the threaded executor relies on (`recv` fails once every
//!   sender is dropped and the queue is drained; `send` fails once every
//!   receiver is dropped).
//! * [`deque`] — work-stealing deques with the `crossbeam-deque` API
//!   shape (owner pops LIFO, thieves steal FIFO) plus a shared
//!   [`deque::Injector`].
//! * [`pool`] — a work-stealing thread pool with parkable workers and
//!   scoped spawn ([`pool::ThreadPool::scope`]), the engine behind
//!   `pipebd_tensor`'s parallel kernels. (The real crossbeam leaves
//!   pools to `rayon`; the shim grows its own so the workspace stays
//!   offline.)
//!
//! Implementations are `Mutex<VecDeque>` plus `Condvar` — adequate for
//! the executor's coarse-grained messages and for macro-tile-granularity
//! compute tasks, with none of crossbeam's lock-free performance.

pub mod deque;
pub mod pool;

pub mod channel {
    //! Unbounded MPMC channels (`unbounded`, [`Sender`], [`Receiver`]).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like the real crate.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// disconnects for receivers when the last clone is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable; clones
    /// compete for messages (MPMC), like the real crossbeam receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, failing once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Non-blocking receive, distinguishing an empty channel from a
        /// disconnected one (same contract as the real crate).
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            match state.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn delivers_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || rx.recv());
            tx.send(42).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(42));
        }
    }
}
