//! Work-stealing deques (`Worker`, [`Stealer`], [`Injector`]) with the
//! `crossbeam-deque` API shape.
//!
//! Semantics match the real crate's LIFO worker configuration:
//!
//! * the owning thread pushes and pops at the **back** of its deque
//!   (LIFO — freshly spawned subtasks run first, keeping their working
//!   set hot in cache);
//! * stealers take from the **front** (FIFO — thieves drain the oldest,
//!   typically largest-granularity work, the chase-lev discipline);
//! * the [`Injector`] is a shared FIFO queue for tasks submitted from
//!   outside the pool.
//!
//! Like the rest of this shim the implementation is a `Mutex<VecDeque>`,
//! not a lock-free chase-lev buffer: correctness and API compatibility
//! over throughput (see the crate docs). [`Steal::Retry`] is kept for
//! source compatibility but never produced — a lock never observes a
//! torn race the way a CAS loop does.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty at the time of the attempt.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried. Never produced by
    /// this lock-based implementation; kept for API parity with the real
    /// crate so call sites port over unchanged.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the attempt observed an empty queue.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A deque owned by one worker thread; cheap handles for thieves come
/// from [`Worker::stealer`].
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a new LIFO worker deque (the only flavor this shim
    /// provides; the pool uses LIFO scheduling).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task at the back (the owner's end).
    pub fn push(&self, task: T) {
        self.queue.lock().expect("deque poisoned").push_back(task);
    }

    /// Pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_back()
    }

    /// Whether the deque is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("deque poisoned").is_empty()
    }

    /// Number of queued tasks (racy, advisory only).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("deque poisoned").len()
    }

    /// Creates a stealer handle for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_lifo()
    }
}

/// A handle that steals from the opposite end of a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest task (FIFO end).
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("deque poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("deque poisoned").is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// A shared FIFO queue tasks are injected into from outside the pool's
/// worker threads.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task at the back.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Attempts to steal the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the injector is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector poisoned").is_empty()
    }

    /// Number of queued tasks (racy, advisory only).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector poisoned").len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        // Owner pops the newest…
        assert_eq!(w.pop(), Some(3));
        // …the thief takes the oldest.
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push('a');
        inj.push('b');
        assert_eq!(inj.steal().success(), Some('a'));
        assert_eq!(inj.steal().success(), Some('b'));
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn concurrent_steals_never_duplicate() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        const N: usize = 1000;
        let w = Worker::new_lifo();
        for i in 0..N {
            w.push(i);
        }
        let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = w.stealer();
            let seen = Arc::clone(&seen);
            handles.push(std::thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(i) => {
                        seen[i].fetch_add(1, Ordering::SeqCst);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }));
        }
        while let Some(i) = w.pop() {
            seen[i].fetch_add(1, Ordering::SeqCst);
        }
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "task {i}");
        }
    }
}
