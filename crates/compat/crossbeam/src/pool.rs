//! A work-stealing thread pool with scoped spawn.
//!
//! This is the house extension the tensor compute plane runs on (the
//! real `crossbeam` leaves pools to `rayon`; growing one here keeps the
//! workspace offline). The moving parts:
//!
//! * **Per-worker deques** ([`crate::deque`]): a task spawned *by* a
//!   worker lands on that worker's own deque and is popped LIFO (hot
//!   cache); idle workers and the scope's calling thread steal FIFO from
//!   the [`Injector`] and from each other.
//! * **Parkable workers**: an idle worker sleeps on a condvar. A stamp
//!   counter incremented under the same lock on every push makes the
//!   classic scan-then-sleep race benign — if a push lands between a
//!   worker's failed scan and its park, the stamp no longer matches and
//!   the worker rescans instead of sleeping.
//! * **Scoped spawn** ([`ThreadPool::scope`]): tasks may borrow from the
//!   caller's stack (e.g. disjoint `chunks_mut` of one output buffer).
//!   `scope` does not return until every spawned task has finished, which
//!   is what makes the one `unsafe` lifetime erasure below sound — the
//!   same contract as `std::thread::scope` and `rayon::scope`.
//! * **Panic propagation**: a panicking task is caught on the worker,
//!   its payload parked in the scope state, and re-thrown from `scope`
//!   on the calling thread once all tasks have drained — a crash
//!   surfaces as a crash, never as a deadlocked join.
//!
//! A pool of size `n` owns `n - 1` OS threads: the thread calling
//! [`ThreadPool::scope`] is the `n`-th lane, helping execute tasks while
//! it waits. `ThreadPool::new(1)` therefore spawns no threads at all and
//! runs every task inline — the serial pool.

use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::deque::{Injector, Steal, Stealer, Worker};

/// A type-erased, lifetime-erased task. Scope tasks are transmuted to
/// `'static` before entering the queues; `scope`'s drain barrier is what
/// keeps the erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Distinguishes pools so a worker thread only treats *its own* pool's
/// spawns as local pushes.
static POOL_IDS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set for the lifetime of a pool worker thread: `(pool id, own deque)`.
    static CURRENT_WORKER: RefCell<Option<(usize, Worker<Job>)>> = const { RefCell::new(None) };
}

/// Shared coordination state: the queues plus the park/wake machinery.
struct PoolShared {
    id: usize,
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    state: Mutex<PoolState>,
    work_available: Condvar,
    /// Scheduling-event counters, relaxed: the trace plane snapshots them
    /// at run end; they order against nothing.
    steals: AtomicU64,
    parks: AtomicU64,
    wakes: AtomicU64,
}

/// A snapshot of a pool's scheduling-event counters.
///
/// * `steals` — jobs taken from a queue the taker does not own (the
///   injector or another worker's deque); local LIFO pops don't count.
/// * `parks` — times a worker went to sleep on the condvar.
/// * `wakes` — wake-ups broadcast by job pushes (and shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Cross-queue job acquisitions.
    pub steals: u64,
    /// Worker park events.
    pub parks: u64,
    /// Wake-up broadcasts.
    pub wakes: u64,
}

struct PoolState {
    /// Bumped under the lock on every push; the anti-lost-wakeup stamp.
    stamp: u64,
    shutdown: bool,
}

impl PoolShared {
    /// Queues `job` — onto the current thread's own deque when that
    /// thread is one of this pool's workers, else onto the injector —
    /// and wakes parked workers.
    fn push_job(&self, job: Job) {
        let mut job = Some(job);
        CURRENT_WORKER.with(|c| {
            if let Some((id, w)) = c.borrow().as_ref() {
                if *id == self.id {
                    w.push(job.take().expect("job pushed twice"));
                }
            }
        });
        if let Some(j) = job {
            self.injector.push(j);
        }
        let mut st = self.state.lock().expect("pool state poisoned");
        st.stamp = st.stamp.wrapping_add(1);
        drop(st);
        self.wakes.fetch_add(1, Ordering::Relaxed);
        self.work_available.notify_all();
    }

    /// One full scan: local deque (if the calling thread is one of this
    /// pool's workers), then the injector, then every worker's deque.
    fn find_job(&self) -> Option<Job> {
        let local = CURRENT_WORKER.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(|(id, w)| if *id == self.id { w.pop() } else { None })
        });
        if local.is_some() {
            return local;
        }
        loop {
            match self.injector.steal() {
                Steal::Success(j) => {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(j);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for s in &self.stealers {
            loop {
                match s.steal() {
                    Steal::Success(j) => {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(j);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }
        }
        None
    }
}

/// The work-stealing pool. See the module docs for the design.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Creates a pool with `size` compute lanes: `size - 1` worker
    /// threads plus the scope-calling thread. `size == 1` (or `0`,
    /// clamped) spawns no threads and runs scopes inline.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let threads = size - 1;
        let id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        let deques: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = deques.iter().map(Worker::stealer).collect();
        let shared = Arc::new(PoolShared {
            id,
            injector: Injector::new(),
            stealers,
            state: Mutex::new(PoolState {
                stamp: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(i, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pipebd-pool-{id}-{i}"))
                    .spawn(move || worker_loop(shared, deque))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            size,
        }
    }

    /// Number of compute lanes (worker threads + the scoping caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshots the pool's scheduling-event counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            wakes: self.shared.wakes.load(Ordering::Relaxed),
        }
    }

    /// Runs `op` with a [`Scope`] handle; every task spawned on the scope
    /// has finished (or panicked) by the time `scope` returns. The
    /// calling thread helps execute tasks while it waits.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `op` itself, or (if `op` succeeded) the
    /// first panic raised by a spawned task.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            sync: Mutex::new(()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Drain barrier: all spawned tasks must finish before we return
        // (or unwind), whether `op` succeeded or panicked — this is what
        // makes the lifetime erasure in `Scope::spawn` sound.
        self.help_until_done(&state);
        let task_panic = state.panic.lock().expect("panic slot poisoned").take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                r
            }
        }
    }

    /// The caller's side of the drain barrier: execute queued tasks until
    /// this scope's pending count hits zero, sleeping only when every
    /// queue is empty (remaining tasks are running on workers, whose
    /// completions signal `done`).
    fn help_until_done(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = self.shared.find_job() {
                job();
                continue;
            }
            let guard = state.sync.lock().expect("scope sync poisoned");
            // Re-check under the lock: `complete` notifies while holding
            // it, so a final completion cannot slip between this check
            // and the wait.
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let _unused = state.done.wait(guard).expect("scope sync poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for h in self.workers.drain(..) {
            let _join = h.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("size", &self.size)
            .finish()
    }
}

/// Completion tracking for one [`ThreadPool::scope`] call.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    sync: Mutex<()>,
    done: Condvar,
    /// First panic payload raised by a task, re-thrown from `scope`.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn complete(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.sync.lock().expect("scope sync poisoned");
            self.done.notify_all();
        }
    }
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`]. Tasks may
/// themselves spawn further tasks on the same scope (task DAGs), and may
/// borrow anything that outlives `'scope`.
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    state: Arc<ScopeState>,
    /// Invariant over `'scope`, the `std::thread::scope` discipline.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task on the pool. The task receives the scope handle so
    /// it can spawn subtasks; it is guaranteed to have run to completion
    /// (or panicked) before the enclosing `scope` call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let shared = Arc::clone(&self.shared);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                shared,
                state,
                _marker: PhantomData,
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                scope.state.record_panic(payload);
            }
            scope.state.complete();
        });
        // SAFETY: the job's captures only need to live for `'scope`, but
        // the queues require `'static`. `ThreadPool::scope` blocks (in
        // `help_until_done`, reached on both the success and the panic
        // path of `op`) until `pending` reaches zero, i.e. until this job
        // has finished running, before control can return to the caller
        // and invalidate any `'scope` borrow. This is the same join-
        // before-return argument that underpins `std::thread::scope`.
        #[allow(unsafe_code)]
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.shared.push_job(job);
    }
}

/// The body run by each worker thread: scan, run, or park.
fn worker_loop(shared: Arc<PoolShared>, deque: Worker<Job>) {
    CURRENT_WORKER.with(|c| *c.borrow_mut() = Some((shared.id, deque)));
    loop {
        // Read the stamp *before* scanning: if a push lands mid-scan the
        // stamp moves and the park below falls through to a rescan.
        let seen = shared.state.lock().expect("pool state poisoned").stamp;
        if let Some(job) = shared.find_job() {
            job();
            continue;
        }
        let mut st = shared.state.lock().expect("pool state poisoned");
        loop {
            if st.shutdown {
                return;
            }
            if st.stamp != seen {
                break;
            }
            shared.parks.fetch_add(1, Ordering::Relaxed);
            st = shared.work_available.wait(st).expect("pool state poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn inline_pool_runs_everything_on_caller() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.size(), 1);
        let caller = std::thread::current().id();
        let mut ran_on = None;
        pool.scope(|s| {
            s.spawn(|_| {}); // warm the queue so the helper loop runs
        });
        pool.scope(|s| {
            let slot = &mut ran_on;
            s.spawn(move |_| *slot = Some(std::thread::current().id()));
        });
        assert_eq!(ran_on, Some(caller));
    }

    #[test]
    fn scope_tasks_borrow_disjoint_chunks() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u32; 64];
        pool.scope(|s| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i as u32 + 1;
                    }
                });
            }
        });
        for (i, chunk) in data.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&v| v == i as u32 + 1));
        }
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let pool = ThreadPool::new(4);
        let count = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..4 {
                        s.spawn(|_| {
                            count.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 8 + 8 * 4);
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|_| panic!("boom from task"));
                s.spawn(|_| {}); // a healthy sibling still completes
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom from task");
        // The pool survives a panicked scope.
        let ok = AtomicU32::new(0);
        pool.scope(|s| {
            s.spawn(|_| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_observe_scheduling_events() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.stats(), PoolStats::default(), "idle pool is silent");
        pool.scope(|s| {
            for _ in 0..16 {
                s.spawn(|_| {});
            }
        });
        let st = pool.stats();
        // The inline pool's caller takes every job from the injector.
        assert_eq!(st.steals, 16);
        assert_eq!(st.wakes, 16);
        assert_eq!(st.parks, 0, "a size-1 pool has no workers to park");

        let pooled = ThreadPool::new(3);
        pooled.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    std::thread::yield_now();
                });
            }
        });
        let st = pooled.stats();
        assert!(st.wakes >= 32);
        assert!(st.steals >= 1, "someone must have stolen from the injector");
    }

    #[test]
    fn sequential_scopes_reuse_parked_workers() {
        let pool = ThreadPool::new(3);
        for round in 0..50u32 {
            let count = AtomicU32::new(0);
            pool.scope(|s| {
                for _ in 0..round % 7 {
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), round % 7);
        }
    }
}
