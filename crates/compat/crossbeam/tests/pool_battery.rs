//! The pool concurrency battery: property tests over the work-stealing
//! thread pool's load-bearing guarantees.
//!
//! Each property is sampled across task counts, pool sizes, and seeded
//! workload shapes (the proptest shim derives its RNG from the test
//! name, so every run replays the same schedules *modulo* OS thread
//! interleaving — which is exactly the nondeterminism under test):
//!
//! * **exactly-once** — N tasks across M workers each run once: none
//!   lost to a lost wakeup, none duplicated by a racing steal;
//! * **stealing preserves the multiset** — concurrent thieves draining
//!   a worker's deque see every item exactly once between them;
//! * **panic propagation** — a panicking scoped task reaches the scope
//!   caller as a panic (never a deadlock), and the pool stays usable;
//! * **DAG stress** — seeded random task graphs where tasks spawn
//!   subtasks mid-flight still complete exactly once per node.
//!
//! Iteration counts are bounded so the battery stays CI-friendly (it
//! also runs in the dedicated pool-stress CI lane in release mode).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::deque::{Steal, Worker};
use crossbeam::pool::ThreadPool;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_task_runs_exactly_once(tasks in 1usize..200, size in 1usize..6) {
        let pool = ThreadPool::new(size);
        let counts: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            for c in &counts {
                s.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "task {} ran a wrong number of times", i);
        }
    }

    #[test]
    fn stealing_never_loses_or_duplicates(items in 1usize..500, thieves in 1usize..5) {
        // Raw deque level: one owner pushes, many thieves drain; the
        // union of what everyone saw must be the pushed multiset.
        let owner = Worker::new_lifo();
        for i in 0..items {
            owner.push(i);
        }
        let seen = Mutex::new(vec![0usize; items]);
        std::thread::scope(|scope| {
            for _ in 0..thieves {
                let stealer = owner.stealer();
                let seen = &seen;
                scope.spawn(move || loop {
                    match stealer.steal() {
                        Steal::Success(v) => seen.lock().unwrap()[v] += 1,
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
            // The owner drains its own end concurrently.
            while let Some(v) = owner.pop() {
                seen.lock().unwrap()[v] += 1;
            }
        });
        let seen = seen.into_inner().unwrap();
        for (i, &n) in seen.iter().enumerate() {
            prop_assert_eq!(n, 1, "item {} seen {} times", i, n);
        }
    }

    #[test]
    fn seeded_dag_stress_completes_every_node(
        size in 1usize..5,
        roots in 1usize..12,
        fanout in 0usize..4,
        depth in 1usize..4,
    ) {
        // A task tree: every node spawns `fanout` children until `depth`
        // runs out, from inside running tasks — the path that exercises
        // worker-local pushes, stealing between workers, and the scope's
        // pending count racing task completion.
        fn nodes(fanout: usize, depth: usize) -> usize {
            if depth == 0 {
                1
            } else {
                1 + fanout * nodes(fanout, depth - 1)
            }
        }
        let expected = roots * nodes(fanout, depth);
        let pool = ThreadPool::new(size);
        let ran = AtomicUsize::new(0);
        pool.scope(|s| {
            fn grow<'scope>(
                s: &crossbeam::pool::Scope<'scope>,
                ran: &'scope AtomicUsize,
                fanout: usize,
                depth: usize,
            ) {
                ran.fetch_add(1, Ordering::Relaxed);
                if depth == 0 {
                    return;
                }
                for _ in 0..fanout {
                    s.spawn(move |s| grow(s, ran, fanout, depth - 1));
                }
            }
            for _ in 0..roots {
                let ran = &ran;
                s.spawn(move |s| grow(s, ran, fanout, depth));
            }
        });
        prop_assert_eq!(ran.load(Ordering::Relaxed), expected);
    }
}

#[test]
fn scoped_panic_propagates_instead_of_deadlocking() {
    let pool = ThreadPool::new(3);
    for round in 0..20 {
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let survivors = &survivors;
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("injected task failure");
                        }
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "round {round}: panic was swallowed");
        // Non-panicking siblings still ran (the scope drains, it does
        // not abort), and the pool survives for the next round.
        assert_eq!(survivors.load(Ordering::Relaxed), 7, "round {round}");
    }
    // The pool is still functional after 20 panicked scopes.
    let ok = AtomicUsize::new(0);
    pool.scope(|s| {
        for _ in 0..16 {
            let ok = &ok;
            s.spawn(move |_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(ok.load(Ordering::Relaxed), 16);
}

#[test]
fn panic_in_scope_body_beats_task_panics() {
    // When both the scope closure and a task panic, the closure's panic
    // is the one re-raised (tasks still drain first).
    let pool = ThreadPool::new(2);
    let err = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|_| panic!("task panic"));
            panic!("scope body panic");
        });
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or_else(|| err.downcast_ref::<String>().map_or("?", String::as_str));
    assert_eq!(msg, "scope body panic");
}

#[test]
fn heavy_interleaved_scopes_do_not_lose_tasks() {
    // Bounded stress: many back-to-back scopes on one pool, alternating
    // burst sizes, to shake out lost-wakeup bugs in the park/unpark
    // protocol (a hang here is the failure mode, caught by CI timeouts).
    let pool = ThreadPool::new(4);
    let total = AtomicUsize::new(0);
    let mut expected = 0usize;
    for round in 0..200 {
        let burst = 1 + (round * 7) % 23;
        expected += burst;
        pool.scope(|s| {
            for _ in 0..burst {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }
    assert_eq!(total.load(Ordering::Relaxed), expected);
}
