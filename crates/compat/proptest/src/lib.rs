//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*` macros, and the
//! strategy combinators (numeric ranges, tuples, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], and
//! [`strategy::Strategy::prop_map`]).
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic sampling.** Each test function derives its RNG seed
//!   from its own module path and name, so failures reproduce exactly on
//!   every run — there is no persistence file and no `PROPTEST_*`
//!   environment handling.
//! * **No shrinking.** A failing case panics with the sampled values via
//!   the standard assertion message; it is not minimized.
//! * **Panic-based assertions.** `prop_assert!` maps to `assert!`, so a
//!   failure aborts the test immediately instead of being routed through
//!   a `TestCaseError`.

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 RNG; seeded from the test's name so every
    /// run of a given property sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a seed from `name` (FNV-1a over the bytes).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty sampling range");
            // Multiply-shift bounded sampling; bias is negligible for the
            // small ranges property tests use.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of an associated type.
    ///
    /// Unlike the real proptest `Strategy` (which builds shrinkable value
    /// trees), this shim's strategies sample a plain value directly.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`any`] entry point and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Samples an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64() as f32
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A length specification for [`fn@vec`]: an exact `usize` or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy returned by [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Accepts the same surface syntax as the real `proptest!`: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bind each strategy once, then sample per case (shadowing the
            // strategy binding inside the loop body's scope).
            $(let $arg = $strat;)*
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut __rng);)*
                // The closure gives `prop_assume!` an early-exit `return`
                // that skips only this case.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
