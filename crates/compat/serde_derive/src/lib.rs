//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real derives generate `Serialize`/`Deserialize` trait
//! implementations. The shim `serde` crate (see `crates/compat/serde`)
//! provides blanket implementations of both traits instead, so these
//! derives only need to *accept* the same syntax — including
//! `#[serde(...)]` helper attributes — and emit nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
