//! Offline stand-in for the `serde_derive` proc-macro crate — generating
//! **real** field-by-field implementations.
//!
//! The crates.io `serde_derive` leans on `syn`/`quote`; neither is
//! available offline, so this implementation parses the derive input
//! directly from the [`proc_macro`] token tree and emits generated code as
//! source text (parsed back into a `TokenStream` at the end). It supports
//! the shapes the workspace actually derives:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 serializes transparently as the inner value,
//!   like real serde's newtype structs; higher arities as sequences),
//! * unit structs,
//! * enums with any mix of unit, newtype, tuple, and struct variants
//!   (externally tagged, real serde's default representation).
//!
//! Unsupported, by design: generic types, `#[serde(...)]` attributes
//! (accepted and ignored so existing annotations keep compiling), unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field layout of a struct or one enum variant.
enum Fields {
    /// `struct X;` or a dataless variant.
    Unit,
    /// `{ a: T, b: U }` — names in declaration order.
    Named(Vec<String>),
    /// `( T, U )` — field count.
    Tuple(usize),
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::Struct { name, .. } | Item::Enum { name, .. } => name,
        }
    }
}

/// Real stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_serialize(&item);
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Real stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = gen_deserialize(&item);
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

/// Skips outer attributes (`#[...]`) starting at `i`, returning the index
/// of the first non-attribute token.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skips type tokens until a top-level `,` (consumed) or the end, tracking
/// generic-angle-bracket depth (`Vec<u64>` keeps its inner tokens at the
/// same token-tree level).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if angle_depth > 0 => angle_depth -= 1,
                ',' if angle_depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `name: Type, ...` field lists (struct bodies and struct
/// variants).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        i = skip_type(&tokens, i);
    }
    fields
}

/// Counts the fields of a tuple body (`(T, U, ...)`).
fn parse_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(parse_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip to (and past) the separating comma; tolerates explicit
        // discriminants even though none exist in the workspace.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Parses the whole derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let kind = loop {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break "struct",
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break "enum",
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found in derive input"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body, got {other:?}"),
        }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive: expected struct body, got {other:?}"),
        };
        Item::Struct { name, fields }
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

/// Header line shared by every generated impl: keeps clippy and dead-code
/// lints away from machine-written code.
const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::Struct { fields, .. } => gen_serialize_struct_body(name, fields),
        Item::Enum { variants, .. } => gen_serialize_enum_body(name, variants),
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Fields::Tuple(1) => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_seq(__serializer, \
                 ::core::option::Option::Some({n}usize))?;\n"
            );
            for i in 0..*n {
                out.push_str(&format!(
                    "::serde::ser::SerializeSeq::serialize_element(&mut __state, &self.{i})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeSeq::end(__state)");
            out
        }
        Fields::Named(names) => {
            let n = names.len();
            let mut out = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \
                 \"{name}\", {n}usize)?;\n"
            );
            for f in names {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)");
            out
        }
    }
}

fn gen_serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (index, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                 __serializer, \"{name}\", {index}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__field0) => ::serde::Serializer::serialize_newtype_variant(\
                 __serializer, \"{name}\", {index}u32, \"{vname}\", __field0),\n"
            )),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("__field{i}")).collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                     let mut __state = ::serde::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {index}u32, \"{vname}\", {n}usize)?;\n",
                    binders.join(", ")
                );
                for b in &binders {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(names) => {
                let n = names.len();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                     let mut __state = ::serde::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {index}u32, \"{vname}\", {n}usize)?;\n",
                    names.join(", ")
                );
                for f in names {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(__state)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    if variants.is_empty() {
        // An empty enum has no values; the match is vacuously exhaustive.
        "match *self {}".to_string()
    } else {
        format!("match self {{\n{arms}}}")
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = item.name();
    let body = match item {
        Item::Struct { fields, .. } => gen_deserialize_struct_body(name, fields),
        Item::Enum { variants, .. } => gen_deserialize_enum_body(name, variants),
    };
    format!(
        "{IMPL_ATTRS}impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// Generates the shared map-visiting skeleton used by named structs and
/// struct variants: declarations, the key-dispatch loop, and the final
/// construction of `ctor { field: ..., ... }`.
fn gen_visit_map_body(ctor: &str, names: &[String]) -> String {
    let mut decls = String::new();
    let mut arms = String::new();
    let mut builds = String::new();
    for (i, f) in names.iter().enumerate() {
        decls.push_str(&format!(
            "let mut __field{i} = ::core::option::Option::None;\n"
        ));
        arms.push_str(&format!(
            "\"{f}\" => {{\n\
             if __field{i}.is_some() {{\n\
             return ::core::result::Result::Err(::serde::de::Error::duplicate_field(\"{f}\"));\n\
             }}\n\
             __field{i} = ::core::option::Option::Some(\
             ::serde::de::MapAccess::next_value(&mut __map)?);\n}}\n"
        ));
        builds.push_str(&format!(
            "{f}: __field{i}.ok_or_else(|| ::serde::de::Error::missing_field(\"{f}\"))?,\n"
        ));
    }
    format!(
        "{decls}\
         while let ::core::option::Option::Some(__key) = \
         ::serde::de::MapAccess::next_key(&mut __map)? {{\n\
         match __key {{\n{arms}\
         _ => {{ ::serde::de::MapAccess::skip_value(&mut __map)?; }}\n\
         }}\n}}\n\
         ::core::result::Result::Ok({ctor} {{\n{builds}}})"
    )
}

/// Generates the shared seq-visiting body used by multi-field tuple
/// structs and tuple variants: `ctor(e0, e1, ...)`.
fn gen_visit_seq_body(ctor: &str, n: usize, what: &str) -> String {
    let mut out = String::new();
    for i in 0..n {
        out.push_str(&format!(
            "let __field{i} = ::serde::de::SeqAccess::next_element(&mut __seq)?\
             .ok_or_else(|| ::serde::de::Error::invalid_length({i}usize, \"{what}\"))?;\n"
        ));
    }
    let binders: Vec<String> = (0..n).map(|i| format!("__field{i}")).collect();
    out.push_str(&format!(
        "::core::result::Result::Ok({ctor}({}))",
        binders.join(", ")
    ));
    out
}

fn quoted_list(names: &[String]) -> String {
    names
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "struct __Visitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
             type Value = {name};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
             __f.write_str(\"unit struct {name}\")\n}}\n\
             fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<{name}, __E> {{\n\
             ::core::result::Result::Ok({name})\n}}\n\
             }}\n\
             ::serde::Deserializer::deserialize_unit(__deserializer, __Visitor)"
        ),
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__deserializer)?))"
        ),
        Fields::Tuple(n) => {
            let seq_body = gen_visit_seq_body(name, *n, &format!("tuple struct {name}"));
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"tuple struct {name}\")\n}}\n\
                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                 -> ::core::result::Result<{name}, __A::Error> {{\n{seq_body}\n}}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_seq(__deserializer, __Visitor)"
            )
        }
        Fields::Named(names) => {
            let map_body = gen_visit_map_body(name, names);
            let field_list = quoted_list(names);
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                 type Value = {name};\n\
                 fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str(\"struct {name}\")\n}}\n\
                 fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A)\n\
                 -> ::core::result::Result<{name}, __A::Error> {{\n{map_body}\n}}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{field_list}], __Visitor)"
            )
        }
    }
}

fn gen_deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let variant_list = quoted_list(&variants.iter().map(|v| v.name.clone()).collect::<Vec<_>>());
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "\"{vname}\" => {{\n\
                 ::serde::de::VariantAccess::unit_variant(__variant_access)?;\n\
                 ::core::result::Result::Ok({name}::{vname})\n}}\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                 ::serde::de::VariantAccess::newtype_variant(__variant_access)?)),\n"
            )),
            Fields::Tuple(n) => {
                let seq_body = gen_visit_seq_body(
                    &format!("{name}::{vname}"),
                    *n,
                    &format!("variant {vname}"),
                );
                arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     struct __VariantVisitor;\n\
                     impl<'de> ::serde::de::Visitor<'de> for __VariantVisitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"tuple variant {name}::{vname}\")\n}}\n\
                     fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A2)\n\
                     -> ::core::result::Result<{name}, __A2::Error> {{\n{seq_body}\n}}\n\
                     }}\n\
                     ::serde::de::VariantAccess::tuple_variant(__variant_access, {n}usize, __VariantVisitor)\n\
                     }}\n"
                ));
            }
            Fields::Named(names) => {
                let map_body = gen_visit_map_body(&format!("{name}::{vname}"), names);
                let field_list = quoted_list(names);
                arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     struct __VariantVisitor;\n\
                     impl<'de> ::serde::de::Visitor<'de> for __VariantVisitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                     __f.write_str(\"struct variant {name}::{vname}\")\n}}\n\
                     fn visit_map<__A2: ::serde::de::MapAccess<'de>>(self, mut __map: __A2)\n\
                     -> ::core::result::Result<{name}, __A2::Error> {{\n{map_body}\n}}\n\
                     }}\n\
                     ::serde::de::VariantAccess::struct_variant(\
                     __variant_access, &[{field_list}], __VariantVisitor)\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "struct __Visitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
         type Value = {name};\n\
         fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
         __f.write_str(\"enum {name}\")\n}}\n\
         fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __access: __A)\n\
         -> ::core::result::Result<{name}, __A::Error> {{\n\
         let (__variant_name, __variant_access) = ::serde::de::EnumAccess::variant(__access)?;\n\
         match __variant_name {{\n{arms}\
         _ => ::core::result::Result::Err(::serde::de::Error::unknown_variant(\
         __variant_name, &[{variant_list}])),\n\
         }}\n}}\n\
         }}\n\
         ::serde::Deserializer::deserialize_enum(\
         __deserializer, \"{name}\", &[{variant_list}], __Visitor)"
    )
}
