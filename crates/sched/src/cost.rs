//! Block-level timing primitives: the single source of truth mapping a
//! [`BlockDescriptor`] and a per-device batch size to simulated durations.
//!
//! Both the strategy lowering (crate `pipebd-core`) and the AHD plan
//! estimator query this model, so the schedule the search picks is the
//! schedule the simulator rewards — mirroring how the real Pipe-BD profiles
//! the actual devices it will run on.

use pipebd_models::BlockDescriptor;
use pipebd_sim::{GpuModel, SimTime};

/// Timing model for block executions on one GPU type.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// The GPU all durations are computed for.
    pub gpu: GpuModel,
}

impl CostModel {
    /// Creates a cost model for a GPU.
    pub fn new(gpu: GpuModel) -> Self {
        CostModel { gpu }
    }

    /// Teacher-side parallelism: mean live elements per sample per layer.
    fn teacher_parallelism(desc: &BlockDescriptor) -> u64 {
        desc.teacher_act_elems / desc.teacher_kernels.max(1) as u64
    }

    /// Student-side parallelism: mean live elements per sample per layer.
    fn student_parallelism(desc: &BlockDescriptor) -> u64 {
        desc.student_act_elems / desc.student_kernels.max(1) as u64
    }

    /// Teacher forward duration for one block at a per-device batch.
    pub fn teacher_time(&self, desc: &BlockDescriptor, batch: usize) -> SimTime {
        let macs = desc.teacher_macs * batch as u64;
        let bytes = 4
            * (batch as u64 * (desc.in_shape.elems() + desc.teacher_act_elems)
                + desc.teacher_params);
        self.gpu.exec_time(
            macs,
            bytes,
            Self::teacher_parallelism(desc),
            batch,
            desc.teacher_kernels,
        )
    }

    /// Student forward + backward duration for one block at a per-device
    /// batch (backward ≈ 2× forward, hence the factor 3).
    pub fn student_time(&self, desc: &BlockDescriptor, batch: usize) -> SimTime {
        let macs = 3 * desc.student_macs * batch as u64;
        let bytes = 4
            * (3 * batch as u64 * (desc.in_shape.elems() + desc.student_act_elems)
                + 3 * desc.student_params);
        self.gpu.exec_time(
            macs,
            bytes,
            Self::student_parallelism(desc),
            batch,
            3 * desc.student_kernels,
        )
    }

    /// Optimizer update duration for one block (memory-bound sweep over
    /// parameters, gradients, and momentum).
    pub fn update_time(&self, desc: &BlockDescriptor) -> SimTime {
        let bytes = desc.student_state_bytes();
        SimTime::from_secs_f64(bytes as f64 / self.gpu.mem_bw) + self.gpu.launch_overhead
    }

    /// Teacher time summed over several blocks.
    pub fn teacher_time_blocks(&self, blocks: &[BlockDescriptor], batch: usize) -> SimTime {
        blocks.iter().map(|b| self.teacher_time(b, batch)).sum()
    }

    /// Student time summed over several blocks.
    pub fn student_time_blocks(&self, blocks: &[BlockDescriptor], batch: usize) -> SimTime {
        blocks.iter().map(|b| self.student_time(b, batch)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;

    fn model() -> CostModel {
        CostModel::new(GpuModel::a6000())
    }

    #[test]
    fn student_costs_more_than_teacher() {
        let w = Workload::nas_cifar10();
        let cm = model();
        for b in &w.model.blocks {
            assert!(
                cm.student_time(b, 256) > cm.teacher_time(b, 256),
                "supernet student (all candidates, fwd+bwd) must dominate"
            );
        }
    }

    #[test]
    fn batch_scaling_is_sublinear() {
        let w = Workload::nas_cifar10();
        let cm = model();
        let b = &w.model.blocks[3];
        let t64 = cm.teacher_time(b, 64).as_secs_f64();
        let t256 = cm.teacher_time(b, 256).as_secs_f64();
        assert!(t256 < 4.0 * t64, "4x batch must cost < 4x time");
        assert!(t256 > t64, "more batch is still more time");
    }

    #[test]
    fn update_time_scales_with_params() {
        let w = Workload::compression_imagenet();
        let cm = model();
        let small = cm.update_time(&w.model.blocks[0]);
        let big = cm.update_time(&w.model.blocks[12]); // classifier block
        assert!(big > small);
    }

    #[test]
    fn blocks_sum_matches_parts() {
        let w = Workload::nas_cifar10();
        let cm = model();
        let all: SimTime = cm.teacher_time_blocks(&w.model.blocks, 128);
        let parts: SimTime = w.model.blocks.iter().map(|b| cm.teacher_time(b, 128)).sum();
        assert_eq!(all, parts);
    }

    #[test]
    fn imagenet_block0_pair_dominates_on_time() {
        // The Fig. 5 premise, now at the *time* level: teacher+student time
        // of block 0 exceeds every other block's at full batch.
        let w = Workload::nas_imagenet();
        let cm = model();
        let pair_time = |i: usize| {
            cm.teacher_time(&w.model.blocks[i], 256) + cm.student_time(&w.model.blocks[i], 256)
        };
        let b0 = pair_time(0);
        for i in 1..w.num_blocks() {
            assert!(
                pair_time(i) < b0,
                "block {i} should be lighter than block 0"
            );
        }
    }
}
