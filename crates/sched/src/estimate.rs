//! Analytic steady-state period estimation for stage plans — and for the
//! baseline schedules the paper compares against.
//!
//! With decoupled parameter update, a relayed pipeline settles into a
//! steady state whose step period is the *maximum stage time* — each device
//! repeats its own work back-to-back once the pipeline is full. The AHD
//! search minimizes this estimate; the simulator then validates it (the
//! test suite cross-checks estimate vs. simulated period).
//!
//! The conformance plane (`crates/testkit`) widens that cross-check to the
//! whole strategy matrix, so this module also carries analytic predictions
//! for the schedules `estimate_period` does not cover:
//!
//! * [`barrier_period`] — plain teacher relaying (per-round barrier before
//!   updates, Fig. 3b);
//! * [`dp_phase_period`] — the block-by-block data-parallel baseline
//!   (Fig. 3a), per phase;
//! * [`ls_round_period`] — the layerwise bin-packing baseline;
//! * [`fill_time`] — the pipeline fill latency of a plan (how long the
//!   first batch takes to reach the last stage);
//! * [`bottleneck_stage`] — which stage the estimator predicts as the
//!   steady-state bottleneck, with its confidence margin.
//!
//! Every prediction here is checked against the event-level simulator per
//! scenario, with a per-strategy relative-error budget (see
//! `pipebd_testkit::ToleranceBook`).

use pipebd_models::Workload;
use pipebd_sim::{HardwareConfig, SimTime};

use crate::ls::LsAssignment;
use crate::plan::{Stage, StagePlan};
use crate::profile::ProfileTable;

/// Steady-state time of one stage for one pipeline step.
pub fn stage_time(
    stage: &Stage,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    let db = stage.device_batch(global_batch);
    let mut t = SimTime::ZERO;
    for b in stage.blocks() {
        t += table.teacher_time(b, db);
        t += table.student_time(b, db);
        t += table.update_time(b);
    }
    // Data-parallel gradient sharing inside a widened stage.
    if stage.width() > 1 {
        let grad_bytes: u64 = stage
            .blocks()
            .map(|b| 4 * workload.model.blocks[b].student_params)
            .sum();
        t += hw.pcie.allreduce_time(grad_bytes, stage.width());
    }
    // The first stage also pays the consumer-side load cost (collate +
    // host-to-device copy); decode runs on the shared pool, overlapped.
    if stage.first_block == 0 {
        let bytes = db as u64 * workload.dataset.sample_bytes();
        t += hw.host.consume_time(db, bytes, &hw.pcie);
    }
    t
}

/// Estimated steady-state step period of a plan: the maximum stage time.
pub fn estimate_period(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    plan.stages
        .iter()
        .map(|s| stage_time(s, table, workload, hw, global_batch))
        .max()
        .unwrap_or(SimTime::ZERO)
}

/// Per-stage steady-state times of a plan, in stage order (the vector
/// [`estimate_period`] takes the maximum of).
pub fn stage_times(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> Vec<SimTime> {
    plan.stages
        .iter()
        .map(|s| stage_time(s, table, workload, hw, global_batch))
        .collect()
}

/// The stage the estimator predicts as the steady-state bottleneck.
///
/// Returns `(stage_index, margin)` where `margin` is the ratio of the
/// bottleneck stage's time to the second-heaviest stage's (`1.0` when the
/// plan has a single stage or an exact tie). Conformance checks only
/// assert the simulator agrees when the margin is clearly above 1 — near
/// ties legitimately resolve either way under event-level effects the
/// estimator ignores.
pub fn bottleneck_stage(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> (usize, f64) {
    let times = stage_times(plan, table, workload, hw, global_batch);
    let mut order: Vec<usize> = (0..times.len()).collect();
    order.sort_by(|&a, &b| times[b].cmp(&times[a]));
    let top = order[0];
    let margin = match order.get(1) {
        Some(&second) if times[second] > SimTime::ZERO => {
            times[top].as_secs_f64() / times[second].as_secs_f64()
        }
        _ => 1.0,
    };
    (top, margin)
}

/// Teacher-chain time of a stage at its device batch.
fn teacher_chain(stage: &Stage, table: &ProfileTable, db: usize) -> SimTime {
    stage.blocks().map(|b| table.teacher_time(b, db)).sum()
}

/// Student-chain time of a stage at its device batch.
fn student_chain(stage: &Stage, table: &ProfileTable, db: usize) -> SimTime {
    stage.blocks().map(|b| table.student_time(b, db)).sum()
}

/// Update-chain time of a stage (batch-independent).
fn update_chain(stage: &Stage, table: &ProfileTable) -> SimTime {
    stage.blocks().map(|b| table.update_time(b)).sum()
}

/// Gradient all-reduce time of a widened stage (zero for width 1).
fn stage_allreduce(stage: &Stage, workload: &Workload, hw: &HardwareConfig) -> SimTime {
    if stage.width() <= 1 {
        return SimTime::ZERO;
    }
    let grad_bytes: u64 = stage
        .blocks()
        .map(|b| 4 * workload.model.blocks[b].student_params)
        .sum();
    hw.pcie.allreduce_time(grad_bytes, stage.width())
}

/// Consumer-side batch cost of stage 0 (collate + host-to-device copy).
fn stage0_consume(
    plan: &StagePlan,
    workload: &Workload,
    hw: &HardwareConfig,
    batch: usize,
) -> SimTime {
    let db = plan.stages[0].device_batch(batch);
    let bytes = db as u64 * workload.dataset.sample_bytes();
    hw.host.consume_time(db, bytes, &hw.pcie)
}

/// Relay transfer time for the boundary activation leaving `stage`.
fn relay_time(stage: &Stage, workload: &Workload, hw: &HardwareConfig, batch: usize) -> SimTime {
    let last_block = stage.first_block + stage.num_blocks - 1;
    let bytes =
        workload.model.blocks[last_block].boundary_bytes() * stage.device_batch(batch) as u64;
    hw.pcie.transfer_time(bytes)
}

/// Shared-loader-pool lower bound on the round period: every consumer's
/// batch is decoded on one FIFO worker pool, so the pool's service time per
/// round caps throughput no matter how the GPUs overlap.
fn loader_bound(
    consumers: usize,
    samples_each: usize,
    workload: &Workload,
    hw: &HardwareConfig,
) -> SimTime {
    let one = hw
        .host
        .decode_time(samples_each, workload.dataset.decode_us_per_sample);
    SimTime::from_ns(one.as_ns() * consumers as u64)
}

/// Analytic steady-state round period of a plan run **with a per-round
/// barrier** (plain teacher relaying, Fig. 3b — no decoupled updates).
///
/// With a barrier, rounds cannot overlap: every stage's next-round input
/// waits on *all* updates of the previous round, so the period is the
/// critical path of one full round instead of the maximum stage time. The
/// path mirrors the lowering in `pipebd_core::lower::relay`:
///
/// 1. stage 0 consumes its batch, each stage's teacher chain starts when
///    the previous stage's boundary send arrives;
/// 2. students chain after their stage's teachers; widened stages add a
///    gradient all-reduce;
/// 3. updates start once every student of the round finished (the
///    barrier), then chain per device;
/// 4. the shared loader pool bounds the round from below.
pub fn barrier_period(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    let mut arrival = stage0_consume(plan, workload, hw, global_batch);
    let mut students_done = Vec::with_capacity(plan.stages.len());
    let mut shares = Vec::with_capacity(plan.stages.len());
    for (i, stage) in plan.stages.iter().enumerate() {
        let db = stage.device_batch(global_batch);
        let teach = teacher_chain(stage, table, db);
        students_done.push(arrival + teach + student_chain(stage, table, db));
        shares.push(stage_allreduce(stage, workload, hw));
        if i + 1 < plan.stages.len() {
            arrival = arrival + teach + relay_time(stage, workload, hw, global_batch);
        }
    }
    let all_students = *students_done.iter().max().expect("plans are nonempty");
    let period = plan
        .stages
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            let updates_start = (students_done[i] + shares[i]).max(all_students);
            updates_start + update_chain(stage, table)
        })
        .max()
        .expect("plans are nonempty");
    let consumers = plan.stages[0].width();
    let db0 = plan.stages[0].device_batch(global_batch);
    period.max(loader_bound(consumers, db0, workload, hw))
}

/// Analytic steady-state round period of the data-parallel baseline
/// (Fig. 3a) during phase `phase` on `ranks` devices.
///
/// Every device repeats, back to back: consume its batch shard, run the
/// redundant teacher prefix `0..=phase`, run student `phase`, all-reduce
/// its gradients, update. Decode overlaps through prefetching, so the
/// shared loader pool only binds when its service time exceeds the compute
/// chain.
///
/// `table` must have been profiled for at least `ranks` devices at this
/// global batch (the shard size must be a profiled batch).
pub fn dp_phase_period(
    phase: usize,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
    ranks: usize,
) -> SimTime {
    let shard = global_batch.div_ceil(ranks);
    let bytes = shard as u64 * workload.dataset.sample_bytes();
    let prefix: SimTime = (0..=phase).map(|b| table.teacher_time(b, shard)).sum();
    let grad_bytes = 4 * workload.model.blocks[phase].student_params;
    let compute = hw.host.consume_time(shard, bytes, &hw.pcie)
        + prefix
        + table.student_time(phase, shard)
        + hw.pcie.allreduce_time(grad_bytes, ranks)
        + table.update_time(phase);
    compute.max(loader_bound(ranks, shard, workload, hw))
}

/// Analytic epoch-equivalent DP makespan: `rounds` rounds of every phase,
/// each at that phase's steady-state period. More ranks must never
/// increase this prediction in the paper's operating regime (the
/// monotonicity property the conformance proptests pin).
pub fn dp_makespan(
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
    ranks: usize,
    rounds: u32,
) -> SimTime {
    let total: SimTime = (0..workload.num_blocks())
        .map(|phase| {
            let p = dp_phase_period(phase, table, workload, hw, global_batch, ranks);
            SimTime::from_ns(p.as_ns() * u64::from(rounds))
        })
        .sum();
    total
}

/// Analytic steady-state round period of the layerwise-scheduling
/// baseline: each device runs its packed block tasks sequentially at the
/// full batch (teacher prefix re-runs per task), devices are independent,
/// and the shared loader pool serves one full batch per active device per
/// round.
pub fn ls_round_period(
    assignment: &LsAssignment,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    let bytes = global_batch as u64 * workload.dataset.sample_bytes();
    let consume = hw.host.consume_time(global_batch, bytes, &hw.pcie);
    let mut active = 0usize;
    let mut worst = SimTime::ZERO;
    for blocks in &assignment.device_blocks {
        if blocks.is_empty() {
            continue;
        }
        active += 1;
        let mut t = consume;
        for &b in blocks {
            let prefix: SimTime = (0..=b).map(|k| table.teacher_time(k, global_batch)).sum();
            t += prefix + table.student_time(b, global_batch) + table.update_time(b);
        }
        worst = worst.max(t);
    }
    worst.max(loader_bound(active, global_batch, workload, hw))
}

/// Pipeline fill latency of a plan: the time until the *last* stage
/// receives its first input (stage-0 consume, then each earlier stage's
/// teacher chain plus the relay hop). Grows strictly with pipeline depth —
/// every extra stage adds a relay hop and moves teacher work ahead of the
/// last stage — which is the second monotonicity property the conformance
/// proptests pin.
pub fn fill_time(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    let mut t = stage0_consume(plan, workload, hw, global_batch);
    for stage in &plan.stages[..plan.stages.len() - 1] {
        let db = stage.device_batch(global_batch);
        t = t + teacher_chain(stage, table, db) + relay_time(stage, workload, hw, global_batch);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::profile::Profiler;
    use pipebd_models::Workload;

    fn setup() -> (Workload, HardwareConfig, ProfileTable) {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        (w, hw, table)
    }

    #[test]
    fn period_is_max_stage_time() {
        let (w, hw, table) = setup();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let per_stage: Vec<SimTime> = plan
            .stages
            .iter()
            .map(|s| stage_time(s, &table, &w, &hw, 256))
            .collect();
        let period = estimate_period(&plan, &table, &w, &hw, 256);
        assert_eq!(period, per_stage.into_iter().max().unwrap());
    }

    #[test]
    fn widening_a_heavy_stage_reduces_its_time() {
        let (w, hw, table) = setup();
        let narrow = StagePlan::from_widths(&[(1, 1), (5, 3)], 6, 4).unwrap();
        let wide = StagePlan::from_widths(&[(1, 2), (5, 2)], 6, 4).unwrap();
        let t_narrow = stage_time(&narrow.stages[0], &table, &w, &hw, 256);
        let t_wide = stage_time(&wide.stages[0], &table, &w, &hw, 256);
        assert!(t_wide < t_narrow, "splitting the batch must shrink stage 0");
    }

    #[test]
    fn batch_split_is_not_free() {
        // Occupancy loss: two devices at batch/2 each do more total
        // device-time than one device at full batch.
        let (w, hw, table) = setup();
        let full = StagePlan::from_widths(&[(1, 1), (5, 3)], 6, 4).unwrap();
        let split = StagePlan::from_widths(&[(1, 2), (5, 2)], 6, 4).unwrap();
        let t_full = stage_time(&full.stages[0], &table, &w, &hw, 256);
        let t_split = stage_time(&split.stages[0], &table, &w, &hw, 256);
        assert!(
            t_split.as_secs_f64() > 0.5 * t_full.as_secs_f64(),
            "2-way split must not halve time (occupancy + allreduce overhead)"
        );
    }

    #[test]
    fn barrier_period_dominates_dpu_period() {
        // A per-round barrier serializes the relay chain; the barrier
        // period must exceed the DPU steady-state period (max stage time)
        // on any multi-stage plan.
        let (w, hw, table) = setup();
        for plan in [
            StagePlan::contiguous(6, 4).unwrap(),
            StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap(),
        ] {
            let dpu = estimate_period(&plan, &table, &w, &hw, 256);
            let barrier = barrier_period(&plan, &table, &w, &hw, 256);
            assert!(
                barrier > dpu,
                "{plan}: barrier {barrier} must exceed DPU {dpu}"
            );
        }
    }

    #[test]
    fn barrier_period_of_single_stage_includes_whole_round() {
        // One stage, one device: the barrier round is simply the full
        // serial chain (consume + teachers + students + updates).
        let (w, hw, table) = setup();
        let plan = StagePlan::from_widths(&[(6, 1)], 6, 1).unwrap();
        let stage = &plan.stages[0];
        let serial: SimTime = stage0_consume(&plan, &w, &hw, 256)
            + teacher_chain(stage, &table, 256)
            + student_chain(stage, &table, 256)
            + update_chain(stage, &table);
        assert_eq!(barrier_period(&plan, &table, &w, &hw, 256), serial);
    }

    #[test]
    fn bottleneck_stage_points_at_heaviest() {
        let (w, hw, table) = setup();
        let plan = StagePlan::from_widths(&[(1, 1), (5, 3)], 6, 4).unwrap();
        let times = stage_times(&plan, &table, &w, &hw, 256);
        let (idx, margin) = bottleneck_stage(&plan, &table, &w, &hw, 256);
        assert_eq!(times[idx], *times.iter().max().unwrap());
        assert!(margin >= 1.0);
    }

    #[test]
    fn dp_phase_period_grows_with_phase() {
        // The redundant teacher prefix lengthens every phase.
        let (w, hw, table) = setup();
        let mut prev = SimTime::ZERO;
        for phase in 0..w.num_blocks() {
            let p = dp_phase_period(phase, &table, &w, &hw, 256, 4);
            assert!(p > prev, "phase {phase} must be slower than phase-1");
            prev = p;
        }
    }

    #[test]
    fn dp_makespan_sums_phases() {
        let (w, hw, table) = setup();
        let per_phase: SimTime = (0..w.num_blocks())
            .map(|p| dp_phase_period(p, &table, &w, &hw, 256, 4))
            .sum();
        let m = dp_makespan(&table, &w, &hw, 256, 4, 3);
        assert_eq!(m.as_ns(), per_phase.as_ns() * 3);
    }

    #[test]
    fn ls_round_period_tracks_packing_makespan() {
        // The LS estimate adds loading on top of the packer's own
        // device-cost estimate, so it must be at least the packed makespan.
        let (w, hw, table) = setup();
        let assignment = crate::ls::pack(&w, &table, 4, 256);
        let period = ls_round_period(&assignment, &table, &w, &hw, 256);
        assert!(period >= assignment.makespan);
    }

    #[test]
    fn fill_time_grows_with_depth() {
        let (w, hw, table) = setup();
        let mut prev = SimTime::ZERO;
        for stages in 1..=4 {
            let plan = StagePlan::contiguous(6, stages).unwrap();
            let fill = fill_time(&plan, &table, &w, &hw, 256);
            assert!(
                fill > prev,
                "{stages}-stage fill {fill} must exceed shallower {prev}"
            );
            prev = fill;
        }
    }

    #[test]
    fn first_stage_pays_loading() {
        let (w, hw, table) = setup();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        // Rebuild stage 0 as if it were not first (first_block != 0) to
        // isolate the loading term.
        let mut ghost = plan.stages[0].clone();
        let with_load = stage_time(&ghost, &table, &w, &hw, 256);
        ghost.first_block = 1; // same blocks count, no loading
        let without_load_blocks: SimTime = ghost
            .blocks()
            .map(|b| table.teacher_time(b, 256) + table.student_time(b, 256) + table.update_time(b))
            .sum();
        assert!(with_load > without_load_blocks);
    }
}
