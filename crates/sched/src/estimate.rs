//! Analytic steady-state period estimation for stage plans.
//!
//! With decoupled parameter update, a relayed pipeline settles into a
//! steady state whose step period is the *maximum stage time* — each device
//! repeats its own work back-to-back once the pipeline is full. The AHD
//! search minimizes this estimate; the simulator then validates it (the
//! test suite cross-checks estimate vs. simulated period).

use pipebd_models::Workload;
use pipebd_sim::{HardwareConfig, SimTime};

use crate::plan::{Stage, StagePlan};
use crate::profile::ProfileTable;

/// Steady-state time of one stage for one pipeline step.
pub fn stage_time(
    stage: &Stage,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    let db = stage.device_batch(global_batch);
    let mut t = SimTime::ZERO;
    for b in stage.blocks() {
        t += table.teacher_time(b, db);
        t += table.student_time(b, db);
        t += table.update_time(b);
    }
    // Data-parallel gradient sharing inside a widened stage.
    if stage.width() > 1 {
        let grad_bytes: u64 = stage
            .blocks()
            .map(|b| 4 * workload.model.blocks[b].student_params)
            .sum();
        t += hw.pcie.allreduce_time(grad_bytes, stage.width());
    }
    // The first stage also pays the consumer-side load cost (collate +
    // host-to-device copy); decode runs on the shared pool, overlapped.
    if stage.first_block == 0 {
        let bytes = db as u64 * workload.dataset.sample_bytes();
        t += hw.host.consume_time(db, bytes, &hw.pcie);
    }
    t
}

/// Estimated steady-state step period of a plan: the maximum stage time.
pub fn estimate_period(
    plan: &StagePlan,
    table: &ProfileTable,
    workload: &Workload,
    hw: &HardwareConfig,
    global_batch: usize,
) -> SimTime {
    plan.stages
        .iter()
        .map(|s| stage_time(s, table, workload, hw, global_batch))
        .max()
        .unwrap_or(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::profile::Profiler;
    use pipebd_models::Workload;

    fn setup() -> (Workload, HardwareConfig, ProfileTable) {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        (w, hw, table)
    }

    #[test]
    fn period_is_max_stage_time() {
        let (w, hw, table) = setup();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let per_stage: Vec<SimTime> = plan
            .stages
            .iter()
            .map(|s| stage_time(s, &table, &w, &hw, 256))
            .collect();
        let period = estimate_period(&plan, &table, &w, &hw, 256);
        assert_eq!(period, per_stage.into_iter().max().unwrap());
    }

    #[test]
    fn widening_a_heavy_stage_reduces_its_time() {
        let (w, hw, table) = setup();
        let narrow = StagePlan::from_widths(&[(1, 1), (5, 3)], 6, 4).unwrap();
        let wide = StagePlan::from_widths(&[(1, 2), (5, 2)], 6, 4).unwrap();
        let t_narrow = stage_time(&narrow.stages[0], &table, &w, &hw, 256);
        let t_wide = stage_time(&wide.stages[0], &table, &w, &hw, 256);
        assert!(t_wide < t_narrow, "splitting the batch must shrink stage 0");
    }

    #[test]
    fn batch_split_is_not_free() {
        // Occupancy loss: two devices at batch/2 each do more total
        // device-time than one device at full batch.
        let (w, hw, table) = setup();
        let full = StagePlan::from_widths(&[(1, 1), (5, 3)], 6, 4).unwrap();
        let split = StagePlan::from_widths(&[(1, 2), (5, 2)], 6, 4).unwrap();
        let t_full = stage_time(&full.stages[0], &table, &w, &hw, 256);
        let t_split = stage_time(&split.stages[0], &table, &w, &hw, 256);
        assert!(
            t_split.as_secs_f64() > 0.5 * t_full.as_secs_f64(),
            "2-way split must not halve time (occupancy + allreduce overhead)"
        );
    }

    #[test]
    fn first_stage_pays_loading() {
        let (w, hw, table) = setup();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        // Rebuild stage 0 as if it were not first (first_block != 0) to
        // isolate the loading term.
        let mut ghost = plan.stages[0].clone();
        let with_load = stage_time(&ghost, &table, &w, &hw, 256);
        ghost.first_block = 1; // same blocks count, no loading
        let without_load_blocks: SimTime = ghost
            .blocks()
            .map(|b| table.teacher_time(b, 256) + table.student_time(b, 256) + table.update_time(b))
            .sum();
        assert!(with_load > without_load_blocks);
    }
}
