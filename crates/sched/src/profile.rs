//! The profiling pass that feeds the AHD search.
//!
//! The real Pipe-BD runs ~100 test steps of every block at every feasible
//! batch size before training, then searches schedules over the measured
//! times. Here "measurement" queries the [`CostModel`] (the same model the
//! simulator charges), optionally perturbed by deterministic measurement
//! noise so tests can exercise the search's robustness to imperfect
//! profiles.

use pipebd_models::BlockModel;
use pipebd_sim::SimTime;

use crate::cost::CostModel;

/// Profiled per-block execution times at a set of feasible batch sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileTable {
    batch_sizes: Vec<usize>,
    /// `teacher[block][batch_index]`.
    teacher: Vec<Vec<SimTime>>,
    /// `student[block][batch_index]` (forward + backward).
    student: Vec<Vec<SimTime>>,
    /// `update[block]`.
    update: Vec<SimTime>,
}

impl ProfileTable {
    /// Rebuilds a table from its parts (the artifact plane persists
    /// profiles and replays schedule searches from them).
    ///
    /// # Errors
    ///
    /// Returns a message when the rows are not rectangular over
    /// `batch_sizes` or the per-block vectors disagree on block count.
    pub fn from_parts(
        batch_sizes: Vec<usize>,
        teacher: Vec<Vec<SimTime>>,
        student: Vec<Vec<SimTime>>,
        update: Vec<SimTime>,
    ) -> Result<Self, String> {
        if teacher.len() != student.len() || teacher.len() != update.len() {
            return Err(format!(
                "block count mismatch: {} teacher, {} student, {} update rows",
                teacher.len(),
                student.len(),
                update.len()
            ));
        }
        for (i, row) in teacher.iter().chain(student.iter()).enumerate() {
            if row.len() != batch_sizes.len() {
                return Err(format!(
                    "row {i} has {} entries for {} batch sizes",
                    row.len(),
                    batch_sizes.len()
                ));
            }
        }
        Ok(ProfileTable {
            batch_sizes,
            teacher,
            student,
            update,
        })
    }

    /// The batch sizes the table was profiled at.
    pub fn batch_sizes(&self) -> &[usize] {
        &self.batch_sizes
    }

    /// Number of profiled blocks.
    pub fn num_blocks(&self) -> usize {
        self.teacher.len()
    }

    /// Teacher rows: `teacher_rows()[block][batch_index]`, aligned with
    /// [`ProfileTable::batch_sizes`].
    pub fn teacher_rows(&self) -> &[Vec<SimTime>] {
        &self.teacher
    }

    /// Student rows: `student_rows()[block][batch_index]`.
    pub fn student_rows(&self) -> &[Vec<SimTime>] {
        &self.student
    }

    /// Update times, one per block.
    pub fn update_row(&self) -> &[SimTime] {
        &self.update
    }

    /// Profiled teacher time for a block at a batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` was not profiled (the AHD search only queries
    /// feasible batches, which are exactly the profiled ones).
    pub fn teacher_time(&self, block: usize, batch: usize) -> SimTime {
        self.teacher[block][self.batch_index(batch)]
    }

    /// Profiled student time for a block at a batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` was not profiled.
    pub fn student_time(&self, block: usize, batch: usize) -> SimTime {
        self.student[block][self.batch_index(batch)]
    }

    /// Profiled update time for a block.
    pub fn update_time(&self, block: usize) -> SimTime {
        self.update[block]
    }

    fn batch_index(&self, batch: usize) -> usize {
        self.batch_sizes
            .iter()
            .position(|&b| b == batch)
            .unwrap_or_else(|| panic!("batch {batch} was not profiled: {:?}", self.batch_sizes))
    }
}

/// Profiler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Profiler {
    /// Cost model standing in for the device under test.
    pub cost: CostModel,
    /// Relative measurement noise amplitude (0 = exact). Deterministic:
    /// derived from block/batch indices, not a stateful RNG.
    pub noise: f64,
}

impl Profiler {
    /// A noise-free profiler over the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Profiler { cost, noise: 0.0 }
    }

    /// Profiles every block of `model` at the feasible per-device batches
    /// for a global batch on up to `num_devices` devices:
    /// `{⌈batch/m⌉ : m = 1..=num_devices}`.
    pub fn profile(
        &self,
        model: &BlockModel,
        global_batch: usize,
        num_devices: usize,
    ) -> ProfileTable {
        let mut batch_sizes: Vec<usize> = (1..=num_devices)
            .map(|m| global_batch.div_ceil(m))
            .collect();
        batch_sizes.sort_unstable();
        batch_sizes.dedup();

        let jitter = |block: usize, bi: usize, t: SimTime| -> SimTime {
            if self.noise == 0.0 {
                return t;
            }
            // Deterministic multiplicative jitter in [1-noise, 1+noise].
            let h = (block as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(bi as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
            let factor = 1.0 + self.noise * (2.0 * unit - 1.0);
            SimTime::from_secs_f64(t.as_secs_f64() * factor)
        };

        let mut teacher = Vec::with_capacity(model.num_blocks());
        let mut student = Vec::with_capacity(model.num_blocks());
        let mut update = Vec::with_capacity(model.num_blocks());
        for (i, desc) in model.blocks.iter().enumerate() {
            let t_row: Vec<SimTime> = batch_sizes
                .iter()
                .enumerate()
                .map(|(bi, &b)| jitter(i, bi, self.cost.teacher_time(desc, b)))
                .collect();
            let s_row: Vec<SimTime> = batch_sizes
                .iter()
                .enumerate()
                .map(|(bi, &b)| jitter(i, bi + 1000, self.cost.student_time(desc, b)))
                .collect();
            teacher.push(t_row);
            student.push(s_row);
            update.push(self.cost.update_time(desc));
        }
        ProfileTable {
            batch_sizes,
            teacher,
            student,
            update,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_models::Workload;
    use pipebd_sim::GpuModel;

    fn table(noise: f64) -> ProfileTable {
        let w = Workload::nas_cifar10();
        let p = Profiler {
            cost: CostModel::new(GpuModel::a6000()),
            noise,
        };
        p.profile(&w.model, 256, 4)
    }

    #[test]
    fn profiles_feasible_batches() {
        let t = table(0.0);
        assert_eq!(t.batch_sizes(), &[64, 86, 128, 256]);
    }

    #[test]
    fn exact_profile_matches_cost_model() {
        let w = Workload::nas_cifar10();
        let cm = CostModel::new(GpuModel::a6000());
        let t = table(0.0);
        for (i, desc) in w.model.blocks.iter().enumerate() {
            assert_eq!(t.teacher_time(i, 128), cm.teacher_time(desc, 128));
            assert_eq!(t.student_time(i, 256), cm.student_time(desc, 256));
            assert_eq!(t.update_time(i), cm.update_time(desc));
        }
    }

    #[test]
    fn noise_perturbs_but_stays_bounded() {
        let exact = table(0.0);
        let noisy = table(0.1);
        let mut any_diff = false;
        for block in 0..6 {
            for &b in exact.batch_sizes() {
                let e = exact.teacher_time(block, b).as_secs_f64();
                let n = noisy.teacher_time(block, b).as_secs_f64();
                assert!((n / e - 1.0).abs() <= 0.100001, "noise out of bounds");
                any_diff |= (n - e).abs() > 0.0;
            }
        }
        assert!(any_diff, "noise must perturb something");
    }

    #[test]
    fn noise_is_deterministic() {
        let a = table(0.05);
        let b = table(0.05);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "was not profiled")]
    fn unprofiled_batch_panics() {
        let t = table(0.0);
        let _ = t.teacher_time(0, 57);
    }

    #[test]
    fn from_parts_roundtrips_a_profiled_table() {
        let t = table(0.05);
        let rebuilt = ProfileTable::from_parts(
            t.batch_sizes().to_vec(),
            t.teacher_rows().to_vec(),
            t.student_rows().to_vec(),
            t.update_row().to_vec(),
        )
        .expect("parts are rectangular");
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.num_blocks(), 6);
    }

    #[test]
    fn from_parts_rejects_ragged_rows() {
        let t = table(0.0);
        let mut teacher = t.teacher_rows().to_vec();
        teacher[2].pop();
        assert!(ProfileTable::from_parts(
            t.batch_sizes().to_vec(),
            teacher,
            t.student_rows().to_vec(),
            t.update_row().to_vec(),
        )
        .is_err());
        let mut update = t.update_row().to_vec();
        update.pop();
        assert!(ProfileTable::from_parts(
            t.batch_sizes().to_vec(),
            t.teacher_rows().to_vec(),
            t.student_rows().to_vec(),
            update,
        )
        .is_err());
    }
}
