//! Online replanning against a degraded cluster.
//!
//! When a fault event fires mid-run (a host slows down, drops out, or
//! joins), the remaining schedule should be re-decided against the cluster
//! as it now is, not as it was profiled. This module is the scheduler side
//! of the fault plane:
//!
//! * [`DegradedServer`] — a snapshot of a [`HardwareConfig`] under a
//!   [`FaultScript`] at one training step: the surviving member ranks,
//!   their slowdown factors, and the loader-pool factor;
//! * [`degraded_estimate`] — the steady-state period of a [`StagePlan`]
//!   on that snapshot. Each member's whole per-round chain (consume,
//!   teachers, students, gradient share, updates) scales by its factor —
//!   exactly how `pipebd_sim::simulate_faulted` scales the lowered task
//!   durations — and the shared loader pool bounds the round from below;
//! * [`replan`] — the AHD search re-run over the degraded snapshot:
//!   exhaustive over hybrid plans for the surviving member count, scored
//!   by [`degraded_estimate`], plus a deterministic [`replan_overhead`]
//!   charge (search cost + redistributing student/optimizer state).
//!
//! Because the search space for `m` members contains every plan over `m`
//! logical devices, the incumbent plan (remapped onto the survivors) is
//! always a candidate: the replanned estimate can never exceed the
//! incumbent's degraded estimate. The conformance proptests pin exactly
//! that invariant.

use pipebd_models::Workload;
use pipebd_sim::{
    FaultScript, FaultViolation, GpuModel, HardwareConfig, HostModel, PcieModel, SimTime,
};

use crate::cost::CostModel;
use crate::plan::{enumerate_hybrid_plans, StagePlan};

/// A homogeneous server as a fault script leaves it at one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedServer {
    /// Surviving physical ranks, ascending (logical device `d` of a plan
    /// over this server maps to physical rank `members[d]`).
    pub members: Vec<usize>,
    /// Slowdown factor per member, parallel to `members` (`1.0` = healthy).
    pub factors: Vec<f64>,
    /// The healthy base GPU model (all ranks identical, as in the paper).
    pub gpu: GpuModel,
    /// Shared interconnect.
    pub pcie: PcieModel,
    /// Shared host / loader pool.
    pub host: HostModel,
    /// Loader-pool slowdown factor (`1.0` = healthy).
    pub loader_factor: f64,
}

impl DegradedServer {
    /// Snapshots `hw` under `script` at training step `step`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultViolation::InvalidScript`] when the script is
    /// malformed for this server or no rank survives at `step`.
    pub fn at_step(
        hw: &HardwareConfig,
        script: &FaultScript,
        step: u32,
    ) -> Result<Self, FaultViolation> {
        script.validate(hw.num_gpus)?;
        let members = script.alive_ranks(hw.num_gpus, step);
        if members.is_empty() {
            return Err(FaultViolation::InvalidScript(format!(
                "no rank survives at step {step}"
            )));
        }
        let factors = members.iter().map(|&r| script.factor(r, step)).collect();
        Ok(DegradedServer {
            members,
            factors,
            gpu: hw.gpu.clone(),
            pcie: hw.pcie.clone(),
            host: hw.host.clone(),
            loader_factor: script.loader_factor(step),
        })
    }

    /// The healthy view of `hw`: all ranks present, unit factors.
    pub fn healthy(hw: &HardwareConfig) -> Self {
        DegradedServer {
            members: (0..hw.num_gpus).collect(),
            factors: vec![1.0; hw.num_gpus],
            gpu: hw.gpu.clone(),
            pcie: hw.pcie.clone(),
            host: hw.host.clone(),
            loader_factor: 1.0,
        }
    }

    /// Number of surviving members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Whether the snapshot is indistinguishable from the healthy server
    /// (every rank present at unit factor).
    pub fn is_healthy(&self, num_gpus: usize) -> bool {
        self.members.len() == num_gpus
            && self.factors.iter().all(|&f| f == 1.0)
            && self.loader_factor == 1.0
    }
}

/// Time of one scaled duration: `t × factor`, rounded once.
fn scaled(t: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        return t;
    }
    SimTime::from_secs_f64(t.as_secs_f64() * factor)
}

/// Steady-state period of `plan` on a degraded server.
///
/// `plan` is over `server.num_members()` *logical* devices (batch split
/// evenly inside widened stages, matching the relay lowering). Member `d`'s
/// per-round chain — consume for stage 0, teacher/student/update per block,
/// gradient all-reduce in widened stages — runs `server.factors[d]`× slower
/// end to end, mirroring how `simulate_faulted` scales every GPU-stream and
/// copy-engine task of a slowed rank. The shared loader pool (scaled by the
/// loader factor) bounds the period from below; for a healthy server the
/// value reduces to `estimate_period` whenever the loader does not bind.
///
/// # Panics
///
/// Panics if `plan.num_devices` disagrees with the surviving member count.
pub fn degraded_estimate(
    plan: &StagePlan,
    server: &DegradedServer,
    workload: &Workload,
    global_batch: usize,
) -> SimTime {
    assert_eq!(
        plan.num_devices,
        server.num_members(),
        "plan is over {} devices but {} members survive",
        plan.num_devices,
        server.num_members()
    );
    let cost = CostModel::new(server.gpu.clone());
    let mut period = SimTime::ZERO;
    for stage in &plan.stages {
        let db = stage.device_batch(global_batch);
        let mut chain = SimTime::ZERO;
        for b in stage.blocks() {
            let desc = &workload.model.blocks[b];
            chain += cost.teacher_time(desc, db);
            chain += cost.student_time(desc, db);
            chain += cost.update_time(desc);
        }
        if stage.width() > 1 {
            let grad_bytes: u64 = stage
                .blocks()
                .map(|b| 4 * workload.model.blocks[b].student_params)
                .sum();
            chain += server.pcie.allreduce_time(grad_bytes, stage.width());
        }
        if stage.first_block == 0 {
            let bytes = db as u64 * workload.dataset.sample_bytes();
            chain += server.host.consume_time(db, bytes, &server.pcie);
        }
        for &d in &stage.devices {
            period = period.max(scaled(chain, server.factors[d]));
        }
    }
    // Shared-pool bound: stage 0's consumers each decode one batch per
    // round on the (possibly degraded) FIFO loader pool.
    let stage0 = &plan.stages[0];
    let db0 = stage0.device_batch(global_batch);
    let one_decode = server
        .host
        .decode_time(db0, workload.dataset.decode_us_per_sample);
    let pool_round = SimTime::from_ns(one_decode.as_ns() * stage0.width() as u64);
    period.max(scaled(pool_round, server.loader_factor))
}

/// Deterministic cost of one online replanning pass on `server`: the
/// exhaustive search over the surviving members' plan space plus the PCIe
/// time to redistribute every block's student parameters and optimizer
/// state to its new owner.
pub fn replan_overhead(workload: &Workload, server: &DegradedServer) -> SimTime {
    let plans = crate::plan::hybrid_plan_count(workload.num_blocks(), server.num_members());
    let search = SimTime::from_us(2.0 * plans as f64);
    let state_bytes: u64 = workload
        .model
        .blocks
        .iter()
        .map(|b| b.student_state_bytes())
        .sum();
    search + server.pcie.transfer_time(state_bytes)
}

/// The outcome of an online replanning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanDecision {
    /// The chosen plan, over `device_map.len()` logical devices (minimal
    /// degraded estimate; first wins ties, keeping the decision
    /// deterministic like `ahd::search`).
    pub plan: StagePlan,
    /// Logical device → physical rank (a copy of the server's members).
    pub device_map: Vec<usize>,
    /// The plan's estimated steady-state period on the degraded server.
    pub estimate: SimTime,
    /// The overhead charge for this pass ([`replan_overhead`]).
    pub overhead: SimTime,
    /// Number of candidate plans evaluated.
    pub evaluated: usize,
}

/// Re-runs the AHD search against a degraded server snapshot.
///
/// Exhaustive over [`enumerate_hybrid_plans`] for the surviving member
/// count, scored by [`degraded_estimate`].
pub fn replan(workload: &Workload, server: &DegradedServer, global_batch: usize) -> ReplanDecision {
    let plans = enumerate_hybrid_plans(workload.num_blocks(), server.num_members());
    assert!(!plans.is_empty(), "plan space cannot be empty");
    let mut best: Option<(usize, SimTime)> = None;
    for (i, plan) in plans.iter().enumerate() {
        let est = degraded_estimate(plan, server, workload, global_batch);
        if best.map_or(true, |(_, b)| est < b) {
            best = Some((i, est));
        }
    }
    let (idx, estimate) = best.expect("at least one plan");
    ReplanDecision {
        plan: plans[idx].clone(),
        device_map: server.members.clone(),
        estimate,
        overhead: replan_overhead(workload, server),
        evaluated: plans.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ahd;
    use crate::profile::Profiler;
    use pipebd_sim::FaultEvent;

    fn hw() -> HardwareConfig {
        HardwareConfig::a6000_server(4)
    }

    fn slowdown(rank: usize, factor: f64) -> FaultScript {
        FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank,
                factor,
                start_step: 0,
                end_step: u32::MAX,
            }],
        }
    }

    #[test]
    fn healthy_snapshot_has_all_members_at_unit_factor() {
        let hw = hw();
        let s = DegradedServer::at_step(&hw, &FaultScript::healthy(), 7).unwrap();
        assert_eq!(s, DegradedServer::healthy(&hw));
        assert!(s.is_healthy(4));
        assert_eq!(s.members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn snapshot_tracks_membership_and_factors() {
        let hw = hw();
        let script = FaultScript {
            events: vec![
                FaultEvent::HostLoss {
                    rank: 2,
                    at_step: 5,
                },
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 5,
                    end_step: 10,
                },
            ],
        };
        let before = DegradedServer::at_step(&hw, &script, 4).unwrap();
        assert_eq!(before.members, vec![0, 1, 2, 3]);
        assert!(before.is_healthy(4));
        let after = DegradedServer::at_step(&hw, &script, 5).unwrap();
        assert_eq!(after.members, vec![0, 1, 3]);
        assert_eq!(after.factors, vec![2.0, 1.0, 1.0]);
        assert!(!after.is_healthy(4));
    }

    #[test]
    fn snapshot_rejects_empty_cluster() {
        let hw = HardwareConfig::a6000_server(1);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 0,
                at_step: 3,
            }],
        };
        assert!(matches!(
            DegradedServer::at_step(&hw, &script, 3),
            Err(FaultViolation::InvalidScript(_))
        ));
    }

    #[test]
    fn healthy_degraded_estimate_matches_estimate_period() {
        // With unit factors and a non-binding loader, the degraded estimate
        // reduces exactly to the AHD estimator the search already uses.
        let w = Workload::nas_cifar10();
        let hw = hw();
        let server = DegradedServer::healthy(&hw);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        for plan in [
            StagePlan::contiguous(6, 4).unwrap(),
            StagePlan::internal_relaying(6, 4),
            StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap(),
        ] {
            let healthy = crate::estimate::estimate_period(&plan, &table, &w, &hw, 256);
            let degraded = degraded_estimate(&plan, &server, &w, 256);
            assert_eq!(degraded, healthy.max(degraded), "loader bound only adds");
            assert!(
                degraded >= healthy,
                "{plan}: degraded {degraded} vs healthy {healthy}"
            );
            // On these scenarios the pool never binds: exact agreement.
            assert_eq!(degraded, healthy, "{plan}");
        }
    }

    #[test]
    fn estimate_is_monotone_in_any_members_factor() {
        let w = Workload::nas_cifar10();
        let hw = hw();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        for rank in 0..4 {
            let mut prev = SimTime::ZERO;
            for f in [1.0, 1.5, 2.0, 4.0] {
                let server = DegradedServer::at_step(&hw, &slowdown(rank, f), 0).unwrap();
                let est = degraded_estimate(&plan, &server, &w, 256);
                assert!(est >= prev, "rank {rank} factor {f}");
                prev = est;
            }
        }
    }

    #[test]
    fn replanned_estimate_never_exceeds_incumbent() {
        // The incumbent plan is in the enumerated space, so the replanned
        // estimate is a lower bound of its degraded estimate.
        let w = Workload::nas_imagenet();
        let hw = hw();
        let incumbent = StagePlan::contiguous(6, 4).unwrap();
        for f in [1.0, 2.0, 3.0] {
            let server = DegradedServer::at_step(&hw, &slowdown(0, f), 0).unwrap();
            let d = replan(&w, &server, 256);
            let keep = degraded_estimate(&incumbent, &server, &w, 256);
            assert!(
                d.estimate <= keep,
                "factor {f}: replanned {} vs incumbent {keep}",
                d.estimate
            );
            assert_eq!(d.device_map, vec![0, 1, 2, 3]);
            assert_eq!(d.plan.num_devices, 4);
            d.plan.validate().unwrap();
        }
    }

    #[test]
    fn replan_on_healthy_server_matches_paper_ahd() {
        let w = Workload::nas_imagenet();
        let hw = hw();
        let server = DegradedServer::healthy(&hw);
        let d = replan(&w, &server, 256);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        let paper = ahd::search(&w, &table, &hw, 256);
        assert_eq!(d.plan, paper.plan);
        assert_eq!(d.evaluated, paper.evaluated.len());
    }

    #[test]
    fn host_loss_shrinks_the_plan_space_to_survivors() {
        let w = Workload::nas_cifar10();
        let hw = hw();
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 1,
                at_step: 2,
            }],
        };
        let server = DegradedServer::at_step(&hw, &script, 2).unwrap();
        let d = replan(&w, &server, 256);
        assert_eq!(d.device_map, vec![0, 2, 3]);
        assert_eq!(d.plan.num_devices, 3);
        assert_eq!(
            d.evaluated,
            crate::plan::hybrid_plan_count(6, 3),
            "search is exhaustive over the survivors"
        );
    }

    #[test]
    fn replanning_routes_work_away_from_a_straggler() {
        // A heavily slowed rank should not keep an even share: the chosen
        // plan's estimate must beat the incumbent's by a clear margin.
        let w = Workload::nas_imagenet();
        let hw = hw();
        let incumbent = StagePlan::internal_relaying(6, 4);
        let server = DegradedServer::at_step(&hw, &slowdown(3, 4.0), 0).unwrap();
        let keep = degraded_estimate(&incumbent, &server, &w, 256);
        let d = replan(&w, &server, 256);
        assert!(
            d.estimate.as_secs_f64() < 0.9 * keep.as_secs_f64(),
            "replanned {} should clearly beat straggling incumbent {keep}",
            d.estimate
        );
    }

    #[test]
    fn overhead_is_positive_and_grows_with_plan_space() {
        let w = Workload::nas_cifar10();
        let hw = hw();
        let full = DegradedServer::healthy(&hw);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 0,
                at_step: 0,
            }],
        };
        let smaller = DegradedServer::at_step(&hw, &script, 0).unwrap();
        let o4 = replan_overhead(&w, &full);
        let o3 = replan_overhead(&w, &smaller);
        assert!(o4 > SimTime::ZERO);
        assert!(o4 > o3, "more members -> larger search space -> more cost");
    }

    #[test]
    fn loader_degradation_binds_the_estimate() {
        let w = Workload::nas_cifar10();
        let hw = hw();
        let plan = StagePlan::contiguous(6, 4).unwrap();
        let healthy = degraded_estimate(&plan, &DegradedServer::healthy(&hw), &w, 256);
        let script = FaultScript {
            events: vec![FaultEvent::LoaderSlowdown {
                factor: 64.0,
                start_step: 0,
                end_step: u32::MAX,
            }],
        };
        let server = DegradedServer::at_step(&hw, &script, 0).unwrap();
        let degraded = degraded_estimate(&plan, &server, &w, 256);
        assert!(
            degraded > healthy,
            "a 64x loader slowdown must bind: {degraded} vs {healthy}"
        );
    }
}
