//! Stage plans: how blocks and devices are grouped for pipelined execution.
//!
//! A [`StagePlan`] partitions the `B` blocks into contiguous *stages* and
//! assigns each stage a set of consecutive device ranks. A stage with more
//! than one device splits its batch across them (hybrid pipeline + data
//! parallelism — the paper's automatic hybrid distribution). Two special
//! cases recover the paper's simpler schemes:
//!
//! * one stage per device, one or more blocks each → plain teacher relaying;
//! * a single stage holding every block on every device → internal relaying.

use serde::{Deserialize, Serialize};

/// One pipeline stage: a contiguous block range replicated over a device
/// group.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Stage {
    /// First block index of the stage.
    pub first_block: usize,
    /// Number of blocks in the stage (≥ 1).
    pub num_blocks: usize,
    /// Consecutive device ranks executing the stage (≥ 1). With more than
    /// one device the stage's batch is split evenly among them.
    pub devices: Vec<usize>,
}

impl Stage {
    /// The block indices of this stage.
    pub fn blocks(&self) -> std::ops::Range<usize> {
        self.first_block..self.first_block + self.num_blocks
    }

    /// Degree of data parallelism within the stage.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Per-device batch for a global batch size (ceiling division so every
    /// sample is covered).
    pub fn device_batch(&self, global_batch: usize) -> usize {
        global_batch.div_ceil(self.width())
    }
}

/// A complete assignment of blocks and devices to pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StagePlan {
    /// The stages in pipeline order.
    pub stages: Vec<Stage>,
    /// Total number of blocks `B`.
    pub num_blocks: usize,
    /// Total number of devices `N`.
    pub num_devices: usize,
}

/// Error from [`StagePlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPlan(pub String);

impl std::fmt::Display for InvalidPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid stage plan: {}", self.0)
    }
}

impl std::error::Error for InvalidPlan {}

impl StagePlan {
    /// Builds a plan from `(blocks_in_stage, devices_in_stage)` pairs,
    /// assigning consecutive block and device ranges.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPlan`] if the pairs do not exactly cover the blocks
    /// and devices.
    pub fn from_widths(
        pairs: &[(usize, usize)],
        num_blocks: usize,
        num_devices: usize,
    ) -> Result<Self, InvalidPlan> {
        let mut stages = Vec::with_capacity(pairs.len());
        let mut block = 0usize;
        let mut device = 0usize;
        for &(nb, nd) in pairs {
            stages.push(Stage {
                first_block: block,
                num_blocks: nb,
                devices: (device..device + nd).collect(),
            });
            block += nb;
            device += nd;
        }
        let plan = StagePlan {
            stages,
            num_blocks,
            num_devices,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// The plain teacher-relaying plan: blocks split contiguously into `N`
    /// near-equal groups, one device each. Used by TR / TR+DPU (no batch
    /// splitting).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPlan`] if there are fewer blocks than devices.
    pub fn contiguous(num_blocks: usize, num_devices: usize) -> Result<Self, InvalidPlan> {
        if num_blocks < num_devices {
            return Err(InvalidPlan(format!(
                "cannot place {num_blocks} blocks on {num_devices} devices without batch splitting"
            )));
        }
        let base = num_blocks / num_devices;
        let extra = num_blocks % num_devices;
        let pairs: Vec<(usize, usize)> = (0..num_devices)
            .map(|d| (base + usize::from(d < extra), 1))
            .collect();
        StagePlan::from_widths(&pairs, num_blocks, num_devices)
    }

    /// The internal-relaying plan (the paper's TR+IR): every device holds
    /// all blocks; parallelism is purely over the batch.
    pub fn internal_relaying(num_blocks: usize, num_devices: usize) -> Self {
        StagePlan {
            stages: vec![Stage {
                first_block: 0,
                num_blocks,
                devices: (0..num_devices).collect(),
            }],
            num_blocks,
            num_devices,
        }
    }

    /// Checks structural invariants: stages contiguous and covering all
    /// blocks, devices consecutive and covering all ranks exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPlan`] describing the violated invariant.
    pub fn validate(&self) -> Result<(), InvalidPlan> {
        if self.stages.is_empty() {
            return Err(InvalidPlan("no stages".into()));
        }
        let mut block = 0usize;
        let mut device = 0usize;
        for (i, s) in self.stages.iter().enumerate() {
            if s.num_blocks == 0 {
                return Err(InvalidPlan(format!("stage {i} has no blocks")));
            }
            if s.devices.is_empty() {
                return Err(InvalidPlan(format!("stage {i} has no devices")));
            }
            if s.first_block != block {
                return Err(InvalidPlan(format!(
                    "stage {i} starts at block {} but {} expected",
                    s.first_block, block
                )));
            }
            for (j, &d) in s.devices.iter().enumerate() {
                if d != device + j {
                    return Err(InvalidPlan(format!(
                        "stage {i} devices must be consecutive ranks from {device}"
                    )));
                }
            }
            block += s.num_blocks;
            device += s.devices.len();
        }
        if block != self.num_blocks {
            return Err(InvalidPlan(format!(
                "stages cover {block} of {} blocks",
                self.num_blocks
            )));
        }
        if device != self.num_devices {
            return Err(InvalidPlan(format!(
                "stages use {device} of {} devices",
                self.num_devices
            )));
        }
        Ok(())
    }

    /// The stage that owns block `b`, if any.
    pub fn stage_of_block(&self, b: usize) -> Option<&Stage> {
        self.stages.iter().find(|s| s.blocks().contains(&b))
    }

    /// The stage a device rank belongs to, if any.
    pub fn stage_of_device(&self, d: usize) -> Option<&Stage> {
        self.stages.iter().find(|s| s.devices.contains(&d))
    }

    /// Whether any stage uses batch splitting (width > 1).
    pub fn uses_batch_split(&self) -> bool {
        self.stages.iter().any(|s| s.width() > 1)
    }

    /// Splits a host compute budget of `host_threads` lanes across the
    /// plan's device ranks, returning the per-device intra-stage pool
    /// width (indexed by device rank).
    ///
    /// All `N` device workers run concurrently on the host, so the
    /// budget is divided evenly across ranks: each gets
    /// `host_threads / N` lanes (minimum 1 — a device worker always has
    /// its own thread), and the first `host_threads % N` ranks get one
    /// extra lane. A width of 1 means that device's kernels run serially;
    /// widths never sum above `max(host_threads, N)`, so stage
    /// concurrency and intra-stage kernel parallelism share one budget
    /// instead of multiplying into oversubscription.
    pub fn intra_pool_widths(&self, host_threads: usize) -> Vec<usize> {
        let n = self.num_devices.max(1);
        let base = host_threads / n;
        let extra = host_threads % n;
        (0..self.num_devices)
            .map(|d| (base + usize::from(d < extra)).max(1))
            .collect()
    }

    /// A compact structural fingerprint: two plans share a fingerprint
    /// iff they place the same blocks on the same device ranks. The
    /// recovery plane stamps checkpoints with the fingerprint of the
    /// plan that wrote them, so a restore under a *different* incumbent
    /// (after replanning over a changed member set) is detected instead
    /// of silently resuming mismatched state.
    ///
    /// Format: `"{num_blocks}x{num_devices}:{hash:016x}"` where the hash
    /// is FNV-1a over the stage structure — stable across processes (no
    /// `RandomState`), cheap, and human-greppable in artifacts.
    pub fn fingerprint(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.stages.len() as u64);
        for s in &self.stages {
            mix(s.first_block as u64);
            mix(s.num_blocks as u64);
            mix(s.devices.len() as u64);
            for &d in &s.devices {
                mix(d as u64);
            }
        }
        format!("{}x{}:{h:016x}", self.num_blocks, self.num_devices)
    }
}

impl std::fmt::Display for StagePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            let blocks = s.blocks();
            write!(
                f,
                "b{}..{}@gpu{}..{}",
                blocks.start,
                blocks.end - 1,
                s.devices[0],
                s.devices[s.devices.len() - 1]
            )?;
        }
        Ok(())
    }
}

/// Enumerates every hybrid plan for `num_blocks` blocks on `num_devices`
/// devices: all contiguous block groupings × all device-count compositions.
///
/// The space is `Σ_S C(B−1, S−1) · C(N−1, S−1)` — a few hundred plans for
/// the paper's `B ≈ 6..13`, `N = 4..8`, which is why the paper can search it
/// exhaustively.
pub fn enumerate_hybrid_plans(num_blocks: usize, num_devices: usize) -> Vec<StagePlan> {
    let mut plans = Vec::new();
    let max_stages = num_blocks.min(num_devices);
    for stages in 1..=max_stages {
        let block_splits = compositions(num_blocks, stages);
        let device_splits = compositions(num_devices, stages);
        for bs in &block_splits {
            for ds in &device_splits {
                let pairs: Vec<(usize, usize)> =
                    bs.iter().copied().zip(ds.iter().copied()).collect();
                let plan = StagePlan::from_widths(&pairs, num_blocks, num_devices)
                    .expect("enumerated plans are valid by construction");
                plans.push(plan);
            }
        }
    }
    plans
}

/// All ordered ways to write `total` as a sum of `parts` positive integers.
pub fn compositions(total: usize, parts: usize) -> Vec<Vec<usize>> {
    fn rec(total: usize, parts: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if parts == 1 {
            prefix.push(total);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for first in 1..=total - (parts - 1) {
            prefix.push(first);
            rec(total - first, parts - 1, prefix, out);
            prefix.pop();
        }
    }
    if parts == 0 || total < parts {
        return Vec::new();
    }
    let mut out = Vec::new();
    rec(total, parts, &mut Vec::new(), &mut out);
    out
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    for i in 0..k {
        num = num * (n - i) / (i + 1);
    }
    num
}

/// The closed-form size of the hybrid plan space (used to cross-check the
/// enumeration).
pub fn hybrid_plan_count(num_blocks: usize, num_devices: usize) -> usize {
    (1..=num_blocks.min(num_devices))
        .map(|s| binomial(num_blocks - 1, s - 1) * binomial(num_devices - 1, s - 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_plan_balances_block_counts() {
        let p = StagePlan::contiguous(6, 4).unwrap();
        let counts: Vec<usize> = p.stages.iter().map(|s| s.num_blocks).collect();
        assert_eq!(counts, vec![2, 2, 1, 1]);
        p.validate().unwrap();
        assert!(!p.uses_batch_split());
    }

    #[test]
    fn contiguous_rejects_too_few_blocks() {
        assert!(StagePlan::contiguous(3, 4).is_err());
    }

    #[test]
    fn internal_relaying_is_single_wide_stage() {
        let p = StagePlan::internal_relaying(6, 4);
        p.validate().unwrap();
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.stages[0].width(), 4);
        assert!(p.uses_batch_split());
        assert_eq!(p.stages[0].device_batch(256), 64);
    }

    #[test]
    fn validate_catches_gaps() {
        let mut p = StagePlan::contiguous(6, 3).unwrap();
        p.stages[1].first_block = 3; // creates a gap after stage 0 (2 blocks)
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_catches_device_overlap() {
        let mut p = StagePlan::contiguous(6, 3).unwrap();
        p.stages[1].devices = vec![0];
        assert!(p.validate().is_err());
    }

    #[test]
    fn compositions_count_matches_binomial() {
        // compositions(n, k) has C(n-1, k-1) elements.
        assert_eq!(compositions(6, 3).len(), 10);
        assert_eq!(compositions(4, 1).len(), 1);
        assert_eq!(compositions(4, 4).len(), 1);
        assert_eq!(compositions(3, 4).len(), 0);
        for c in compositions(7, 3) {
            assert_eq!(c.iter().sum::<usize>(), 7);
            assert!(c.iter().all(|&x| x > 0));
        }
    }

    #[test]
    fn enumeration_matches_closed_form() {
        for (b, n) in [(6, 4), (13, 4), (6, 8), (4, 4), (2, 3)] {
            let plans = enumerate_hybrid_plans(b, n);
            assert_eq!(
                plans.len(),
                hybrid_plan_count(b, n),
                "plan count for B={b}, N={n}"
            );
            for p in &plans {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn enumeration_contains_paper_fig5_schedules() {
        // Fig. 5c (A6000): blocks 0-2 shared on devices 0-2, blocks 3-5 on
        // device 3. Fig. 5b (2080Ti): block 0 on devices 0-1, blocks 1-2 on
        // device 2, blocks 3-5 on device 3.
        let plans = enumerate_hybrid_plans(6, 4);
        let a6000 = StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap();
        let t2080 = StagePlan::from_widths(&[(1, 2), (2, 1), (3, 1)], 6, 4).unwrap();
        assert!(plans.contains(&a6000));
        assert!(plans.contains(&t2080));
        // Internal relaying is in the space too (all blocks, all devices).
        let ir = StagePlan::internal_relaying(6, 4);
        assert!(plans.contains(&ir));
    }

    #[test]
    fn stage_lookups() {
        let p = StagePlan::from_widths(&[(1, 2), (2, 1), (3, 1)], 6, 4).unwrap();
        assert_eq!(p.stage_of_block(0).unwrap().width(), 2);
        assert_eq!(p.stage_of_block(4).unwrap().devices, vec![3]);
        assert_eq!(p.stage_of_device(1).unwrap().first_block, 0);
        assert!(p.stage_of_block(9).is_none());
        assert!(p.stage_of_device(9).is_none());
    }

    #[test]
    fn display_is_compact() {
        let p = StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap();
        assert_eq!(format!("{p}"), "b0..2@gpu0..2 | b3..5@gpu3..3");
    }

    #[test]
    fn intra_pool_widths_share_the_host_budget() {
        let p = StagePlan::contiguous(6, 4).unwrap();
        // Budget below the device count: everyone still gets one lane.
        assert_eq!(p.intra_pool_widths(1), vec![1, 1, 1, 1]);
        assert_eq!(p.intra_pool_widths(4), vec![1, 1, 1, 1]);
        // Remainder lanes go to the lowest ranks.
        assert_eq!(p.intra_pool_widths(6), vec![2, 2, 1, 1]);
        assert_eq!(p.intra_pool_widths(8), vec![2, 2, 2, 2]);
        assert_eq!(p.intra_pool_widths(11), vec![3, 3, 3, 2]);
    }

    #[test]
    fn fingerprint_separates_structures_and_is_stable() {
        let a = StagePlan::from_widths(&[(3, 3), (3, 1)], 6, 4).unwrap();
        let b = StagePlan::from_widths(&[(1, 2), (2, 1), (3, 1)], 6, 4).unwrap();
        assert_eq!(a.fingerprint(), a.clone().fingerprint(), "deterministic");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert!(a.fingerprint().starts_with("6x4:"));
        // Every plan in a small enumeration gets a distinct fingerprint.
        let plans = enumerate_hybrid_plans(6, 4);
        let mut prints: Vec<String> = plans.iter().map(StagePlan::fingerprint).collect();
        prints.sort_unstable();
        let before = prints.len();
        prints.dedup();
        assert_eq!(prints.len(), before, "fingerprint collision in B=6 N=4");
    }

    #[test]
    fn device_batch_ceils() {
        let s = Stage {
            first_block: 0,
            num_blocks: 1,
            devices: vec![0, 1, 2],
        };
        assert_eq!(s.device_batch(256), 86);
        assert_eq!(s.device_batch(255), 85);
    }
}
