//! Automatic hybrid distribution: exhaustive search over the hybrid plan
//! space using profiled block times (the paper's Section IV-C).

use pipebd_models::Workload;
use pipebd_sim::{HardwareConfig, SimTime};

use crate::estimate::estimate_period;
use crate::plan::{enumerate_hybrid_plans, StagePlan};
use crate::profile::ProfileTable;

/// The outcome of an AHD search.
#[derive(Debug, Clone, PartialEq)]
pub struct AhdDecision {
    /// The chosen plan (minimal estimated period; first wins ties, which
    /// keeps the decision deterministic).
    pub plan: StagePlan,
    /// Its estimated steady-state period.
    pub estimate: SimTime,
    /// Every evaluated `(plan, estimate)` pair, in enumeration order
    /// (exposed for the schedule-explorer example and for tests).
    pub evaluated: Vec<(StagePlan, SimTime)>,
}

/// Runs the exhaustive AHD search.
///
/// The paper notes the search space (`B` and `N` around ten) is small
/// enough for exhaustion, and the decision is made once before training so
/// its cost amortizes to nothing.
pub fn search(
    workload: &Workload,
    table: &ProfileTable,
    hw: &HardwareConfig,
    global_batch: usize,
) -> AhdDecision {
    let plans = enumerate_hybrid_plans(workload.num_blocks(), hw.num_gpus);
    assert!(!plans.is_empty(), "plan space cannot be empty");
    let mut evaluated = Vec::with_capacity(plans.len());
    let mut best: Option<(usize, SimTime)> = None;
    for (i, plan) in plans.iter().enumerate() {
        let est = estimate_period(plan, table, workload, hw, global_batch);
        if best.map_or(true, |(_, b)| est < b) {
            best = Some((i, est));
        }
        evaluated.push((plan.clone(), est));
    }
    let (idx, estimate) = best.expect("at least one plan");
    AhdDecision {
        plan: plans[idx].clone(),
        estimate,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::plan::hybrid_plan_count;
    use crate::profile::Profiler;

    fn decide(workload: &Workload, hw: &HardwareConfig, batch: usize) -> AhdDecision {
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(
            &workload.model,
            batch,
            hw.num_gpus,
        );
        search(workload, &table, hw, batch)
    }

    #[test]
    fn search_is_exhaustive() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let d = decide(&w, &hw, 256);
        assert_eq!(d.evaluated.len(), hybrid_plan_count(6, 4));
    }

    #[test]
    fn chosen_plan_minimizes_estimate() {
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let d = decide(&w, &hw, 256);
        for (_, est) in &d.evaluated {
            assert!(d.estimate <= *est);
        }
    }

    #[test]
    fn imagenet_splits_the_heavy_first_block() {
        // The paper's Fig. 5: on ImageNet NAS, AHD shares early blocks
        // across devices because block 0 dominates.
        let w = Workload::nas_imagenet();
        let hw = HardwareConfig::a6000_server(4);
        let d = decide(&w, &hw, 256);
        let first = d.plan.stage_of_block(0).expect("block 0 placed");
        assert!(
            first.width() > 1,
            "expected batch-split on block 0, chose {}",
            d.plan
        );
    }

    #[test]
    fn cifar_prefers_narrow_stages() {
        // On CIFAR the workload is already balanced; the paper finds AHD's
        // extra splitting unprofitable there (utilization loss offsets the
        // balance gain). The chosen plan should use little or no splitting.
        let w = Workload::nas_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let d = decide(&w, &hw, 256);
        let split_width: usize = d
            .plan
            .stages
            .iter()
            .map(|s| s.width().saturating_sub(1))
            .sum();
        assert!(
            split_width <= 2,
            "CIFAR should not split aggressively, chose {}",
            d.plan
        );
    }

    #[test]
    fn decision_is_deterministic() {
        let w = Workload::nas_imagenet();
        let hw = HardwareConfig::a6000_server(4);
        let a = decide(&w, &hw, 256);
        let b = decide(&w, &hw, 256);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.estimate, b.estimate);
    }

    #[test]
    fn gpu_type_changes_the_schedule() {
        // Fig. 5b vs 5c: the same workload lands on different schedules on
        // 2080Ti vs A6000.
        let w = Workload::nas_imagenet();
        let a = decide(&w, &HardwareConfig::a6000_server(4), 256);
        let t = decide(&w, &HardwareConfig::rtx2080ti_server(4), 256);
        // Both must split block 0; the exact shapes may differ. At minimum
        // the estimates differ (different devices)…
        assert_ne!(a.estimate, t.estimate);
        // …and the paper observes a *wider* early split on A6000.
        let a_w = a.plan.stage_of_block(0).unwrap().width();
        let t_w = t.plan.stage_of_block(0).unwrap().width();
        assert!(
            a_w >= t_w,
            "A6000 split {a_w} should be ≥ 2080Ti split {t_w}"
        );
    }
}
