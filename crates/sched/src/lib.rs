//! Scheduling for pipelined blockwise distillation.
//!
//! This crate contains every scheduling decision of the Pipe-BD paper:
//!
//! * [`StagePlan`] — the hybrid block/batch distribution vocabulary
//!   (Fig. 3b–d schedules are all stage plans);
//! * [`CostModel`] / [`Profiler`] — the profiling pass that measures block
//!   times at feasible batch sizes before training (Section V-B);
//! * [`ahd::search`] — the exhaustive automatic-hybrid-distribution search
//!   over profiled times (Section IV-C);
//! * [`ls::pack`] — the layerwise bin-packing baseline of Blakeney et al.;
//! * [`estimate_period`] — the steady-state pipeline period estimate the
//!   search minimizes (validated against the simulator in the integration
//!   tests).
//!
//! # Example
//!
//! ```
//! use pipebd_models::Workload;
//! use pipebd_sched::{ahd, CostModel, Profiler};
//! use pipebd_sim::HardwareConfig;
//!
//! let workload = Workload::nas_imagenet();
//! let hw = HardwareConfig::a6000_server(4);
//! let table = Profiler::new(CostModel::new(hw.gpu.clone()))
//!     .profile(&workload.model, 256, hw.num_gpus);
//! let decision = ahd::search(&workload, &table, &hw, 256);
//! // On ImageNet the heavy first block gets batch-split (the paper's
//! // Fig. 5 schedules).
//! assert!(decision.plan.stage_of_block(0).unwrap().width() > 1);
//! ```

#![warn(missing_docs)]

pub mod ahd;
mod cost;
mod estimate;
pub mod hetero;
pub mod ls;
mod plan;
mod profile;
pub mod replan;

pub use ahd::AhdDecision;
pub use cost::CostModel;
pub use estimate::{
    barrier_period, bottleneck_stage, dp_makespan, dp_phase_period, estimate_period, fill_time,
    ls_round_period, stage_time, stage_times,
};
pub use hetero::{HeteroDecision, HeteroServer};
pub use ls::LsAssignment;
pub use plan::{
    compositions, enumerate_hybrid_plans, hybrid_plan_count, InvalidPlan, Stage, StagePlan,
};
pub use profile::{ProfileTable, Profiler};
pub use replan::{degraded_estimate, replan_overhead, DegradedServer, ReplanDecision};
